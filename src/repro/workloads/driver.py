"""Reactive workload drivers: streaming traffic with latency accounting.

Batch runners (:func:`repro.core.collection.run_collection` et al.)
submit everything at slot 0; a *driver* instead steps the network slot by
slot, injecting arrivals from an :class:`~repro.workloads.arrivals.
ArrivalProcess` as they occur and timestamping each message's delivery.
This is what turns the simulator into the §4 queueing system "in the
flesh": offered load λ, service µ, measurable sojourn times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.collection import build_collection_network
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.workloads.arrivals import ArrivalProcess


@dataclass
class MessageRecord:
    """Lifecycle of one streamed message."""

    msg_id: Tuple[NodeId, int]
    source: NodeId
    submitted_slot: int
    delivered_slot: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.delivered_slot is None:
            return None
        return self.delivered_slot - self.submitted_slot


@dataclass
class StreamingResult:
    """Outcome of a streamed collection run."""

    slots: int
    records: List[MessageRecord] = field(default_factory=list)

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def delivered(self) -> int:
        return sum(1 for r in self.records if r.delivered_slot is not None)

    @property
    def latencies(self) -> List[int]:
        return [
            r.latency for r in self.records if r.latency is not None
        ]  # type: ignore[misc]

    @property
    def mean_latency(self) -> float:
        values = self.latencies
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def mean_latency_phases(self, phase_length: int) -> float:
        return self.mean_latency / phase_length

    @property
    def delivery_ratio(self) -> float:
        if not self.records:
            return 1.0
        return self.delivered / self.submitted


def run_streaming_collection(
    graph: Graph,
    tree: BFSTree,
    arrivals: ArrivalProcess,
    seed: int,
    horizon_slots: int,
    drain: bool = True,
    drain_budget: Optional[int] = None,
    level_classes: int = 3,
) -> StreamingResult:
    """Stream arrivals into collection for ``horizon_slots`` slots.

    Each arrival is submitted at its slot; deliveries at the root are
    timestamped by polling (exact, since the driver steps one slot at a
    time).  With ``drain`` the run continues past the horizon (up to
    ``drain_budget`` extra slots) until every submitted message arrives,
    so latencies are complete; without it, undelivered messages simply
    have no latency (useful for overload experiments).
    """
    if horizon_slots < 0:
        raise ConfigurationError("horizon must be >= 0")
    network, processes, slots = build_collection_network(
        graph, tree, sources={}, seed=seed, level_classes=level_classes
    )
    root_process = processes[tree.root]
    records: Dict[Tuple[NodeId, int], MessageRecord] = {}
    delivered_seen = 0

    def inject(slot: int) -> None:
        for source, payload in arrivals.arrivals_at(slot):
            if source not in processes:
                raise ConfigurationError(f"unknown source {source!r}")
            msg_id = processes[source].submit(payload)
            records[msg_id] = MessageRecord(
                msg_id=msg_id, source=source, submitted_slot=slot
            )

    def absorb_deliveries() -> None:
        nonlocal delivered_seen
        while delivered_seen < len(root_process.delivered):
            message = root_process.delivered[delivered_seen]
            delivered_seen += 1
            record = records.get(message.msg_id)
            if record is not None and record.delivered_slot is None:
                record.delivered_slot = network.slot

    for slot in range(horizon_slots):
        inject(slot)
        absorb_deliveries()  # root submissions deliver instantly
        network.step()
        absorb_deliveries()

    if drain:
        budget = (
            drain_budget
            if drain_budget is not None
            else max(50_000, 30 * horizon_slots)
        )
        extra = 0
        while delivered_seen < len(records):
            if extra >= budget:
                raise SimulationTimeout(
                    f"drain exceeded {budget} slots with "
                    f"{len(records) - delivered_seen} messages in flight",
                    slots_elapsed=network.slot,
                )
            network.step()
            extra += 1
            absorb_deliveries()

    return StreamingResult(
        slots=network.slot,
        records=sorted(records.values(), key=lambda r: r.submitted_slot),
    )


def run_streaming_p2p(
    graph: Graph,
    tree: BFSTree,
    arrivals: ArrivalProcess,
    destination_of,
    seed: int,
    horizon_slots: int,
    drain: bool = True,
    drain_budget: Optional[int] = None,
    level_classes: int = 3,
) -> StreamingResult:
    """Stream point-to-point traffic: arrivals routed to chosen targets.

    ``destination_of(source, payload)`` names the target station for each
    arrival (so workloads can express hotspots, all-to-one, random pairs…).
    Latency is submission-to-destination-delivery, measured per message.
    """
    from repro.core.point_to_point import build_p2p_network

    if horizon_slots < 0:
        raise ConfigurationError("horizon must be >= 0")
    network, processes, _slots = build_p2p_network(
        graph, tree, seed, level_classes
    )
    records: Dict[Tuple[NodeId, int], MessageRecord] = {}
    seen_per_dest: Dict[NodeId, int] = {node: 0 for node in processes}

    def inject(slot: int) -> None:
        for source, payload in arrivals.arrivals_at(slot):
            if source not in processes:
                raise ConfigurationError(f"unknown source {source!r}")
            dest = destination_of(source, payload)
            if dest not in processes:
                raise ConfigurationError(f"unknown destination {dest!r}")
            msg_id = processes[source].submit(
                tree.dfs_number[dest], payload
            )
            records[msg_id] = MessageRecord(
                msg_id=msg_id, source=source, submitted_slot=slot
            )

    def absorb() -> int:
        outstanding = 0
        for node, process in processes.items():
            while seen_per_dest[node] < len(process.delivered):
                message = process.delivered[seen_per_dest[node]]
                seen_per_dest[node] += 1
                record = records.get(message.msg_id)
                if record is not None and record.delivered_slot is None:
                    record.delivered_slot = network.slot
        for record in records.values():
            if record.delivered_slot is None:
                outstanding += 1
        return outstanding

    for slot in range(horizon_slots):
        inject(slot)
        absorb()
        network.step()
    outstanding = absorb()
    if drain:
        budget = (
            drain_budget
            if drain_budget is not None
            else max(50_000, 30 * horizon_slots)
        )
        extra = 0
        while outstanding > 0:
            if extra >= budget:
                raise SimulationTimeout(
                    f"drain exceeded {budget} slots with {outstanding} "
                    f"messages in flight",
                    slots_elapsed=network.slot,
                )
            network.step()
            extra += 1
            outstanding = absorb()
    return StreamingResult(
        slots=network.slot,
        records=sorted(records.values(), key=lambda r: r.submitted_slot),
    )


@dataclass
class BroadcastStreamRecord:
    """Lifecycle of one streamed broadcast: submit → everywhere."""

    source: NodeId
    payload: object
    submitted_slot: int
    everywhere_slot: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.everywhere_slot is None:
            return None
        return self.everywhere_slot - self.submitted_slot


@dataclass
class BroadcastStreamResult:
    slots: int
    records: List[BroadcastStreamRecord] = field(default_factory=list)

    @property
    def delivered_everywhere(self) -> int:
        return sum(
            1 for r in self.records if r.everywhere_slot is not None
        )

    @property
    def mean_latency(self) -> float:
        values = [r.latency for r in self.records if r.latency is not None]
        if not values:
            return float("nan")
        return sum(values) / len(values)


def run_streaming_broadcast(
    graph: Graph,
    tree: BFSTree,
    arrivals: ArrivalProcess,
    seed: int,
    horizon_slots: int,
    drain_budget: Optional[int] = None,
    level_classes: int = 3,
) -> BroadcastStreamResult:
    """Stream broadcasts; latency = submission until *every* station holds
    the message (matched by payload, since the root assigns sequence
    numbers on arrival)."""
    from repro.core.broadcast import build_broadcast_network

    if horizon_slots < 0:
        raise ConfigurationError("horizon must be >= 0")
    network, processes = build_broadcast_network(
        graph, tree, seed, level_classes
    )
    records: List[BroadcastStreamRecord] = []
    payload_index: Dict[object, BroadcastStreamRecord] = {}

    def inject(slot: int) -> None:
        for source, payload in arrivals.arrivals_at(slot):
            if source not in processes:
                raise ConfigurationError(f"unknown source {source!r}")
            record = BroadcastStreamRecord(
                source=source, payload=payload, submitted_slot=slot
            )
            records.append(record)
            payload_index[payload] = record
            processes[source].submit(payload)

    def absorb() -> int:
        outstanding = 0
        # A broadcast is complete when every station holds it; check by
        # payload among the root-sequenced messages.
        complete_seqs = set()
        root = processes[tree.root]
        for seq, message in enumerate(root.sequenced):
            if all(seq in p.received for p in processes.values()):
                complete_seqs.add(seq)
        for seq in complete_seqs:
            record = payload_index.get(root.sequenced[seq].payload)
            if record is not None and record.everywhere_slot is None:
                record.everywhere_slot = network.slot
        for record in records:
            if record.everywhere_slot is None:
                outstanding += 1
        return outstanding

    check_every = 8
    for slot in range(horizon_slots):
        inject(slot)
        network.step()
        if slot % check_every == 0:
            absorb()
    outstanding = absorb()
    budget = (
        drain_budget
        if drain_budget is not None
        else max(100_000, 40 * horizon_slots)
    )
    extra = 0
    while outstanding > 0:
        if extra >= budget:
            raise SimulationTimeout(
                f"drain exceeded {budget} slots with {outstanding} "
                f"broadcasts incomplete",
                slots_elapsed=network.slot,
            )
        network.step()
        extra += 1
        if extra % check_every == 0:
            outstanding = absorb()
    absorb()
    return BroadcastStreamResult(slots=network.slot, records=records)
