"""Arrival processes for reactive (streaming) workloads.

The paper's protocols are reactive — "invoked whenever a source
originates a message" (§1.4) — and its §4 analysis models arrivals as a
Bernoulli process with rate λ < µ.  This module supplies the arrival
processes experiments drive the protocols with:

* :class:`BernoulliArrivals` — the analysis's own model: each phase,
  each source independently originates a message with probability λ.
* :class:`DeterministicSchedule` — scripted (slot, source, payload)
  triples, for tests and trace replay.
* :class:`BurstArrivals` — periodic synchronized bursts (every source
  fires every ``period`` phases), the classic sensor-sampling pattern.

All processes yield per-slot batches so drivers can inject mid-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import NodeId


class ArrivalProcess:
    """Base: maps a slot to the (source, payload) arrivals at that slot."""

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        raise NotImplementedError


@dataclass
class DeterministicSchedule(ArrivalProcess):
    """Scripted arrivals: an explicit (slot, source, payload) list."""

    events: Sequence[Tuple[int, NodeId, Any]]

    def __post_init__(self) -> None:
        self._by_slot: Dict[int, List[Tuple[NodeId, Any]]] = {}
        for slot, source, payload in self.events:
            if slot < 0:
                raise ConfigurationError(f"negative arrival slot {slot}")
            self._by_slot.setdefault(slot, []).append((source, payload))

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        return self._by_slot.get(slot, [])


class BernoulliArrivals(ArrivalProcess):
    """Each source fires independently with probability λ per *phase*.

    The §4 analysis counts time in Decay phases, so the rate is applied
    once per ``phase_length`` slots (at the phase's first slot); passing
    ``phase_length=1`` gives per-slot Bernoulli arrivals instead.
    """

    def __init__(
        self,
        sources: Iterable[NodeId],
        rate: float,
        phase_length: int,
        rng: random.Random,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0,1], got {rate}")
        if phase_length < 1:
            raise ConfigurationError("phase_length must be >= 1")
        self.sources = tuple(sources)
        self.rate = rate
        self.phase_length = phase_length
        self._rng = rng
        self._counter = 0

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        if slot % self.phase_length != 0:
            return []
        out = []
        for source in self.sources:
            if self._rng.random() < self.rate:
                out.append((source, ("bernoulli", source, self._counter)))
                self._counter += 1
        return out


class BurstArrivals(ArrivalProcess):
    """Every source fires simultaneously every ``period`` slots."""

    def __init__(
        self, sources: Iterable[NodeId], period: int, bursts: int
    ):
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        if bursts < 0:
            raise ConfigurationError("bursts must be >= 0")
        self.sources = tuple(sources)
        self.period = period
        self.bursts = bursts

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        if slot % self.period != 0:
            return []
        burst_index = slot // self.period
        if burst_index >= self.bursts:
            return []
        return [
            (source, ("burst", burst_index, source))
            for source in self.sources
        ]
