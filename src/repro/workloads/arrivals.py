"""Arrival processes for reactive (streaming) workloads.

The paper's protocols are reactive — "invoked whenever a source
originates a message" (§1.4) — and its §4 analysis models arrivals as a
Bernoulli process with rate λ < µ.  This module supplies the arrival
processes experiments drive the protocols with:

* :class:`BernoulliArrivals` — the analysis's own model: each phase,
  each source independently originates a message with probability λ.
* :class:`PoissonArrivals` — continuous-time traffic: per-station
  ``expovariate`` inter-arrival streams (the Meshtasticator generator
  idiom), discretized onto slots.
* :class:`DeterministicSchedule` — scripted (slot, source, payload)
  triples, for tests and trace replay.
* :class:`BurstArrivals` — periodic synchronized bursts (every source
  fires every ``period`` phases), the classic sensor-sampling pattern.

All processes yield per-slot batches so drivers can inject mid-run.

Determinism contract
--------------------
Stochastic processes are *slot-indexed*: the batch returned for a slot
is a pure function of ``(seed, slot)``, derived through the
:mod:`repro.rng` sha256 scheme rather than drawn from a shared
``random.Random`` in call order.  Two drivers that poll different slot
subsets (e.g. an idle-aware loop that skips quiet stretches) therefore
see byte-identical arrival sequences on the slots they do poll, and an
arrival process can be re-created mid-run without perturbing anything.
:class:`PoissonArrivals` is the one sequential process (inter-arrival
gaps accumulate); its per-station streams are still seed-derived and
its queries must be slot-monotone — arrivals that fall into skipped
slots are emitted, never lost, at the next polled slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import NodeId
from repro.rng import child_rng


class ArrivalProcess:
    """Base: maps a slot to the (source, payload) arrivals at that slot."""

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        raise NotImplementedError


@dataclass
class DeterministicSchedule(ArrivalProcess):
    """Scripted arrivals: an explicit (slot, source, payload) list."""

    events: Sequence[Tuple[int, NodeId, Any]]

    def __post_init__(self) -> None:
        self._by_slot: Dict[int, List[Tuple[NodeId, Any]]] = {}
        for slot, source, payload in self.events:
            if slot < 0:
                raise ConfigurationError(f"negative arrival slot {slot}")
            self._by_slot.setdefault(slot, []).append((source, payload))

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        return self._by_slot.get(slot, [])


def _require_seed(seed: object) -> int:
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ConfigurationError(
            "arrival processes take an integer seed and derive their "
            "slot-indexed streams via repro.rng (a shared random.Random "
            "would make arrivals depend on poll order); got "
            f"{type(seed).__name__}"
        )
    return seed


class BernoulliArrivals(ArrivalProcess):
    """Each source fires independently with probability λ per *phase*.

    The §4 analysis counts time in Decay phases, so the rate is applied
    once per ``phase_length`` slots (at the phase's first slot); passing
    ``phase_length=1`` gives per-slot Bernoulli arrivals instead.

    The coin flips of phase p are drawn from the derived stream
    ``child_rng(seed, "bernoulli-phase", p)`` in fixed source order, so
    the batch at any slot is a pure function of ``(seed, slot)``.
    """

    def __init__(
        self,
        sources: Iterable[NodeId],
        rate: float,
        phase_length: int,
        seed: int,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0,1], got {rate}")
        if phase_length < 1:
            raise ConfigurationError("phase_length must be >= 1")
        self.sources = tuple(sources)
        self.rate = rate
        self.phase_length = phase_length
        self.seed = _require_seed(seed)

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        if slot % self.phase_length != 0:
            return []
        phase = slot // self.phase_length
        rng = child_rng(self.seed, "bernoulli-phase", phase)
        return [
            (source, ("bernoulli", source, phase))
            for source in self.sources
            if rng.random() < self.rate
        ]


class PoissonArrivals(ArrivalProcess):
    """Per-station Poisson streams: expovariate inter-arrival times.

    Each station draws successive inter-arrival gaps (in slots) from its
    own ``random.Random.expovariate`` stream, seeded with
    ``child_rng(seed, "poisson", source)`` — statistically independent
    stations, reproducible from the experiment seed alone.  Gaps
    accumulate on a continuous clock and an arrival materializes in the
    slot its arrival time falls into.

    Queries must be slot-monotone (drivers step forward in time).  A
    query may jump forward over skipped slots; arrivals that landed in
    the gap are emitted at the queried slot, so no traffic is ever lost
    to idle-aware slot skipping.
    """

    def __init__(
        self,
        sources: Iterable[NodeId],
        mean_interarrival_slots: float,
        seed: int,
        start_slot: int = 0,
    ):
        if not mean_interarrival_slots > 0.0:
            raise ConfigurationError(
                "mean inter-arrival must be > 0 slots, got "
                f"{mean_interarrival_slots}"
            )
        if start_slot < 0:
            raise ConfigurationError("start_slot must be >= 0")
        self.sources = tuple(sources)
        self.mean_interarrival_slots = float(mean_interarrival_slots)
        self.seed = _require_seed(seed)
        self.start_slot = start_slot
        lam = 1.0 / self.mean_interarrival_slots
        self._rngs = {
            source: child_rng(self.seed, "poisson", source)
            for source in self.sources
        }
        # Continuous next-arrival time per station (the Meshtasticator
        # `nextGen = random.expovariate(1/period)` generator idiom).
        self._next_time = {
            source: start_slot + self._rngs[source].expovariate(lam)
            for source in self.sources
        }
        self._count = {source: 0 for source in self.sources}
        self._lambda = lam
        self._last_slot = -1

    @classmethod
    def per_phase_rate(
        cls,
        sources: Iterable[NodeId],
        rate: float,
        phase_length: int,
        seed: int,
    ) -> "PoissonArrivals":
        """Poisson traffic matched to a per-phase offered load.

        ``rate`` messages per source per phase of ``phase_length`` slots
        — the calibration that makes Poisson and Bernoulli workloads
        comparable at the same λ.
        """
        if not rate > 0.0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if phase_length < 1:
            raise ConfigurationError("phase_length must be >= 1")
        return cls(sources, phase_length / rate, seed)

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        if slot < self._last_slot:
            raise ConfigurationError(
                f"PoissonArrivals polled backwards: slot {slot} after "
                f"{self._last_slot} (queries must be monotone)"
            )
        self._last_slot = slot
        horizon = slot + 1.0
        out: List[Tuple[NodeId, Any]] = []
        for source in self.sources:
            next_time = self._next_time[source]
            while next_time < horizon:
                out.append(
                    (source, ("poisson", source, self._count[source]))
                )
                self._count[source] += 1
                next_time += self._rngs[source].expovariate(self._lambda)
            self._next_time[source] = next_time
        return out


class BurstArrivals(ArrivalProcess):
    """Every source fires every ``period`` slots, optionally jittered.

    With ``jitter > 0`` each (burst, source) pair is offset into its
    burst window by a uniform draw from ``[0, min(jitter, period-1)]``
    slots, derived from ``(seed, burst, ...)`` — a pure function of the
    queried slot, so jittered bursts stay stable under slot skipping.
    """

    def __init__(
        self,
        sources: Iterable[NodeId],
        period: int,
        bursts: int,
        jitter: int = 0,
        seed: Optional[int] = None,
    ):
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        if bursts < 0:
            raise ConfigurationError("bursts must be >= 0")
        if jitter < 0:
            raise ConfigurationError("jitter must be >= 0")
        if jitter > 0 and seed is None:
            raise ConfigurationError(
                "jittered bursts need a seed for their derived offsets"
            )
        self.sources = tuple(sources)
        self.period = period
        self.bursts = bursts
        self.jitter = min(jitter, period - 1)
        self.seed = None if seed is None else _require_seed(seed)
        self._offsets_burst = -1
        self._offsets: Dict[int, List[NodeId]] = {}

    def _burst_offsets(self, burst: int) -> Dict[int, List[NodeId]]:
        """Offset → sources map for one burst (cached, pure in burst)."""
        if burst != self._offsets_burst:
            rng = child_rng(self.seed or 0, "burst-jitter", burst)
            offsets: Dict[int, List[NodeId]] = {}
            for source in self.sources:
                offset = rng.randint(0, self.jitter) if self.jitter else 0
                offsets.setdefault(offset, []).append(source)
            self._offsets_burst = burst
            self._offsets = offsets
        return self._offsets

    def arrivals_at(self, slot: int) -> List[Tuple[NodeId, Any]]:
        burst, within = divmod(slot, self.period)
        if burst >= self.bursts:
            return []
        if self.jitter == 0:
            if within != 0:
                return []
            return [
                (source, ("burst", burst, source))
                for source in self.sources
            ]
        return [
            (source, ("burst", burst, source))
            for source in self._burst_offsets(burst).get(within, ())
        ]
