"""Reactive workloads: arrival processes and streaming drivers."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstArrivals,
    DeterministicSchedule,
)
from repro.workloads.driver import (
    BroadcastStreamRecord,
    BroadcastStreamResult,
    MessageRecord,
    StreamingResult,
    run_streaming_broadcast,
    run_streaming_collection,
    run_streaming_p2p,
)

__all__ = [
    "ArrivalProcess",
    "BernoulliArrivals",
    "BroadcastStreamRecord",
    "BroadcastStreamResult",
    "BurstArrivals",
    "DeterministicSchedule",
    "MessageRecord",
    "StreamingResult",
    "run_streaming_broadcast",
    "run_streaming_collection",
    "run_streaming_p2p",
]
