"""Reactive workloads: arrival processes and streaming drivers."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstArrivals,
    DeterministicSchedule,
    PoissonArrivals,
)
from repro.workloads.driver import (
    BroadcastStreamRecord,
    BroadcastStreamResult,
    MessageRecord,
    StreamingResult,
    run_streaming_broadcast,
    run_streaming_collection,
    run_streaming_p2p,
)

__all__ = [
    "ArrivalProcess",
    "BernoulliArrivals",
    "BroadcastStreamRecord",
    "BroadcastStreamResult",
    "BurstArrivals",
    "DeterministicSchedule",
    "MessageRecord",
    "PoissonArrivals",
    "StreamingResult",
    "run_streaming_broadcast",
    "run_streaming_collection",
    "run_streaming_p2p",
]
