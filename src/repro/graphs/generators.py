"""Topology generators for experiments.

Each generator returns a connected :class:`~repro.graphs.graph.Graph` with
integer node IDs ``0..n-1``.  The families below are chosen to sweep the two
parameters the paper's bounds depend on — the diameter ``D`` and the maximum
degree ``Δ`` — independently:

* ``path``/``cycle``: D = Θ(n), Δ ≤ 2 (deep, thin; worst case for D terms).
* ``star``: D = 2, Δ = n-1 (shallow, fat; worst case for log Δ terms).
* ``grid``: D = Θ(√n), Δ ≤ 4.
* ``random_tree`` / ``balanced_tree``: tunable depth/branching.
* ``caterpillar``: a path with leaf tufts — deep *and* locally fat.
* ``random_geometric`` (unit-disk): the classical radio-network model.
* ``gnp_connected``: Erdős–Rényi, conditioned on connectivity.

Randomized generators take a ``random.Random`` so experiments stay
reproducible (see :mod:`repro.rng`).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph


def _require_positive(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"need at least one node, got n={n}")


def path(n: int) -> Graph:
    """A simple path 0-1-…-(n-1); diameter n-1, Δ ≤ 2."""
    _require_positive(n)
    return Graph.from_edges(((i, i + 1) for i in range(n - 1)), nodes=range(n))


def cycle(n: int) -> Graph:
    """A cycle on n ≥ 3 nodes; diameter ⌊n/2⌋, Δ = 2."""
    if n < 3:
        raise ConfigurationError(f"a cycle needs n >= 3, got n={n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(edges)


def star(n: int) -> Graph:
    """A star with center 0 and n-1 leaves; diameter ≤ 2, Δ = n-1."""
    _require_positive(n)
    return Graph.from_edges(((0, i) for i in range(1, n)), nodes=range(n))


def complete(n: int) -> Graph:
    """The complete graph (a single-hop radio network); D = 1, Δ = n-1."""
    _require_positive(n)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_edges(edges, nodes=range(n))


def grid(rows: int, cols: int) -> Graph:
    """A ``rows × cols`` 4-connected grid; node ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid needs rows >= 1 and cols >= 1")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Graph.from_edges(edges, nodes=range(rows * cols))


def balanced_tree(branching: int, depth: int) -> Graph:
    """A complete ``branching``-ary tree of the given depth.

    Depth 0 is a single root.  Node 0 is the root; children of node v are
    assigned breadth-first.
    """
    if branching < 1:
        raise ConfigurationError("branching factor must be >= 1")
    if depth < 0:
        raise ConfigurationError("depth must be >= 0")
    edges: List[Tuple[int, int]] = []
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return Graph.from_edges(edges, nodes=range(next_id))


def caterpillar(spine: int, legs: int) -> Graph:
    """A path of ``spine`` nodes, each carrying ``legs`` extra leaves.

    Diameter is Θ(spine) while Δ = legs + 2, so it sweeps D and Δ together.
    """
    if spine < 1:
        raise ConfigurationError("spine must have >= 1 node")
    if legs < 0:
        raise ConfigurationError("legs must be >= 0")
    edges: List[Tuple[int, int]] = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for body in range(spine):
        for _ in range(legs):
            edges.append((body, next_id))
            next_id += 1
    return Graph.from_edges(edges, nodes=range(next_id))


def random_tree(n: int, rng: random.Random) -> Graph:
    """A uniformly random labelled tree via a random Prüfer sequence."""
    _require_positive(n)
    if n == 1:
        return Graph({0: []})
    if n == 2:
        return Graph.from_edges([(0, 1)])
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for node in prufer:
        degree[node] += 1
    edges: List[Tuple[int, int]] = []
    leaves = sorted(node for node in range(n) if degree[node] == 1)
    import heapq

    heapq.heapify(leaves)
    for node in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, node))
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph.from_edges(edges, nodes=range(n))


def random_geometric(
    n: int,
    radius: float,
    rng: random.Random,
    max_attempts: int = 200,
) -> Graph:
    """A connected unit-disk graph: n points in [0,1]², edge iff dist ≤ radius.

    This is the canonical model of a multi-hop radio network (stations with
    identical transmission range on a plane).  Placement is resampled until
    the graph is connected; raises :class:`ConfigurationError` if the radius
    is too small to connect within ``max_attempts`` resamples.

    Edges are found with a cell-list grid (side ``radius``, compare only
    points in adjacent cells) — O(n · neighborhood) instead of the naive
    O(n²) all-pairs scan, which is what makes n = 10⁴ fields practical.
    The point stream and edge *set* are identical to the all-pairs
    formulation, so sampled topologies are unchanged for any given rng.
    """
    _require_positive(n)
    from repro.graphs.properties import is_connected

    for _ in range(max_attempts):
        points = [(rng.random(), rng.random()) for _ in range(n)]
        edges = _unit_disk_edges(points, radius)
        graph = Graph.from_edges(edges, nodes=range(n))
        if is_connected(graph):
            return graph
    raise ConfigurationError(
        f"could not sample a connected unit-disk graph with n={n}, "
        f"radius={radius} in {max_attempts} attempts"
    )


def _unit_disk_edges(
    points: List[Tuple[float, float]], radius: float
) -> List[Tuple[int, int]]:
    """All pairs at distance <= radius, via cell-list bucketing.

    Yields each pair once as ``(i, j)`` with i < j — the same edge set
    the naive double loop produces (Graph normalizes order anyway).
    """
    if radius <= 0:
        return []
    cells: Dict[Tuple[int, int], List[int]] = {}
    coords: List[Tuple[int, int]] = []
    for index, (x, y) in enumerate(points):
        cell = (int(x / radius), int(y / radius))
        coords.append(cell)
        cells.setdefault(cell, []).append(index)
    edges: List[Tuple[int, int]] = []
    for i, (x, y) in enumerate(points):
        cx, cy = coords[i]
        for nx in (cx - 1, cx, cx + 1):
            for ny in (cy - 1, cy, cy + 1):
                for j in cells.get((nx, ny), ()):
                    if j > i and math.dist((x, y), points[j]) <= radius:
                        edges.append((i, j))
    return edges


def gnp_connected(
    n: int,
    p: float,
    rng: random.Random,
    max_attempts: int = 200,
) -> Graph:
    """A connected Erdős–Rényi G(n, p) graph (resampled until connected)."""
    _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0,1], got {p}")
    from repro.graphs.properties import is_connected

    for _ in range(max_attempts):
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < p
        ]
        graph = Graph.from_edges(edges, nodes=range(n))
        if is_connected(graph):
            return graph
    raise ConfigurationError(
        f"could not sample a connected G({n}, {p}) in {max_attempts} attempts"
    )


def lollipop(clique_size: int, tail: int) -> Graph:
    """A clique with a path attached: simultaneously large Δ and large D."""
    if clique_size < 1 or tail < 0:
        raise ConfigurationError("need clique_size >= 1 and tail >= 0")
    edges = [
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    ]
    previous = 0
    next_id = clique_size
    for _ in range(tail):
        edges.append((previous, next_id))
        previous = next_id
        next_id += 1
    return Graph.from_edges(edges, nodes=range(next_id))


def layered_band(layers: int, width: int) -> Graph:
    """``layers`` levels of ``width`` nodes; consecutive levels fully joined.

    This is the worst-case shape for Theorem 4.1: every node of level i+1 is
    within range of *all* nodes of level i, so intra-layer contention is
    maximal while the BFS structure stays trivial (D = layers - 1,
    Δ = 2·width — or width+(width-1) at the ends).
    """
    if layers < 1 or width < 1:
        raise ConfigurationError("need layers >= 1 and width >= 1")
    edges: List[Tuple[int, int]] = []
    for layer in range(layers):
        base = layer * width
        for a in range(width):
            for b in range(a + 1, width):
                edges.append((base + a, base + b))
        if layer + 1 < layers:
            for a in range(width):
                for b in range(width):
                    edges.append((base + a, base + width + b))
    return Graph.from_edges(edges, nodes=range(layers * width))


def hypercube(dimension: int) -> Graph:
    """The d-dimensional hypercube: n = 2^d, D = d, Δ = d.

    D and Δ grow *together* (both log n) — the regime where the paper's
    log Δ factors and the diameter term are balanced.
    """
    if dimension < 0:
        raise ConfigurationError(f"dimension must be >= 0, got {dimension}")
    n = 1 << dimension
    edges = [
        (v, v ^ (1 << bit))
        for v in range(n)
        for bit in range(dimension)
        if v < (v ^ (1 << bit))
    ]
    return Graph.from_edges(edges, nodes=range(n))


def torus(rows: int, cols: int) -> Graph:
    """A ``rows × cols`` torus (grid with wraparound); Δ ≤ 4, D = ⌊r/2⌋+⌊c/2⌋.

    Rows/cols of 1 or 2 would create self-loops or parallel edges, so
    both must be ≥ 3.
    """
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus needs rows >= 3 and cols >= 3")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            edges.append((node, r * cols + (c + 1) % cols))
            edges.append((node, ((r + 1) % rows) * cols + c))
    return Graph.from_edges(edges, nodes=range(rows * cols))


FAMILIES = {
    "path": path,
    "cycle": cycle,
    "star": star,
    "torus": torus,
    "complete": complete,
    "grid": grid,
    "hypercube": hypercube,
    "balanced_tree": balanced_tree,
    "caterpillar": caterpillar,
    "random_tree": random_tree,
    "random_geometric": random_geometric,
    "gnp_connected": gnp_connected,
    "lollipop": lollipop,
    "layered_band": layered_band,
}
"""Registry of generator callables, keyed by family name (for sweeps)."""


def positions_for_drawing(graph: Graph) -> Dict[int, Tuple[float, float]]:
    """Crude deterministic layout (circle) for ASCII/debug rendering."""
    n = graph.num_nodes
    return {
        node: (
            0.5 + 0.45 * math.cos(2 * math.pi * index / max(n, 1)),
            0.5 + 0.45 * math.sin(2 * math.pi * index / max(n, 1)),
        )
        for index, node in enumerate(graph.nodes)
    }
