"""A minimal undirected-graph type for radio topologies.

The simulator only ever needs neighbor queries, so :class:`Graph` stores a
plain adjacency map.  It is deliberately independent of :mod:`networkx`
(which is used only by some generators and tests as a cross-check) so the
hot simulation loop stays allocation-free and easy to reason about.

Nodes are arbitrary hashable IDs; the paper assumes distinct IDs with a
total order (stations compare IDs during leader election and DFS), so all
generators in :mod:`repro.graphs.generators` use integers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.errors import TopologyError

NodeId = Hashable


class Graph:
    """An undirected simple graph backed by an adjacency map.

    The constructor copies and normalizes its input: neighbor lists are
    deduplicated, sorted (for deterministic iteration), and checked for
    symmetry and self-loops.  After construction the graph is treated as
    immutable; mutation goes through :meth:`with_edge` / :meth:`without_node`
    which return new graphs.
    """

    __slots__ = ("_adj", "_nodes", "_num_edges")

    def __init__(self, adjacency: Dict[NodeId, Iterable[NodeId]]):
        adj: Dict[NodeId, Tuple[NodeId, ...]] = {}
        for node, neighbors in adjacency.items():
            unique = sorted(set(neighbors))
            if node in unique:
                raise TopologyError(f"self-loop at node {node!r}")
            adj[node] = tuple(unique)
        for node, neighbors in adj.items():
            for other in neighbors:
                if other not in adj:
                    raise TopologyError(
                        f"edge ({node!r}, {other!r}) references unknown node"
                    )
                if node not in adj[other]:
                    raise TopologyError(
                        f"asymmetric adjacency: {node!r}->{other!r} present, "
                        f"reverse missing"
                    )
        self._adj = adj
        self._nodes = tuple(sorted(adj))
        self._num_edges = sum(len(v) for v in adj.values()) // 2

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = ()
    ) -> "Graph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        adj: Dict[NodeId, List[NodeId]] = {node: [] for node in nodes}
        for u, v in edges:
            adj.setdefault(u, []).append(v)
            adj.setdefault(v, []).append(u)
        return cls(adj)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node IDs, sorted."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Neighbors of ``node``, sorted."""
        return self._adj[node]

    def degree(self, node: NodeId) -> int:
        return len(self._adj[node])

    def max_degree(self) -> int:
        """Δ, the maximum degree (0 for an empty or single-node graph)."""
        if not self._adj:
            return 0
        return max(len(v) for v in self._adj.values())

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._adj.get(u, ())

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in self._nodes:
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(tuple((n, self._adj[n]) for n in self._nodes))

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_edge(self, u: NodeId, v: NodeId) -> "Graph":
        """A new graph with edge ``(u, v)`` added (nodes created if new)."""
        adj = {node: list(neigh) for node, neigh in self._adj.items()}
        adj.setdefault(u, [])
        adj.setdefault(v, [])
        if v not in adj[u]:
            adj[u].append(v)
            adj[v].append(u)
        return Graph(adj)

    def without_node(self, node: NodeId) -> "Graph":
        """A new graph with ``node`` and its incident edges removed."""
        if node not in self._adj:
            raise TopologyError(f"unknown node {node!r}")
        adj = {
            n: [w for w in neigh if w != node]
            for n, neigh in self._adj.items()
            if n != node
        }
        return Graph(adj)

    def subgraph(self, keep: Iterable[NodeId]) -> "Graph":
        """The induced subgraph on ``keep``."""
        keep_set = set(keep)
        unknown = keep_set - set(self._adj)
        if unknown:
            raise TopologyError(f"unknown nodes {sorted(unknown)!r}")
        adj = {
            n: [w for w in self._adj[n] if w in keep_set]
            for n in keep_set
        }
        return Graph(adj)
