"""BFS-tree data structure.

All of the paper's steady-state protocols (collection, point-to-point,
distribution) run *on the graph spanned by a BFS tree* of the network.  The
tree is produced either by the distributed setup phase
(:mod:`repro.core.bfs`) or, for experiments that bypass setup, by the
centralized :func:`reference_bfs_tree` here; both yield the same structure.

A :class:`BFSTree` also carries the DFS-interval addressing of §5.1 once
:meth:`assign_dfs_intervals` has run (centrally) or the token-DFS protocol
(:mod:`repro.core.dfs`) has run (distributedly).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.graphs.graph import Graph, NodeId


@dataclass
class BFSTree:
    """A rooted BFS tree over a set of nodes.

    Attributes
    ----------
    root:
        The tree root (the elected leader in the paper).
    parent:
        ``parent[v]`` is v's BFS parent; the root maps to itself.
    level:
        ``level[v]`` is v's distance from the root.
    children:
        ``children[v]`` is the sorted tuple of v's BFS children.
    dfs_number / subtree_max:
        DFS-interval addressing (§5.1): after assignment, node v owns the
        consecutive range ``[dfs_number[v], subtree_max[v]]`` covering
        exactly its descendants (itself included).  Empty until assigned.
    """

    root: NodeId
    parent: Dict[NodeId, NodeId]
    level: Dict[NodeId, int]
    children: Dict[NodeId, Tuple[NodeId, ...]] = field(default_factory=dict)
    dfs_number: Dict[NodeId, int] = field(default_factory=dict)
    subtree_max: Dict[NodeId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            kids: Dict[NodeId, List[NodeId]] = {v: [] for v in self.parent}
            for v, p in self.parent.items():
                if v != self.root:
                    if p not in kids:
                        raise TopologyError(
                            f"parent of {v!r} is unknown node {p!r}"
                        )
                    kids[p].append(v)
            self.children = {v: tuple(sorted(c)) for v, c in kids.items()}
        self.validate()

    # ------------------------------------------------------------------
    # Validation and basic queries
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the BFS invariants; raise :class:`TopologyError` if broken."""
        if self.parent.get(self.root) != self.root:
            raise TopologyError("root must be its own parent")
        if self.level.get(self.root) != 0:
            raise TopologyError("root must be at level 0")
        for v, p in self.parent.items():
            if v == self.root:
                continue
            if p not in self.parent:
                raise TopologyError(f"parent of {v!r} is unknown node {p!r}")
            if self.level[v] != self.level[p] + 1:
                raise TopologyError(
                    f"node {v!r} at level {self.level[v]} has parent {p!r} "
                    f"at level {self.level[p]} (must differ by exactly 1)"
                )

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self.parent))

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def depth(self) -> int:
        """The deepest level in the tree."""
        return max(self.level.values())

    def is_root(self, v: NodeId) -> bool:
        return v == self.root

    def layer(self, i: int) -> Tuple[NodeId, ...]:
        """All nodes at level i, sorted."""
        return tuple(sorted(v for v, lvl in self.level.items() if lvl == i))

    def path_to_root(self, v: NodeId) -> List[NodeId]:
        """The tree path ``v, parent(v), …, root``."""
        path = [v]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def lca(self, u: NodeId, v: NodeId) -> NodeId:
        """Lowest common ancestor of u and v in the tree."""
        a, b = u, v
        while self.level[a] > self.level[b]:
            a = self.parent[a]
        while self.level[b] > self.level[a]:
            b = self.parent[b]
        while a != b:
            a = self.parent[a]
            b = self.parent[b]
        return a

    def tree_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """The unique tree path u → lca → v (inclusive)."""
        meet = self.lca(u, v)
        up = []
        node = u
        while node != meet:
            up.append(node)
            node = self.parent[node]
        down = []
        node = v
        while node != meet:
            down.append(node)
            node = self.parent[node]
        return up + [meet] + list(reversed(down))

    def subtree(self, v: NodeId) -> Iterator[NodeId]:
        """All descendants of v (v included), preorder."""
        stack = [v]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children[node]))

    def subtree_size(self, v: NodeId) -> int:
        return sum(1 for _ in self.subtree(v))

    def tree_edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Each tree edge once, as (child, parent)."""
        for v, p in self.parent.items():
            if v != self.root:
                yield (v, p)

    # ------------------------------------------------------------------
    # DFS-interval addressing (§5.1)
    # ------------------------------------------------------------------

    def assign_dfs_intervals(self) -> None:
        """Assign DFS numbers + subtree maxima centrally (preorder).

        The distributed token-DFS of :mod:`repro.core.dfs` produces exactly
        this labelling (children visited in sorted-ID order); tests compare
        the two.
        """
        self.dfs_number.clear()
        self.subtree_max.clear()
        counter = 0
        # Iterative post-order computation of subtree maxima with preorder
        # numbering on the way down.
        stack: List[Tuple[NodeId, bool]] = [(self.root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                kids = self.children[node]
                self.subtree_max[node] = max(
                    [self.dfs_number[node]]
                    + [self.subtree_max[c] for c in kids]
                )
                continue
            self.dfs_number[node] = counter
            counter += 1
            stack.append((node, True))
            for child in reversed(self.children[node]):
                stack.append((child, False))

    @property
    def has_dfs_intervals(self) -> bool:
        return len(self.dfs_number) == self.num_nodes

    def owns_address(self, v: NodeId, address: int) -> bool:
        """Whether ``address`` lies in v's descendant interval."""
        return self.dfs_number[v] <= address <= self.subtree_max[v]

    def node_of_address(self, address: int) -> NodeId:
        """The node whose DFS number is ``address``."""
        for node, number in self.dfs_number.items():
            if number == address:
                return node
        raise TopologyError(f"no node with DFS address {address}")

    def route_next_hop(self, current: NodeId, dest_address: int) -> NodeId:
        """Next hop from ``current`` toward the node addressed ``dest_address``.

        Implements §5's routing rule: descend into the unique child whose
        interval contains the address, else go up to the parent.
        """
        if not self.has_dfs_intervals:
            raise TopologyError("DFS intervals not assigned")
        if self.owns_address(current, dest_address):
            if self.dfs_number[current] == dest_address:
                return current
            for child in self.children[current]:
                if self.owns_address(child, dest_address):
                    return child
            raise TopologyError(
                f"interval of {current!r} contains {dest_address} but no "
                f"child interval does"
            )
        return self.parent[current]


def reference_bfs_tree(graph: Graph, root: NodeId) -> BFSTree:
    """Centralized BFS tree used as ground truth and as a setup bypass.

    Parents are chosen as the smallest-ID neighbor in the previous layer,
    which makes the construction deterministic.
    """
    if root not in graph:
        raise TopologyError(f"unknown root {root!r}")
    parent: Dict[NodeId, NodeId] = {root: root}
    level: Dict[NodeId, int] = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in level:
                level[neighbor] = level[node] + 1
                parent[neighbor] = node
                queue.append(neighbor)
    if len(level) != graph.num_nodes:
        raise TopologyError("graph is not connected; BFS tree cannot span it")
    return BFSTree(root=root, parent=parent, level=level)
