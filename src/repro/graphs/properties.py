"""Structural properties of topologies: BFS layers, distances, diameter.

These are *centralized reference* computations used to (a) parameterize
protocols with the quantities the paper assumes known (``n`` and an upper
bound on Δ), (b) verify the distributed BFS construction in tests, and
(c) normalize measured slot counts by ``D`` and ``log Δ`` in experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.graphs.graph import Graph, NodeId


def bfs_levels(graph: Graph, root: NodeId) -> Dict[NodeId, int]:
    """Distance (in hops) from ``root`` to every reachable node."""
    if root not in graph:
        raise TopologyError(f"unknown root {root!r}")
    level: Dict[NodeId, int] = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in level:
                level[neighbor] = level[node] + 1
                queue.append(neighbor)
    return level


def bfs_layers(graph: Graph, root: NodeId) -> List[List[NodeId]]:
    """Nodes grouped by distance from ``root``; ``layers[i]`` is level i."""
    level = bfs_levels(graph, root)
    depth = max(level.values()) if level else 0
    layers: List[List[NodeId]] = [[] for _ in range(depth + 1)]
    for node, lvl in level.items():
        layers[lvl].append(node)
    for layer in layers:
        layer.sort()
    return layers


def is_connected(graph: Graph) -> bool:
    """Whether every node is reachable from every other node."""
    if graph.num_nodes == 0:
        return True
    root = graph.nodes[0]
    return len(bfs_levels(graph, root)) == graph.num_nodes


def require_connected(graph: Graph) -> None:
    """Raise :class:`TopologyError` unless ``graph`` is connected.

    The paper's protocols operate on a connected network (a BFS tree must
    span all stations), so simulations validate this up front rather than
    hanging waiting for unreachable confirmations.
    """
    if not is_connected(graph):
        raise TopologyError("topology must be connected")


def eccentricity(graph: Graph, node: NodeId) -> int:
    """Greatest hop distance from ``node`` to any other node."""
    level = bfs_levels(graph, node)
    if len(level) != graph.num_nodes:
        raise TopologyError("eccentricity undefined on a disconnected graph")
    return max(level.values())


def diameter(graph: Graph) -> int:
    """Exact diameter ``D`` via BFS from every node.

    O(n·m); fine at the n ≤ a-few-thousand scales these simulations run at.
    """
    if graph.num_nodes == 0:
        raise TopologyError("diameter undefined on the empty graph")
    return max(eccentricity(graph, node) for node in graph.nodes)


def radius_and_center(graph: Graph) -> Tuple[int, NodeId]:
    """The radius and one center node (minimum-eccentricity node)."""
    if graph.num_nodes == 0:
        raise TopologyError("radius undefined on the empty graph")
    best: Optional[Tuple[int, NodeId]] = None
    for node in graph.nodes:
        ecc = eccentricity(graph, node)
        if best is None or ecc < best[0]:
            best = (ecc, node)
    assert best is not None
    return best


def shortest_path(graph: Graph, source: NodeId, target: NodeId) -> List[NodeId]:
    """One shortest hop path from ``source`` to ``target`` (inclusive)."""
    if source == target:
        return [source]
    parent: Dict[NodeId, NodeId] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in parent:
                continue
            parent[neighbor] = node
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    raise TopologyError(f"{target!r} unreachable from {source!r}")


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes:
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram
