"""ASCII rendering of positioned radio networks.

Unit-disk graphs are *geometric* objects — stations on a plane with a
common transmission radius — and debugging a protocol is much easier
when you can see the field.  This module renders positioned networks as
character maps: stations as symbols placed by their coordinates, with
optional per-station annotations (BFS level, leader marker, load).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, NodeId

Position = Tuple[float, float]


def random_geometric_with_positions(
    n: int,
    radius: float,
    rng: random.Random,
    max_attempts: int = 200,
) -> Tuple[Graph, Dict[int, Position]]:
    """A connected unit-disk graph *with* the generating coordinates.

    Same sampling as :func:`repro.graphs.generators.random_geometric`, but
    the accepted placement is returned so the field can be drawn and
    distance-dependent experiments (range sweeps, position-aware failure
    models) are possible.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    from repro.graphs.properties import is_connected

    for _ in range(max_attempts):
        points = [(rng.random(), rng.random()) for _ in range(n)]
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if math.dist(points[i], points[j]) <= radius
        ]
        graph = Graph.from_edges(edges, nodes=range(n))
        if is_connected(graph):
            return graph, {i: points[i] for i in range(n)}
    raise ConfigurationError(
        f"could not sample a connected unit-disk graph with n={n}, "
        f"radius={radius} in {max_attempts} attempts"
    )


def ascii_map(
    graph: Graph,
    positions: Dict[NodeId, Position],
    width: int = 60,
    height: int = 24,
    label: Optional[Callable[[NodeId], str]] = None,
) -> str:
    """Render stations on a character grid by their coordinates.

    ``label(node)`` supplies the 1-character symbol (default: last digit
    of the ID; overlapping stations render as ``*``).  Coordinates are
    normalized to the bounding box of the positions.
    """
    if width < 4 or height < 3:
        raise ConfigurationError("map needs width >= 4 and height >= 3")
    missing = set(graph.nodes) - set(positions)
    if missing:
        raise ConfigurationError(
            f"no positions for stations {sorted(missing)[:5]!r}"
        )
    xs = [positions[v][0] for v in graph.nodes]
    ys = [positions[v][1] for v in graph.nodes]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(1e-12, max_x - min_x)
    span_y = max(1e-12, max_y - min_y)
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for node in graph.nodes:
        x, y = positions[node]
        col = min(width - 1, int((x - min_x) / span_x * (width - 1)))
        row = min(
            height - 1, int((max_y - y) / span_y * (height - 1))
        )  # y grows upward
        symbol = (
            label(node) if label is not None else str(node)[-1]
        ) or "?"
        cell = grid[row][col]
        grid[row][col] = symbol[0] if cell == " " else "*"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def link_length_histogram(
    graph: Graph, positions: Dict[NodeId, Position], bins: int = 8
) -> Dict[float, int]:
    """Histogram of link lengths (upper bin edge -> count).

    Useful for checking that a sampled field matches the intended radius:
    every link must be ≤ radius, with mass concentrated below it.
    """
    if bins < 1:
        raise ConfigurationError("need at least one bin")
    lengths = [
        math.dist(positions[u], positions[v]) for u, v in graph.edges()
    ]
    if not lengths:
        return {}
    top = max(lengths)
    histogram: Dict[float, int] = {}
    for length in lengths:
        index = min(bins - 1, int(length / top * bins))
        edge = (index + 1) * top / bins
        histogram[round(edge, 6)] = histogram.get(round(edge, 6), 0) + 1
    return dict(sorted(histogram.items()))
