"""Deterministic randomness plumbing.

Every stochastic component in this library draws from a ``random.Random``
instance that is ultimately derived from a single experiment seed, so that

* every experiment is exactly reproducible from its seed, and
* independent components (e.g. the coin flips of different stations) use
  *statistically independent* streams rather than sharing one generator in
  an order-dependent way.

The scheme is the standard "root seed + stable child key" construction:
child streams are seeded with ``sha256(root_seed || key)``, which gives
independence in practice and—unlike ``random.Random(root + i)``—is robust
to correlated low-entropy seeds.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Iterator


def derive_seed(root_seed: int, *key_parts: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stable key.

    ``key_parts`` may be any objects with a stable ``repr`` (ints and
    strings in practice).  The derivation is pure: the same inputs always
    produce the same output, across processes and platforms.
    """
    hasher = hashlib.sha256()
    hasher.update(str(root_seed).encode())
    for part in key_parts:
        hasher.update(b"\x00")
        hasher.update(repr(part).encode())
    return int.from_bytes(hasher.digest()[:8], "big")


def child_rng(root_seed: int, *key_parts: object) -> random.Random:
    """Return a fresh ``random.Random`` for the stream named by the key."""
    return random.Random(derive_seed(root_seed, *key_parts))


def np_rng(root_seed: int, *key_parts: object):
    """A NumPy ``Generator`` for the stream named by the key.

    The batch (vector) engine draws whole coin matrices at once; its
    streams use the same sha256 derivation as :func:`child_rng`, so a
    vector replication's randomness is a pure function of its task seed
    — independent of batch size and of its position within a batch.
    NumPy streams are *statistically* equivalent to, never bit-identical
    with, the ``random.Random`` streams of the scalar engine.
    """
    import numpy as np

    return np.random.default_rng(derive_seed(root_seed, *key_parts))


def np_rngs(seeds, *key_parts: object) -> list:
    """One NumPy ``Generator`` per seed, all for the same named stream.

    The batch engine's convenience plural of :func:`np_rng`: replication
    ``b`` of a batch draws from ``np_rngs(seeds, ...)[b]``, and because
    each stream is derived from its own task seed alone, the coins a
    replication consumes do not depend on which other replications share
    the batch — the property that makes sharded sub-batches bit-identical
    to the unsharded run.
    """
    return [np_rng(seed, *key_parts) for seed in seeds]


def content_key(payload: Any) -> str:
    """The sha256 hex digest of ``payload``'s canonical JSON form.

    The one content-addressing helper shared by the runner's task keys
    and any other component that needs a stable digest of a JSON-safe
    structure: keys are canonical (sorted, compact separators), so two
    semantically equal payloads always collide.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


class RngFactory:
    """Factory handing out independent named random streams.

    A :class:`RngFactory` is created once per experiment from the root
    seed; components then ask it for their own stream::

        factory = RngFactory(seed=42)
        node_rng = factory.for_node(17)
        arrivals = factory.named("arrivals")

    Asking twice for the same name returns *distinct* generator objects
    seeded identically, so a component can be re-created mid-experiment
    without perturbing any other stream.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def for_node(self, node_id: int) -> random.Random:
        """Stream for the protocol coin flips of one station."""
        return child_rng(self.seed, "node", node_id)

    def named(self, name: str) -> random.Random:
        """Stream for a named experiment-level component."""
        return child_rng(self.seed, "named", name)

    def spawn(self, index: int) -> "RngFactory":
        """A sub-factory, e.g. one per replication of an experiment."""
        return RngFactory(derive_seed(self.seed, "spawn", index))

    def replication_seeds(self, count: int) -> Iterator[int]:
        """``count`` independent root seeds for experiment replications."""
        for index in range(count):
            yield derive_seed(self.seed, "replication", index)
