"""The collection protocol (§4): convergecast of messages to the root.

"The purpose of the collection protocol is to send messages from the
sources to the root of the BFS tree.  Since no source knows the number and
IDs of the other sources this is done concurrently and independently by
all of them.  Messages are sent, using Decay, via the BFS tree from
BFS-children to their parents."

Each station runs a :class:`CollectionProcess`: one upward
:class:`~repro.core.transport.TransportLane` whose next hop is always the
BFS parent.  The root accepts and acknowledges but never forwards; the
messages it accepts are the protocol's output.

The protocol is *always successful on the graph spanned by the BFS tree*;
only its running time is random (Thm 4.4: expected slots ≤
``32.27·(k + D)·log Δ``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.messages import AckMessage, DataMessage
from repro.core.slots import SlotStructure, decay_budget
from repro.core.transport import RetryPolicy, TransportLane
from repro.core.tree import TreeInfo, tree_info_from_bfs_tree
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.transmission import UP_CHANNEL, Transmission
from repro.radio.trace import NetworkStats


class CollectionProcess(Process):
    """One station's collection behaviour.

    Parameters
    ----------
    info:
        This station's tree knowledge from the setup phase.
    slots:
        The shared multiplexed schedule (identical at every station).
    rng:
        This station's private coin-flip stream.
    initial_payloads:
        Application payloads this station wants delivered to the root;
        more can be injected later with :meth:`submit`.
    channel:
        Radio channel for the upward traffic (default ``UP_CHANNEL``).
    """

    def __init__(
        self,
        info: TreeInfo,
        slots: SlotStructure,
        rng: random.Random,
        initial_payloads: Iterable[Any] = (),
        channel: int = UP_CHANNEL,
        strict: bool = True,
        retry: Optional[RetryPolicy] = None,
        dedup_window: Optional[int] = None,
    ):
        super().__init__(info.node_id)
        self.info = info
        self.slots = slots
        # The current next hop for upward traffic: the BFS parent, until a
        # repair layer (core/repair.py) re-attaches this station elsewhere.
        self.parent = info.parent
        self.lane = TransportLane(
            node_id=info.node_id,
            level=info.level,
            slots=slots,
            rng=rng,
            channel=channel,
            strict=strict,
            retry=retry,
            dedup_window=dedup_window,
        )
        self.channel = channel
        self.delivered: List[DataMessage] = []  # root only
        self._serial = 0
        for payload in initial_payloads:
            self.submit(payload)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def submit(self, payload: Any) -> Tuple[NodeId, int]:
        """Inject a new message bound for the root; returns its msg_id.

        The protocol is reactive (§1.4): submission is legal at any time,
        including mid-run.  At the root, submission delivers immediately.
        """
        msg_id = (self.info.node_id, self._serial)
        self._serial += 1
        message = DataMessage(
            msg_id=msg_id,
            origin=self.info.node_id,
            hop_sender=self.info.node_id,
            hop_dest=self.parent,
            dest_address=None,
            payload=payload,
        )
        if self.info.is_root:
            self.delivered.append(message)
        else:
            self.lane.enqueue(message)
            self.wake()  # revoke any idle declaration: there is traffic now
        return msg_id

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        return self.lane.on_slot(slot)

    def quiet_until(self, slot: int) -> int:
        # The lane is this process's only slot-driven state, so its next
        # active slot is an exact idle declaration (see Process.quiet_until).
        return self.lane.next_active_slot(slot)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if channel != self.channel:
            return
        if isinstance(payload, DataMessage):
            if payload.hop_dest != self.info.node_id:
                return  # overheard someone else's hop; not ours to ack
            is_new = self.lane.accept_data(slot, payload)
            if not is_new:
                return
            if self.info.is_root:
                self.delivered.append(payload)
            else:
                self.lane.enqueue(
                    payload.rehop(self.info.node_id, self.parent),
                    received_at_slot=slot,
                )
        elif isinstance(payload, AckMessage):
            if payload.hop_dest == self.info.node_id:
                self.lane.accept_ack(payload)

    def is_done(self) -> bool:
        """Locally drained: no buffered messages, no ack duty."""
        return self.lane.idle

    @property
    def backlog(self) -> int:
        return self.lane.backlog


@dataclass
class CollectionResult:
    """Outcome of a complete collection run."""

    slots: int  # slots until the last message reached the root
    phases: int  # completed Decay phases (ceil of slots / phase length)
    delivered: List[DataMessage]  # in root-arrival order
    stats: NetworkStats
    slot_structure: SlotStructure

    @property
    def messages_delivered(self) -> int:
        return len(self.delivered)


def build_collection_network(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
    level_classes: int = 3,
    strict: bool = True,
    budget: Optional[int] = None,
    dedup_window: Optional[int] = None,
) -> Tuple[RadioNetwork, Dict[NodeId, CollectionProcess], SlotStructure]:
    """Wire a radio network running collection on every station.

    ``sources`` maps stations to the payload lists they inject at slot 0.
    Returns the network, the process map and the slot structure; callers
    that want custom run loops (benchmarks, reactive workloads) use this
    directly, everyone else uses :func:`run_collection`.

    ``dedup_window`` bounds each lane's duplicate-suppression memory
    (open-system service runs pass one; closed runs keep the default
    exact, unbounded set).
    """
    from repro.rng import RngFactory

    unknown = set(sources) - set(graph.nodes)
    if unknown:
        raise ConfigurationError(f"unknown source stations {sorted(unknown)!r}")
    factory = RngFactory(seed)
    slot_structure = SlotStructure(
        decay_budget=budget if budget is not None else decay_budget(graph.max_degree()),
        level_classes=level_classes,
        with_acks=True,
    )
    infos = tree_info_from_bfs_tree(tree)
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, CollectionProcess] = {}
    for node in graph.nodes:
        process = CollectionProcess(
            info=infos[node],
            slots=slot_structure,
            rng=factory.for_node(node),
            initial_payloads=sources.get(node, ()),
            channel=0,
            strict=strict,
            dedup_window=dedup_window,
        )
        processes[node] = process
        network.attach(process)
    return network, processes, slot_structure


def run_collection(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
    max_slots: Optional[int] = None,
    level_classes: int = 3,
    strict: bool = True,
    budget: Optional[int] = None,
) -> CollectionResult:
    """Run collection to completion: every injected message reaches the root.

    ``max_slots`` defaults to a generous multiple of the Theorem 4.4 bound;
    exceeding it raises :class:`~repro.errors.SimulationTimeout` (which,
    in the failure-free model, indicates a bug rather than bad luck).
    """
    network, processes, slot_structure = build_collection_network(
        graph, tree, sources, seed, level_classes, strict, budget
    )
    total_messages = sum(len(v) for v in sources.values())
    root_process = processes[tree.root]
    if max_slots is None:
        bound = expected_collection_slots(
            total_messages, tree.depth, graph.max_degree()
        )
        max_slots = max(10_000, int(20 * bound))
    network.run(
        max_slots,
        until=lambda net: len(root_process.delivered) >= total_messages
        and all(p.is_done() for p in processes.values()),
    )
    return CollectionResult(
        slots=network.slot,
        phases=-(-network.slot // slot_structure.phase_length),
        delivered=list(root_process.delivered),
        stats=network.stats,
        slot_structure=slot_structure,
    )


import math as _math

#: Per-phase probability that some message advances out of a loaded level
#: (Theorem 4.1): µ = e⁻¹·(1 − e⁻¹) ≈ 0.2325.
MU = _math.exp(-1.0) * (1.0 - _math.exp(-1.0))

#: The arrival rate the paper substitutes into Theorem 4.3 to balance the
#: two terms of ``k/λ + D·(1-λ)/(µ-λ)``: setting them equal gives
#: ``µ = λ(2-λ)``, i.e. λ* = 1 − √(1 − µ) ≈ 0.12395, whence the expected
#: number of phases is (k+D)/λ* and each phase lasts twice the Decay time
#: (data + ack slots) = 4·log Δ slots — yielding Theorem 4.4's constant
#: 4/λ* ≈ 32.27.
LAMBDA_STAR = 1.0 - _math.sqrt(1.0 - MU)


def theorem_44_constant() -> float:
    """The slot-bound constant of Theorem 4.4: ``4/λ*`` ≈ 32.27."""
    return 4.0 / LAMBDA_STAR


def expected_collection_phases(k: int, depth: int) -> float:
    """Theorem 4.3/4.4 bound on expected Decay phases: ``(k + D)/λ*``."""
    return (k + depth) / LAMBDA_STAR


def expected_collection_slots(
    k: int, depth: int, max_degree: int, level_classes: int = 1
) -> float:
    """Theorem 4.4's bound on expected slots: ``32.27·(k + D)·log Δ``.

    The paper's stated constant covers the data+ack doubling but not the
    ×``level_classes`` slowdown of §2.2 (which §2.2 asks the reader to
    assume "built into all our protocols"); pass ``level_classes=3`` to
    include it when comparing against the multiplexed implementation.
    """
    log_delta = _math.log2(max(2, max_degree))
    return theorem_44_constant() * (k + depth) * log_delta * level_classes
