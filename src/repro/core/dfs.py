"""The point-to-point preparation protocol (§5.1): two token DFS traversals.

After the BFS tree exists, stations need the descendant information that
lets them route by address in ``O(deg(v)·log n)`` bits each.  The paper's
scheme (credited to Itai–Rodeh's DFS-numbering idea):

1. **First traversal — DFS on the graph.**  A token starts at the root and
   performs a depth-first traversal of the *graph*; only the token holder
   transmits, so there are no conflicts and each pass costs one slot.
   "Whenever a node sends the token it broadcasts its own ID together with
   the ID of its BFS-parent" — hence after 2n−2 slots every station knows
   the BFS parent of each of its neighbors, and in particular which
   neighbors are its own BFS children.
2. **Second traversal — DFS on the BFS tree.**  The token now walks the
   BFS tree, assigning preorder DFS numbers.  The token carries the
   next-unused counter; when a child's subtree is exhausted the returning
   token lets the parent record the child's interval
   ``[child_dfs, counter−1]``.  Afterwards each station uses its DFS
   number as its address and owns the consecutive interval of its
   descendants.

Both traversals visit children/neighbors in **descending ID order is what
the paper states for the first ("the largest neighbor not yet in the DFS
tree")**; for the second the paper does not fix an order, and we use
ascending child IDs so the result coincides with the centralized
:meth:`repro.graphs.bfs_tree.BFSTree.assign_dfs_intervals` (tests rely on
this cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.messages import TokenMessage
from repro.core.tree import TreeInfo
from repro.errors import ProtocolError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.transmission import Transmission

TOKEN_CHANNEL = 0


class DfsPreparationProcess(Process):
    """One station's role in the two token traversals.

    A station transmits in a slot iff it holds the token at the start of
    that slot; the transmission simultaneously passes the token and
    broadcasts the (holder, BFS-parent) information of traversal 1 or the
    numbering of traversal 2.  The engine guarantees every neighbor hears
    it (single transmitter network-wide).
    """

    def __init__(self, node_id: NodeId, bfs_parent: NodeId, is_root: bool):
        super().__init__(node_id)
        self.bfs_parent = bfs_parent
        self.is_root = is_root
        # --- knowledge acquired in traversal 1 ---
        self.neighbor_bfs_parent: Dict[NodeId, NodeId] = {}
        self.bfs_children: List[NodeId] = []
        self._t1_in_tree: Set[NodeId] = set()  # neighbors known in DFS tree
        self._t1_parent: Optional[NodeId] = None  # our DFS-1 parent
        self._t1_visited_self = False
        # --- knowledge acquired in traversal 2 ---
        self.dfs_number: Optional[int] = None
        self.subtree_max: Optional[int] = None
        self.child_intervals: Dict[NodeId, Tuple[int, int]] = {}
        self._t2_next_child = 0
        self._t2_counter: Optional[int] = None
        # --- token state ---
        self._holding: Optional[TokenMessage] = None  # what we will send
        self.done = False

    # ------------------------------------------------------------------
    # Traversal bootstrap (root only)
    # ------------------------------------------------------------------

    def start_first_traversal(self) -> None:
        if not self.is_root:
            raise ProtocolError("only the root starts the DFS token")
        self._t1_visited_self = True
        self._t1_parent = self.node_id
        self._prepare_t1_pass()

    # ------------------------------------------------------------------
    # Traversal 1: DFS on the graph
    # ------------------------------------------------------------------

    def _unvisited_neighbors_t1(self) -> List[NodeId]:
        return [
            v
            for v in self._neighbors
            if v not in self._t1_in_tree and v != self._t1_parent
        ]

    def _prepare_t1_pass(self) -> None:
        """Decide where the traversal-1 token goes next and queue the pass."""
        candidates = self._unvisited_neighbors_t1()
        if candidates:
            # "each node sends the token to the largest neighbor not yet in
            # the DFS tree"
            target = max(candidates)  # type: ignore[type-var]
        elif self.is_root and self._t1_parent == self.node_id:
            # Token back at the root with nothing unvisited: traversal 1
            # done; begin traversal 2 immediately.
            self._begin_second_traversal()
            return
        else:
            assert self._t1_parent is not None
            target = self._t1_parent
        self._holding = TokenMessage(
            holder=self.node_id,
            next_holder=target,
            traversal=1,
            holder_bfs_parent=self.bfs_parent,
        )

    def _handle_t1_message(self, message: TokenMessage) -> None:
        # Every neighbor of the transmitter learns the holder's BFS parent
        # and that holder (and, transitively, next_holder) joined the tree.
        self.neighbor_bfs_parent[message.holder] = (
            message.holder_bfs_parent  # type: ignore[assignment]
        )
        if message.holder_bfs_parent == self.node_id:
            if message.holder not in self.bfs_children:
                self.bfs_children.append(message.holder)
        self._t1_in_tree.add(message.holder)
        if message.next_holder in self._neighbors or (
            message.next_holder == self.node_id
        ):
            self._t1_in_tree.add(message.next_holder)
        if message.next_holder != self.node_id:
            return
        # We now hold the token.
        if not self._t1_visited_self:
            self._t1_visited_self = True
            self._t1_parent = message.holder
        self._prepare_t1_pass()

    # ------------------------------------------------------------------
    # Traversal 2: DFS on the BFS tree
    # ------------------------------------------------------------------

    def _begin_second_traversal(self) -> None:
        assert self.is_root
        self.bfs_children.sort()
        self.dfs_number = 0
        self._t2_counter = 1
        self._prepare_t2_pass()

    def _prepare_t2_pass(self) -> None:
        assert self._t2_counter is not None
        if self._t2_next_child < len(self.bfs_children):
            child = self.bfs_children[self._t2_next_child]
            self._holding = TokenMessage(
                holder=self.node_id,
                next_holder=child,
                traversal=2,
                dfs_number=self._t2_counter,
            )
            return
        # All children done.
        self.subtree_max = self._t2_counter - 1
        if self.is_root:
            self.done = True
            self._holding = TokenMessage(
                holder=self.node_id,
                next_holder=self.node_id,
                traversal=2,
                returning=True,
                dfs_number=self._t2_counter,
            )
            return
        self._holding = TokenMessage(
            holder=self.node_id,
            next_holder=self.bfs_parent,
            traversal=2,
            returning=True,
            dfs_number=self._t2_counter,
        )

    def _handle_t2_message(self, message: TokenMessage) -> None:
        if message.next_holder != self.node_id:
            return
        assert message.dfs_number is not None
        if message.returning:
            # A child's subtree is complete: record its interval.
            child = message.holder
            start = self._pending_child_start
            assert start is not None
            self.child_intervals[child] = (start, message.dfs_number - 1)
            self._t2_counter = message.dfs_number
            self._t2_next_child += 1
            self._prepare_t2_pass()
            return
        # Token descends into us for the first time.
        if self.dfs_number is None:
            self.dfs_number = message.dfs_number
            self._t2_counter = message.dfs_number + 1
            self.bfs_children.sort()
            self._prepare_t2_pass()

    @property
    def _pending_child_start(self) -> Optional[int]:
        """DFS number given to the child currently being visited."""
        if self._t2_next_child >= len(self.bfs_children):
            return None
        child = self.bfs_children[self._t2_next_child]
        # The child received the counter value we sent when descending,
        # which we can reconstruct: it is the counter value before descent.
        return self._descent_counter.get(child)

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        if self._holding is None:
            return None
        token = self._holding
        self._holding = None
        if token.traversal == 2 and not token.returning:
            # Remember what number we handed to this child (to compute its
            # interval when it returns).
            self._descent_counter[token.next_holder] = token.dfs_number  # type: ignore[index]
        return Transmission(token, TOKEN_CHANNEL)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if channel != TOKEN_CHANNEL or not isinstance(payload, TokenMessage):
            return
        if payload.traversal == 1:
            self._handle_t1_message(payload)
        else:
            self._handle_t2_message(payload)

    # Wired by the driver (stations know their neighborhood a priori, §1.1:
    # "each processor knows its local neighborhood").
    _neighbors: Tuple[NodeId, ...] = ()
    _descent_counter: Dict[NodeId, int]

    def wire_neighbors(self, neighbors: Tuple[NodeId, ...]) -> None:
        self._neighbors = neighbors
        self._descent_counter = {}

    def is_done(self) -> bool:
        return self.done


@dataclass
class DfsPreparationResult:
    """Outcome of the preparation protocol."""

    slots: int
    dfs_number: Dict[NodeId, int]
    subtree_max: Dict[NodeId, int]
    bfs_children: Dict[NodeId, Tuple[NodeId, ...]]


def run_dfs_preparation(
    graph: Graph,
    tree: BFSTree,
    max_slots: Optional[int] = None,
) -> DfsPreparationResult:
    """Run both token traversals over ``graph`` with the given BFS tree.

    The protocol is deterministic and conflict-free; it needs
    ``2(n−1)`` slots per traversal plus the root's final announcement.
    """
    n = graph.num_nodes
    if max_slots is None:
        max_slots = 4 * n + 16
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, DfsPreparationProcess] = {}
    for node in graph.nodes:
        process = DfsPreparationProcess(
            node_id=node,
            bfs_parent=tree.parent[node],
            is_root=(node == tree.root),
        )
        process.wire_neighbors(graph.neighbors(node))
        processes[node] = process
        network.attach(process)
    processes[tree.root].start_first_traversal()
    root_process = processes[tree.root]
    if n == 1:
        # Nothing to traverse: assign trivially.
        root_process.dfs_number = 0
        root_process.subtree_max = 0
        root_process.done = True
    else:
        network.run(max_slots, until=lambda net: root_process.done)
        # Let the root's final broadcast go out (children of root use it to
        # learn nothing new, but the slot accounting includes it).
        network.step()
    dfs_number = {}
    subtree_max = {}
    children = {}
    for node, process in processes.items():
        if process.dfs_number is None:
            raise SimulationTimeout(
                f"station {node!r} never received a DFS number"
            )
        if process.subtree_max is None:
            # Leaves that returned immediately recorded their own max.
            process.subtree_max = process.dfs_number
        dfs_number[node] = process.dfs_number
        subtree_max[node] = process.subtree_max
        children[node] = tuple(sorted(process.bfs_children))
    return DfsPreparationResult(
        slots=network.slot,
        dfs_number=dfs_number,
        subtree_max=subtree_max,
        bfs_children=children,
    )


def apply_preparation(
    tree: BFSTree, result: DfsPreparationResult
) -> None:
    """Install the distributed traversals' output into a BFSTree."""
    tree.dfs_number = dict(result.dfs_number)
    tree.subtree_max = dict(result.subtree_max)


def prepared_tree_infos(
    graph: Graph,
    tree: BFSTree,
    result: DfsPreparationResult,
) -> Dict[NodeId, TreeInfo]:
    """Per-station TreeInfo with DFS addressing, from protocol output."""
    infos: Dict[NodeId, TreeInfo] = {}
    for node in graph.nodes:
        infos[node] = TreeInfo(
            node_id=node,
            root=tree.root,
            parent=tree.parent[node],
            level=tree.level[node],
            children=result.bfs_children[node],
            dfs_number=result.dfs_number[node],
            subtree_max=result.subtree_max[node],
            child_intervals={
                child: (
                    result.dfs_number[child],
                    result.subtree_max[child],
                )
                for child in result.bfs_children[node]
            },
        )
    return infos
