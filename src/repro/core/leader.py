"""Leader election for the setup phase.

The paper delegates leader election to Bar-Yehuda, Goldreich & Itai's
companion paper [4] (a tournament built on single-hop emulation, expected
``O(loglog n · (D + log n) · log Δ)``).  Reproducing [4] wholesale is out of
scope (see DESIGN.md §4); what *this* paper needs from it is only: a unique
station ends up knowing it is the leader, whp, in setup time.

We substitute an **epidemic max-ID election**: every station repeatedly
Decay-broadcasts the largest ID it has heard of; rounds are window-aligned
Decay invocations; after a horizon of ``rounds`` every station believes the
largest ID it has seen, and a station whose own ID equals its belief
declares itself leader.  The true maximum always believes itself, so there
is always at least one leader and the true max is always among the
leaders; a *false* extra leader (a station that never heard of any larger
ID) is possible with small probability and is caught by the setup phase's
Las-Vegas verification (two roots → the root never collects n−1
confirmations → retry, §2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.decay import DecaySession
from repro.core.messages import LeaderMessage
from repro.core.slots import decay_budget
from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.transmission import Transmission
from repro.rng import RngFactory


class LeaderElectionProcess(Process):
    """Epidemic max-ID gossip: one Decay invocation per round.

    Rounds are aligned at slot multiples of ``budget`` so that all
    stations run the *same* invocation, as Decay's property (2) assumes.
    """

    def __init__(
        self,
        node_id: NodeId,
        budget: int,
        rounds: int,
        rng: random.Random,
        channel: int = 0,
    ):
        super().__init__(node_id)
        self.budget = budget
        self.rounds = rounds
        self.channel = channel
        self._rng = rng
        self.best_id: NodeId = node_id
        self._session: Optional[DecaySession] = None
        self._session_round = -1

    def _round(self, slot: int) -> int:
        return slot // self.budget

    @property
    def horizon_slots(self) -> int:
        """Slots after which the election result is read out."""
        return self.rounds * self.budget

    def on_slot(self, slot: int):
        round_index = self._round(slot)
        if round_index >= self.rounds:
            return None
        if self._session_round != round_index:
            self._session = DecaySession(self.budget, self._rng)
            self._session_round = round_index
        assert self._session is not None
        if self._session.should_transmit():
            return Transmission(
                LeaderMessage(sender=self.node_id, best_id=self.best_id),
                self.channel,
            )
        return None

    def on_receive(self, slot: int, channel: int, payload) -> None:
        if channel != self.channel:
            return
        if isinstance(payload, LeaderMessage):
            if payload.best_id > self.best_id:  # type: ignore[operator]
                self.best_id = payload.best_id

    def believes_leader(self) -> bool:
        """After the horizon: does this station think it is the leader?"""
        return self.best_id == self.node_id

    def is_done(self) -> bool:
        return False  # horizon-driven, not event-driven


@dataclass
class LeaderElectionResult:
    """Outcome of one election run."""

    leaders: List[NodeId]  # stations that believe they lead (usually one)
    true_max: NodeId
    slots: int
    agreed: bool  # every station believes in the true maximum

    @property
    def unique(self) -> bool:
        return len(self.leaders) == 1


def default_election_rounds(n: int, diameter_bound: Optional[int] = None) -> int:
    """A horizon that makes agreement overwhelmingly likely.

    The max ID must cross at most ``diameter_bound`` hops; each hop takes a
    small expected number of rounds, so ``4·(D̂ + log2 n) + 8`` rounds with
    D̂ defaulting to n−1 (all any station knows a priori) is very safe.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    d_hat = diameter_bound if diameter_bound is not None else max(1, n - 1)
    return 4 * (d_hat + max(1, math.ceil(math.log2(max(2, n))))) + 8


def run_leader_election(
    graph: Graph,
    seed: int,
    rounds: Optional[int] = None,
    diameter_bound: Optional[int] = None,
) -> LeaderElectionResult:
    """Run one epidemic election over ``graph`` and report the outcome."""
    factory = RngFactory(seed)
    budget = decay_budget(graph.max_degree())
    n = graph.num_nodes
    if rounds is None:
        rounds = default_election_rounds(n, diameter_bound)
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, LeaderElectionProcess] = {}
    for node in graph.nodes:
        process = LeaderElectionProcess(
            node_id=node,
            budget=budget,
            rounds=rounds,
            rng=factory.for_node(node),
        )
        processes[node] = process
        network.attach(process)
    horizon = rounds * budget
    network.run(horizon)
    true_max = max(graph.nodes)  # type: ignore[type-var]
    leaders = [
        node for node, proc in processes.items() if proc.believes_leader()
    ]
    agreed = all(proc.best_id == true_max for proc in processes.values())
    return LeaderElectionResult(
        leaders=leaders, true_max=true_max, slots=network.slot, agreed=agreed
    )


class BitElectionProcess(Process):
    """Bitwise tournament election (the higher-fidelity [4] stand-in).

    The max ID is found bit by bit, from the most significant: in round b
    every still-candidate station whose ID has bit b set *floods* a
    one-bit "someone has a 1 here" signal for a fixed window (repeated
    window-aligned Decay, BGI-broadcast style).  At the window's end,
    every station that heard (or originated) the signal records bit b = 1
    and candidates lacking the bit withdraw; silence records 0.  After
    ``id_bits`` rounds every station holds the maximum ID, and the unique
    station owning it becomes leader.

    Cost: ``id_bits`` windows of ``(D̂ + 2·log n)`` Decay invocations —
    ``O(log N · (D + log n) · log Δ)`` slots, the [4] shape without its
    loglog refinement.  Success is whp per flood (a missed flood yields
    disagreement, caught by the setup phase's Las-Vegas verification,
    identically to the epidemic variant).
    """

    def __init__(
        self,
        node_id: int,
        id_bits: int,
        budget: int,
        window_invocations: int,
        rng: random.Random,
        channel: int = 0,
    ):
        super().__init__(node_id)
        if id_bits < 1:
            raise ConfigurationError(f"need id_bits >= 1, got {id_bits}")
        self.id_bits = id_bits
        self.budget = budget
        self.window_invocations = window_invocations
        self.window_slots = window_invocations * budget
        self.channel = channel
        self._rng = rng
        self.candidate = True
        self.known_prefix = 0  # the max ID's bits discovered so far
        self._heard_this_round = False
        self._session: Optional[DecaySession] = None
        self._session_invocation = -1
        self._finalized_round = -1

    # ------------------------------------------------------------------
    # Round arithmetic (slot-number driven)
    # ------------------------------------------------------------------

    def _round(self, slot: int) -> int:
        return slot // self.window_slots

    def _bit_of_round(self, round_index: int) -> int:
        return self.id_bits - 1 - round_index

    @property
    def horizon_slots(self) -> int:
        return self.id_bits * self.window_slots

    def _finalize_rounds_through(self, round_index: int) -> None:
        """Close every round before ``round_index`` (records its bit)."""
        while self._finalized_round < round_index - 1:
            closing = self._finalized_round + 1
            bit = self._bit_of_round(closing)
            heard = self._heard_this_round
            self._heard_this_round = False
            self._finalized_round = closing
            if heard:
                self.known_prefix |= 1 << bit
                if self.candidate and not (self.node_id >> bit) & 1:
                    self.candidate = False
            # Silence leaves the bit 0 and candidates unchanged.

    def _is_signal_source(self, round_index: int) -> bool:
        if not self.candidate:
            return False
        bit = self._bit_of_round(round_index)
        return bool((self.node_id >> bit) & 1)

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        round_index = self._round(slot)
        if round_index >= self.id_bits:
            self._finalize_rounds_through(self.id_bits)
            return None
        self._finalize_rounds_through(round_index)
        transmitting = self._is_signal_source(round_index) or (
            self._heard_this_round
        )
        if not transmitting:
            return None
        if self._is_signal_source(round_index):
            self._heard_this_round = True
        invocation = slot // self.budget
        if self._session_invocation != invocation:
            self._session = DecaySession(self.budget, self._rng)
            self._session_invocation = invocation
        assert self._session is not None
        if self._session.should_transmit():
            return Transmission(
                LeaderMessage(sender=self.node_id, best_id=round_index),
                self.channel,
            )
        return None

    def on_receive(self, slot: int, channel: int, payload) -> None:
        if channel != self.channel:
            return
        if isinstance(payload, LeaderMessage):
            if payload.best_id == self._round(slot):
                self._heard_this_round = True

    def believes_leader(self) -> bool:
        """After the horizon: is this station the (unique) maximum?"""
        self._finalize_rounds_through(self.id_bits)
        return self.candidate and self.node_id == self.known_prefix

    def known_max(self) -> int:
        self._finalize_rounds_through(self.id_bits)
        return self.known_prefix


def run_bit_election(
    graph: Graph,
    seed: int,
    diameter_bound: Optional[int] = None,
    id_bits: Optional[int] = None,
) -> LeaderElectionResult:
    """Run the bitwise tournament election over ``graph``.

    Station IDs must be non-negative integers; ``id_bits`` defaults to
    the width of the largest ID (every station can compute a common width
    from the known ID space, e.g. the bound N of §1.1).
    """
    if any(not isinstance(v, int) or v < 0 for v in graph.nodes):
        raise ConfigurationError(
            "bit election needs non-negative integer IDs"
        )
    factory = RngFactory(seed)
    budget = decay_budget(graph.max_degree())
    n = graph.num_nodes
    if id_bits is None:
        id_bits = max(1, max(graph.nodes).bit_length())  # type: ignore[arg-type]
    d_hat = diameter_bound if diameter_bound is not None else max(1, n - 1)
    window_invocations = d_hat + 2 * max(
        1, math.ceil(math.log2(max(2, n)))
    )
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[int, BitElectionProcess] = {}
    for node in graph.nodes:
        process = BitElectionProcess(
            node_id=node,
            id_bits=id_bits,
            budget=budget,
            window_invocations=window_invocations,
            rng=factory.for_node(node),
        )
        processes[node] = process
        network.attach(process)
    network.run(processes[graph.nodes[0]].horizon_slots)
    true_max = max(graph.nodes)  # type: ignore[type-var]
    leaders = [
        node for node, proc in processes.items() if proc.believes_leader()
    ]
    agreed = all(
        proc.known_max() == true_max for proc in processes.values()
    )
    return LeaderElectionResult(
        leaders=leaders, true_max=true_max, slots=network.slot, agreed=agreed
    )


def elect_leader(
    graph: Graph,
    seed: int,
    max_attempts: int = 10,
    diameter_bound: Optional[int] = None,
) -> LeaderElectionResult:
    """Las-Vegas wrapper: re-run the election until all stations agree.

    In the full setup phase disagreement is detected by the BFS
    confirmation count; here (when the election is run standalone) we use
    the simulator's omniscience to the same effect.  Total slots across
    attempts are accumulated into the returned result.
    """
    total_slots = 0
    for attempt in range(max_attempts):
        result = run_leader_election(
            graph, seed=seed + attempt, diameter_bound=diameter_bound
        )
        total_slots += result.slots
        if result.agreed and result.unique:
            return LeaderElectionResult(
                leaders=result.leaders,
                true_max=result.true_max,
                slots=total_slots,
                agreed=True,
            )
    raise ConfigurationError(
        f"leader election failed to converge in {max_attempts} attempts; "
        f"increase the round horizon"
    )
