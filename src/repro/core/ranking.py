"""The ranking application (§7).

"Given n processors with distinct IDs id₁,…,idₙ, renumber the processors
…  such that 1 ≤ id'ᵢ ≤ n and id'ᵢ < id'ⱼ if and only if idᵢ < idⱼ.

The protocol: use point-to-point communication to send all the IDs to the
root.  It calculates the destination of each of the new IDs and sends them
to the nodes.  There is a total of 2n−2 messages, which require
O(n·log Δ) time (not including the setup costs of Section 2)" — overall
``O(n·log n·log Δ)`` including setup.

Implementation: every station submits ``(its ID, its DFS address)`` to the
root (address 0).  Once the root holds all n−1 reports it assigns ranks
1..n by ID order and sends each station its rank, point-to-point to the
reported address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.point_to_point import build_p2p_network
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.trace import NetworkStats

TAG_REPORT = "rank-report"
TAG_ASSIGN = "rank-assign"


@dataclass
class RankingResult:
    """Outcome of the ranking protocol."""

    slots: int
    collect_slots: int  # slots until the root held all reports
    ranks: Dict[NodeId, int]  # 1-based rank at each station
    stats: NetworkStats


def run_ranking(
    graph: Graph,
    tree: BFSTree,
    seed: int,
    max_slots: Optional[int] = None,
    level_classes: int = 3,
) -> RankingResult:
    """Run the ranking protocol over a DFS-prepared tree."""
    if not tree.has_dfs_intervals:
        raise ConfigurationError("ranking needs a DFS-prepared tree")
    network, processes, _slots = build_p2p_network(
        graph, tree, seed, level_classes
    )
    n = graph.num_nodes
    root = tree.root
    root_process = processes[root]
    root_address = tree.dfs_number[root]

    # Stage 1: every station reports (ID, address) to the root.
    for node in graph.nodes:
        if node == root:
            continue
        processes[node].submit(
            root_address, (TAG_REPORT, node, tree.dfs_number[node])
        )
    if max_slots is None:
        from repro.core.point_to_point import p2p_reference_slots

        bound = p2p_reference_slots(
            2 * n, tree.depth, graph.max_degree(), level_classes
        )
        max_slots = max(20_000, int(20 * bound))

    network.run(
        max_slots,
        until=lambda net: len(root_process.delivered) >= n - 1,
        check_every=2,
    )
    collect_slots = network.slot

    # Stage 2: the root ranks all IDs (its own included) and distributes.
    reports = {root: root_address}
    for message in root_process.delivered:
        tag, node, address = message.payload
        if tag != TAG_REPORT:
            raise SimulationTimeout(f"unexpected payload {message.payload!r}")
        reports[node] = address
    if len(reports) != n:
        raise SimulationTimeout(
            f"root holds {len(reports)} reports, expected {n}"
        )
    ordered = sorted(reports)  # type: ignore[type-var]
    ranks = {node: index + 1 for index, node in enumerate(ordered)}
    for node, address in reports.items():
        if node == root:
            continue
        root_process.submit(address, (TAG_ASSIGN, ranks[node]))

    def all_assigned(net) -> bool:
        return all(
            any(
                m.payload[0] == TAG_ASSIGN
                for m in processes[node].delivered
            )
            for node in graph.nodes
            if node != root
        ) and all(p.is_done() for p in processes.values())

    network.run(max_slots, until=all_assigned, check_every=4)

    # Read out what each station learned.
    learned: Dict[NodeId, int] = {root: ranks[root]}
    for node in graph.nodes:
        if node == root:
            continue
        assignments = [
            m.payload[1]
            for m in processes[node].delivered
            if m.payload[0] == TAG_ASSIGN
        ]
        if len(assignments) != 1:
            raise SimulationTimeout(
                f"station {node!r} got {len(assignments)} rank assignments"
            )
        learned[node] = assignments[0]
    return RankingResult(
        slots=network.slot,
        collect_slots=collect_slots,
        ranks=learned,
        stats=network.stats,
    )
