"""The distributed BFS-tree construction of the setup phase (§2).

Structure (two concurrent channels, as §1.4's "separate channels"):

* **Expansion** (channel 0): synchronized stages.  Stage ``s`` occupies a
  fixed window of slots; during it, every station that joined the tree at
  level ``s`` repeatedly invokes Decay to announce ``JOIN(level=s)``.  An
  unjoined station that first hears a JOIN adopts the announcer as its BFS
  parent and ``level = s+1``, and will announce during stage ``s+1``.  With
  ``2·ceil(log2 n)`` invocations per stage, a frontier station misses its
  stage with probability ≤ (1/2)^(2·log n) = 1/n² (the paper's ε = 1/n
  after a union bound).
* **Confirmation** (channel 1): "when joining the tree each node sends a
  message to the root using the collection protocol of Section 4.  This
  protocol only uses already constructed edges of the BFS tree, always
  succeeds" — each joining station submits a CONFIRM carrying its (id,
  parent, level); the root counts.  When the root holds n−1 confirmations
  the setup succeeded *and the root knows it*.

Las-Vegas wrapper (§2): if the root has not collected everything within
twice the expected time, abort and re-invoke; "since the probability of
reinvocation is less than 1/2, the entire modified setup protocol lasts
O((n + D·log n)·log Δ) time slots on the average."
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.collection import CollectionProcess
from repro.core.decay import DecaySession
from repro.core.messages import AckMessage, DataMessage, JoinMessage
from repro.core.slots import SlotStructure, decay_budget
from repro.core.transport import TransportLane
from repro.core.tree import TreeInfo, bfs_tree_from_tree_info
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree, reference_bfs_tree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.transmission import Transmission
from repro.rng import RngFactory

EXPANSION_CHANNEL = 0
CONFIRM_CHANNEL = 1


class BFSSetupProcess(Process):
    """One station's behaviour during the BFS setup phase.

    The station knows ``n`` and the Δ bound a priori (§1.1); everything
    else — its level, parent, and when to speak — is derived from received
    messages and the global slot number.
    """

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        budget: int,
        stage_invocations: int,
        slots: SlotStructure,
        rng: random.Random,
        is_root: bool,
    ):
        super().__init__(node_id)
        self.n = n
        self.budget = budget
        self.stage_invocations = stage_invocations
        self.stage_slots = stage_invocations * budget
        self.confirm_slots = slots
        self._rng = rng
        self.is_root = is_root
        # Tree state (root knows itself at level 0 from the start).
        self.level: Optional[int] = 0 if is_root else None
        self.parent: Optional[NodeId] = node_id if is_root else None
        self.joined_at_slot: Optional[int] = 0 if is_root else None
        # Expansion machinery.
        self._session: Optional[DecaySession] = None
        self._session_invocation = -1
        # Confirmation machinery: a collection lane, created lazily at join
        # time (its level class is only known then).
        self._confirm_lane: Optional[TransportLane] = None
        self.confirmations: List[Tuple[NodeId, NodeId, int]] = []  # root only
        self._confirm_serial = 0

    # ------------------------------------------------------------------
    # Stage arithmetic (purely slot-number driven, identical at all nodes)
    # ------------------------------------------------------------------

    def _stage(self, slot: int) -> int:
        return slot // self.stage_slots

    def _invocation(self, slot: int) -> int:
        return slot // self.budget

    @property
    def joined(self) -> bool:
        return self.level is not None

    @property
    def setup_complete(self) -> bool:
        """Root-local success condition: all n−1 confirmations held."""
        return self.is_root and len(self.confirmations) >= self.n - 1

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        actions = []
        expansion = self._expansion_transmission(slot)
        if expansion is not None:
            actions.append(expansion)
        if self._confirm_lane is not None:
            confirm = self._confirm_lane.on_slot(slot)
            if confirm is not None:
                actions.append(confirm)
        return actions or None

    def _expansion_transmission(self, slot: int) -> Optional[Transmission]:
        if not self.joined:
            return None
        assert self.level is not None
        if self._stage(slot) != self.level:
            return None  # a station announces only during its own stage
        invocation = self._invocation(slot)
        if self._session_invocation != invocation:
            self._session = DecaySession(self.budget, self._rng)
            self._session_invocation = invocation
        assert self._session is not None
        if self._session.should_transmit():
            return Transmission(
                JoinMessage(sender=self.node_id, level=self.level),
                EXPANSION_CHANNEL,
            )
        return None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if channel == EXPANSION_CHANNEL:
            if isinstance(payload, JoinMessage) and not self.joined:
                self._join(slot, payload)
            return
        if channel == CONFIRM_CHANNEL and self._confirm_lane is not None:
            if isinstance(payload, DataMessage):
                if payload.hop_dest != self.node_id:
                    return
                if not self._confirm_lane.accept_data(slot, payload):
                    return
                if self.is_root:
                    self.confirmations.append(payload.payload)
                else:
                    assert self.parent is not None
                    self._confirm_lane.enqueue(
                        payload.rehop(self.node_id, self.parent),
                        received_at_slot=slot,
                    )
            elif isinstance(payload, AckMessage):
                if payload.hop_dest == self.node_id:
                    self._confirm_lane.accept_ack(payload)

    def _join(self, slot: int, announcement: JoinMessage) -> None:
        self.level = announcement.level + 1
        self.parent = announcement.sender
        self.joined_at_slot = slot
        self._make_confirm_lane()
        self._submit_confirmation()

    def _make_confirm_lane(self) -> None:
        assert self.level is not None
        self._confirm_lane = TransportLane(
            node_id=self.node_id,
            level=self.level,
            slots=self.confirm_slots,
            rng=self._rng,
            channel=CONFIRM_CHANNEL,
        )

    def _submit_confirmation(self) -> None:
        assert self._confirm_lane is not None and self.parent is not None
        assert self.level is not None
        message = DataMessage(
            msg_id=(self.node_id, self._confirm_serial),
            origin=self.node_id,
            hop_sender=self.node_id,
            hop_dest=self.parent,
            payload=(self.node_id, self.parent, self.level),
        )
        self._confirm_serial += 1
        self._confirm_lane.enqueue(message)

    # The root creates its confirmation lane eagerly so it can ack.
    def ensure_root_lane(self) -> None:
        if self.is_root and self._confirm_lane is None:
            self._make_confirm_lane()

    def tree_info(self) -> TreeInfo:
        """This station's resulting local knowledge (after success)."""
        if not self.joined:
            raise SimulationTimeout(
                f"station {self.node_id!r} never joined the BFS tree"
            )
        assert self.level is not None and self.parent is not None
        root = self.node_id if self.is_root else None
        # Non-roots do not know the root's ID from BFS alone; the TreeInfo
        # root field is filled by the driver (it is only used for
        # validation, not by any protocol decision).
        return TreeInfo(
            node_id=self.node_id,
            root=root if root is not None else self.node_id,
            parent=self.parent,
            level=self.level,
            children=(),
        )


@dataclass
class SetupResult:
    """Outcome of the Las-Vegas setup phase."""

    tree: BFSTree
    tree_infos: Dict[NodeId, TreeInfo]
    slots: int  # total slots, across all attempts
    attempts: int
    is_true_bfs: bool  # levels equal true graph distances


def expansion_parameters(n: int, max_degree: int) -> Tuple[int, int]:
    """(decay budget, invocations per stage) for the expansion protocol.

    ``2·ceil(log2 n)`` invocations drive the per-station stage-miss
    probability to 1/n² (the paper's ε = 1/n after the union bound).
    """
    budget = decay_budget(max_degree)
    stage_invocations = max(2, 2 * math.ceil(math.log2(max(2, n))))
    return budget, stage_invocations


def expected_setup_slots(n: int, depth: int, max_degree: int) -> float:
    """Reference scale for the §2 bound ``O((n + D·log n)·log Δ)``.

    Used to size the Las-Vegas timeout ("twice the expected time"): the
    expansion costs ``D`` stages of ``2·log n`` invocations of ``2·log Δ``
    slots, and the confirmation collection costs ``≈ 32.27·(n + D)·log Δ``
    slots (Theorem 4.4 with k = n−1), times the ×3 level multiplexing.
    """
    from repro.core.collection import expected_collection_slots

    log_n = math.log2(max(2, n))
    log_delta = math.log2(max(2, max_degree))
    expansion = (depth + 1) * (2 * log_n) * (2 * log_delta)
    confirmation = expected_collection_slots(
        n - 1, depth, max_degree, level_classes=3
    )
    return expansion + confirmation


def build_setup_network(
    graph: Graph,
    root: NodeId,
    seed: int,
) -> Tuple[RadioNetwork, Dict[NodeId, BFSSetupProcess]]:
    """Wire a network running the BFS setup phase with a known leader."""
    if root not in graph:
        raise ConfigurationError(f"unknown root {root!r}")
    factory = RngFactory(seed)
    n = graph.num_nodes
    budget, stage_invocations = expansion_parameters(n, graph.max_degree())
    confirm_slots = SlotStructure(
        decay_budget=budget, level_classes=3, with_acks=True
    )
    network = RadioNetwork(graph, num_channels=2)
    processes: Dict[NodeId, BFSSetupProcess] = {}
    for node in graph.nodes:
        process = BFSSetupProcess(
            node_id=node,
            n=n,
            budget=budget,
            stage_invocations=stage_invocations,
            slots=confirm_slots,
            rng=factory.for_node(node),
            is_root=(node == root),
        )
        processes[node] = process
        network.attach(process)
    processes[root].ensure_root_lane()
    return network, processes


@dataclass
class UnknownNSetupResult:
    """Outcome of the §8-remark-(1) variant (only a bound N on n known).

    Without n, the root cannot count confirmations to n−1, so termination
    is by *quiescence* and the result is Monte-Carlo: correct (spanning,
    true-BFS) with probability 1−ε rather than always.  ``complete`` is
    the omniscient verdict used by experiments; a deployment would simply
    accept the ε failure probability, exactly as the remark suggests.
    """

    tree: Optional[BFSTree]
    tree_infos: Dict[NodeId, TreeInfo]
    slots: int
    joined: int
    complete: bool


def run_setup_unknown_n(
    graph: Graph,
    root: NodeId,
    seed: int,
    n_bound: Optional[int] = None,
    quiet_phases: int = 24,
    hard_cap_slots: Optional[int] = None,
) -> UnknownNSetupResult:
    """§8 remark (1): BFS setup knowing only an upper bound ``n_bound`` ≥ n.

    "If n is not known but only an upper bound N, we can still find a BFS
    tree with probability 1−ε in expected time O(D·log(N/ε)·log Δ)."

    Stage sizing uses N in place of n (more invocations per stage, so the
    per-hop failure probability is ≤ 1/N² ≤ 1/n²); the root declares the
    phase over once no new confirmation has arrived for ``quiet_phases``
    collection phases plus one full expansion stage — a window that, whp,
    exceeds any gap between consecutive confirmations while stations are
    still joining.
    """
    from repro.graphs.properties import require_connected

    require_connected(graph)
    if root not in graph:
        raise ConfigurationError(f"unknown root {root!r}")
    n = graph.num_nodes
    if n_bound is None:
        n_bound = 2 * n
    if n_bound < n:
        raise ConfigurationError(
            f"n_bound={n_bound} is below the actual n={n}"
        )
    factory = RngFactory(seed)
    budget, stage_invocations = expansion_parameters(
        n_bound, graph.max_degree()
    )
    confirm_slots = SlotStructure(
        decay_budget=budget, level_classes=3, with_acks=True
    )
    network = RadioNetwork(graph, num_channels=2)
    processes: Dict[NodeId, BFSSetupProcess] = {}
    for node in graph.nodes:
        process = BFSSetupProcess(
            node_id=node,
            n=n_bound,
            budget=budget,
            stage_invocations=stage_invocations,
            slots=confirm_slots,
            rng=factory.for_node(node),
            is_root=(node == root),
        )
        processes[node] = process
        network.attach(process)
    processes[root].ensure_root_lane()
    root_process = processes[root]

    stage_slots = stage_invocations * budget
    quiet_window = stage_slots + quiet_phases * confirm_slots.phase_length
    if hard_cap_slots is None:
        hard_cap_slots = max(
            50_000,
            int(
                4
                * expected_setup_slots(
                    n_bound, n_bound, graph.max_degree()
                )
            ),
        )
    last_progress_slot = 0
    last_count = 0
    while network.slot < hard_cap_slots:
        network.step()
        count = len(root_process.confirmations)
        if count != last_count:
            last_count = count
            last_progress_slot = network.slot
        if network.slot - last_progress_slot >= quiet_window:
            break
    joined = [p for p in processes.values() if p.joined]
    complete = len(joined) == n and last_count >= n - 1
    infos: Dict[NodeId, TreeInfo] = {}
    tree: Optional[BFSTree] = None
    if complete:
        for node, process in processes.items():
            info = process.tree_info()
            info.root = root
            infos[node] = info
        tree = bfs_tree_from_tree_info(infos)
    return UnknownNSetupResult(
        tree=tree,
        tree_infos=infos,
        slots=network.slot,
        joined=len(joined),
        complete=complete,
    )


def run_setup(
    graph: Graph,
    root: NodeId,
    seed: int,
    max_attempts: int = 10,
    require_true_bfs: bool = False,
) -> SetupResult:
    """Run the Las-Vegas setup phase to completion.

    Each attempt runs until the root holds n−1 confirmations or the §2
    timeout (twice the expected time) expires; on timeout — or, with
    ``require_true_bfs``, when the spanning tree's levels are not the true
    BFS distances — the whole phase is re-invoked with fresh coins, exactly
    as the paper prescribes.  Slots are accumulated across attempts so
    measured setup times include the (rare) retries.
    """
    from repro.graphs.properties import bfs_levels, require_connected

    require_connected(graph)
    n = graph.num_nodes
    true_levels = bfs_levels(graph, root)
    depth = max(true_levels.values()) if true_levels else 0
    timeout = max(
        1_000, int(2 * expected_setup_slots(n, depth, graph.max_degree()))
    )
    total_slots = 0
    for attempt in range(max_attempts):
        network, processes = build_setup_network(
            graph, root, seed=seed + 7919 * attempt
        )
        root_process = processes[root]
        try:
            network.run(
                timeout, until=lambda net: root_process.setup_complete
            )
        except SimulationTimeout:
            total_slots += network.slot
            continue
        total_slots += network.slot
        infos = {}
        for node, process in processes.items():
            info = process.tree_info()
            info.root = root
            infos[node] = info
        tree = bfs_tree_from_tree_info(infos)
        is_true = all(
            tree.level[node] == true_levels[node] for node in graph.nodes
        )
        if require_true_bfs and not is_true:
            continue
        return SetupResult(
            tree=tree,
            tree_infos=infos,
            slots=total_slots,
            attempts=attempt + 1,
            is_true_bfs=is_true,
        )
    raise SimulationTimeout(
        f"setup phase failed {max_attempts} times on n={n}; "
        f"timeout={timeout} slots each",
        slots_elapsed=total_slots,
    )
