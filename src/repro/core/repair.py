"""Self-healing collection: watchdog, re-attachment, partition reporting.

The paper's collection protocol (§4) is *always successful* in the
failure-free model — but a single crashed BFS parent stalls its whole
subtree forever, because the transport resends the buffer head to the same
next hop until acknowledged.  This module adds the fault-tolerance layer:

* **Ack-timeout watchdog** — after ``RepairPolicy.suspect_after``
  consecutive unacknowledged Decay phases for the same message, the next
  hop is suspected dead.
* **Local re-attachment** — the station picks an alive neighbor at BFS
  level ≤ its own, adopts it as its new parent (renumbering its own level
  to the new parent's + 1), and re-addresses its whole buffer there.
  Candidate discovery goes through a :class:`NeighborRegistry`, the
  simulation stand-in for a low-rate HELLO/beacon sub-protocol.
* **Graceful partition handling** — a station that runs out of candidates
  declares itself partitioned and falls silent; its silence propagates the
  detection down its subtree (children stop getting acks and run the same
  watchdog).  The driver then terminates with a structured
  :class:`ResilientCollectionResult` instead of raising
  :class:`~repro.errors.SimulationTimeout`.

End-to-end safety rests on two transport properties that survive
failures: messages move buffer-to-buffer only on acknowledgement (so a
message is never *lost*, only possibly duplicated), and every lane
suppresses duplicates by message ID (so redelivery after a repair is
idempotent and the root still delivers exactly once).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.collection import (
    CollectionProcess,
    expected_collection_slots,
)
from repro.core.messages import DataMessage
from repro.core.slots import SlotStructure, decay_budget
from repro.core.transport import RetryPolicy
from repro.core.tree import TreeInfo, tree_info_from_bfs_tree
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.failures import FailureModel
from repro.radio.network import RadioNetwork
from repro.radio.trace import EventTrace, NetworkStats


@dataclass(frozen=True)
class RepairPolicy:
    """Tuning knobs of the self-healing layer.

    ``suspect_after`` is the watchdog threshold: that many *completed*
    Decay phases attempting the same head without an acknowledgement mark
    the next hop as suspect.  ``retry`` is the transport's per-message
    retry/backoff policy; the default never exhausts a message (the
    watchdog, not the lane, decides failover) and keeps backoff short so
    suspicion builds quickly.
    """

    suspect_after: int = 3
    retry: RetryPolicy = RetryPolicy(max_attempts=None, backoff_cap=1)

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise ConfigurationError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )


@dataclass(frozen=True)
class RepairEvent:
    """One successful re-attachment."""

    slot: int
    node: NodeId
    old_parent: NodeId
    new_parent: NodeId
    old_level: int
    new_level: int


class NeighborRegistry:
    """Liveness and level lookups for *direct neighbors* only.

    This is the simulation's stand-in for a HELLO/beacon sub-protocol:
    each station could learn, at O(1) amortized slots, which neighbors are
    alive, their current (possibly renumbered) level, and whether they
    have given up — here we answer those queries from the simulator's
    global state instead of spending slots on beacons.  The cycle check
    walks current parent pointers; a distributed implementation would get
    the same guarantee from root-sequenced repair epochs (as in AODV).
    """

    def __init__(self, graph: Graph, failures: Optional[FailureModel]):
        self._graph = graph
        self._failures = failures
        self._procs: Dict[NodeId, "ResilientCollectionProcess"] = {}

    def register(self, process: "ResilientCollectionProcess") -> None:
        self._procs[process.node_id] = process

    def alive(self, node: NodeId, slot: int) -> bool:
        return self._failures is None or not self._failures.node_down(
            node, slot
        )

    def level_of(self, node: NodeId) -> int:
        return self._procs[node].current_level

    def _would_cycle(self, node: NodeId, candidate: NodeId) -> bool:
        """Whether attaching ``node`` under ``candidate`` closes a loop."""
        seen: Set[NodeId] = set()
        cursor = candidate
        while cursor not in seen:
            if cursor == node:
                return True
            seen.add(cursor)
            process = self._procs.get(cursor)
            if process is None or process.info.is_root:
                return False
            cursor = process.parent
        return True  # pre-existing loop above the candidate: stay away

    def best_candidate(
        self,
        node: NodeId,
        level: int,
        exclude: Set[NodeId],
        slot: int,
    ) -> Optional[NodeId]:
        """The most attractive re-attachment target, or None.

        Eligible: an alive, non-partitioned direct neighbor at current
        level ≤ ``level`` whose parent chain does not lead back to
        ``node``.  Preference: lowest level, then lowest ID (deterministic
        tie-break, mirroring the ID-ordered elections elsewhere).
        """
        best: Optional[Tuple[int, NodeId]] = None
        for neighbor in self._graph.neighbors(node):
            if neighbor in exclude:
                continue
            process = self._procs[neighbor]
            if process.partitioned:
                continue
            if process.current_level > level:
                continue
            if not self.alive(neighbor, slot):
                continue
            if self._would_cycle(node, neighbor):
                continue
            key = (process.current_level, neighbor)
            if best is None or key < best:
                best = key
        return None if best is None else best[1]


class ResilientCollectionProcess(CollectionProcess):
    """Collection hardened with the watchdog/re-attachment layer.

    Runs the unchanged §4 data path (Decay + deterministic acks) in
    non-strict mode, plus, per slot end, the repair state machine
    described in the module docstring.
    """

    def __init__(
        self,
        info: TreeInfo,
        slots: SlotStructure,
        rng: random.Random,
        registry: NeighborRegistry,
        policy: RepairPolicy,
        initial_payloads: Iterable[Any] = (),
        channel: int = 0,
    ):
        self.policy = policy
        self._registry = registry
        self._suspected: Set[NodeId] = set()
        self.partitioned = False
        self.partitioned_at: Optional[int] = None
        self.repairs: List[RepairEvent] = []
        super().__init__(
            info,
            slots,
            rng,
            initial_payloads=initial_payloads,
            channel=channel,
            strict=False,
            retry=policy.retry,
        )
        registry.register(self)

    @property
    def current_level(self) -> int:
        """This station's (possibly renumbered) BFS level."""
        return self.lane.level

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        if self.partitioned:
            # A partitioned station falls completely silent: it stops
            # acking, so its children's watchdogs fire and the partition
            # verdict propagates down the subtree.
            return None
        return super().on_slot(slot)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if self.partitioned:
            return
        backlog_before = self.lane.backlog
        super().on_receive(slot, channel, payload)
        if self.lane.backlog < backlog_before:
            # Upward progress: the current parent is demonstrably alive,
            # so forgive past suspicions (they may have been collisions or
            # transient churn, and a revived neighbor is a candidate again).
            self._suspected.clear()

    def on_slot_end(self, slot: int) -> None:
        if self.partitioned or self.info.is_root:
            return
        lane = self.lane
        if lane.buffer and lane.failed_attempts(slot) >= self.policy.suspect_after:
            self._repair(slot)

    def quiet_until(self, slot: int) -> int:
        # The per-slot watchdog in on_slot_end must observe every slot;
        # opt back out of the inherited lane-based idle declaration.
        # (Resilient runs attach a failure model, which disables the idle
        # fast path anyway — this keeps the contract honest regardless.)
        return slot

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def _repair(self, slot: int) -> None:
        self._suspected.add(self.parent)
        candidate = self._registry.best_candidate(
            self.node_id,
            self.current_level,
            exclude=self._suspected | {self.node_id},
            slot=slot,
        )
        if candidate is None:
            self.partitioned = True
            self.partitioned_at = slot
            self.lane.muted = True
            return
        old_parent, old_level = self.parent, self.current_level
        new_level = self._registry.level_of(candidate) + 1
        self.parent = candidate
        self.lane.retarget(candidate, new_level)
        self.repairs.append(
            RepairEvent(
                slot, self.node_id, old_parent, candidate, old_level, new_level
            )
        )

    def terminal(self, slot: int) -> bool:
        """Whether this station can never contribute further deliveries."""
        return self.partitioned or self.lane.quiescent(slot)


@dataclass
class ResilientCollectionResult:
    """Structured outcome of a collection run under failures.

    Unlike :class:`~repro.core.collection.CollectionResult` this never
    presumes total success: it reports what was delivered, what remained
    stuck and where, which stations declared themselves partitioned, and
    the analytically-computed ground truth to score that detection
    against.
    """

    slots: int
    delivered: List[DataMessage]
    expected_by_origin: Dict[NodeId, int]
    stats: NetworkStats
    slot_structure: SlotStructure
    repairs: List[RepairEvent]
    declared_partitioned: Tuple[NodeId, ...]
    unreachable: Tuple[NodeId, ...]  # ground truth at the final slot
    down_at_end: Tuple[NodeId, ...]
    timed_out: bool = False
    undelivered: List[Tuple[NodeId, int]] = field(default_factory=list)

    @property
    def expected(self) -> int:
        return sum(self.expected_by_origin.values())

    @property
    def messages_delivered(self) -> int:
        return len(self.delivered)

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of *all* injected messages."""
        if self.expected == 0:
            return 1.0
        return len(self.delivered) / self.expected

    @property
    def reachable_delivery_ratio(self) -> float:
        """Delivered fraction of messages from the root's surviving
        component — the fraction the repaired protocol is accountable
        for (messages stranded behind a true partition are excluded)."""
        cut = set(self.unreachable)
        expected = sum(
            count
            for origin, count in self.expected_by_origin.items()
            if origin not in cut
        )
        if expected == 0:
            return 1.0
        delivered = sum(1 for m in self.delivered if m.origin not in cut)
        return delivered / expected

    @property
    def partition_detected(self) -> bool:
        return bool(self.declared_partitioned)

    @property
    def partition_precision(self) -> float:
        """Of the stations that declared partition, how many truly were."""
        declared = set(self.declared_partitioned)
        if not declared:
            return 1.0
        return len(declared & set(self.unreachable)) / len(declared)

    @property
    def partition_recall(self) -> float:
        """Of truly cut-off *alive* stations, how many declared it.

        Crashed stations cannot declare anything, so recall is scored
        over the alive unreachable ones only.
        """
        actual = set(self.unreachable) - set(self.down_at_end)
        if not actual:
            return 1.0
        return len(actual & set(self.declared_partitioned)) / len(actual)


def build_resilient_collection_network(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
    failures: Optional[FailureModel] = None,
    policy: Optional[RepairPolicy] = None,
    level_classes: int = 3,
    budget: Optional[int] = None,
    trace: Optional[EventTrace] = None,
) -> Tuple[
    RadioNetwork,
    Dict[NodeId, ResilientCollectionProcess],
    SlotStructure,
    NeighborRegistry,
]:
    """Wire a radio network running self-healing collection everywhere."""
    from repro.rng import RngFactory

    unknown = set(sources) - set(graph.nodes)
    if unknown:
        raise ConfigurationError(f"unknown source stations {sorted(unknown)!r}")
    policy = policy if policy is not None else RepairPolicy()
    factory = RngFactory(seed)
    slot_structure = SlotStructure(
        decay_budget=budget if budget is not None else decay_budget(graph.max_degree()),
        level_classes=level_classes,
        with_acks=True,
    )
    infos = tree_info_from_bfs_tree(tree)
    network = RadioNetwork(
        graph, num_channels=1, failures=failures, trace=trace
    )
    registry = NeighborRegistry(graph, failures)
    processes: Dict[NodeId, ResilientCollectionProcess] = {}
    for node in graph.nodes:
        process = ResilientCollectionProcess(
            info=infos[node],
            slots=slot_structure,
            rng=factory.for_node(node),
            registry=registry,
            policy=policy,
            initial_payloads=sources.get(node, ()),
        )
        processes[node] = process
        network.attach(process)
    return network, processes, slot_structure, registry


def run_resilient_collection(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
    failures: Optional[FailureModel] = None,
    policy: Optional[RepairPolicy] = None,
    max_slots: Optional[int] = None,
    level_classes: int = 3,
    budget: Optional[int] = None,
    trace: Optional[EventTrace] = None,
    down_grace_slots: Optional[int] = None,
) -> ResilientCollectionResult:
    """Run collection under a failure model until nothing more can happen.

    Terminates when every station is *terminal* — drained, or declared
    partitioned — or when ``max_slots`` elapse; a timeout produces a
    structured result with ``timed_out=True`` (e.g. when a crashed-forever
    station froze undeliverable messages in its buffer) rather than
    raising :class:`~repro.errors.SimulationTimeout`.

    ``down_grace_slots`` trades completeness for termination: a station
    that has been continuously down for that many slots while holding
    undrained traffic is written off (its frozen messages are reported as
    undelivered) instead of blocking termination — it may still revive
    and deliver before every *other* station terminates.  ``None`` waits
    for revival up to ``max_slots``.
    """
    network, processes, slot_structure, _registry = (
        build_resilient_collection_network(
            graph, tree, sources, seed, failures, policy, level_classes,
            budget, trace,
        )
    )
    total = sum(len(v) for v in sources.values())
    if max_slots is None:
        bound = expected_collection_slots(
            total, tree.depth, graph.max_degree()
        )
        max_slots = max(20_000, int(40 * bound))
    blocked_since: Dict[NodeId, int] = {}

    def _finished(net: RadioNetwork) -> bool:
        slot = net.slot
        done = True
        for node, process in processes.items():
            if process.terminal(slot):
                blocked_since.pop(node, None)
                continue
            if failures is not None and failures.node_down(node, slot):
                first = blocked_since.setdefault(node, slot)
                if (
                    down_grace_slots is not None
                    and slot - first >= down_grace_slots
                ):
                    continue  # continuously dead past the grace: write off
            else:
                blocked_since.pop(node, None)
            done = False
        return done

    timed_out = False
    try:
        network.run(max_slots, until=_finished)
    except SimulationTimeout:
        timed_out = True
    root_process = processes[tree.root]
    final_slot = network.slot
    down_at_end = tuple(
        node
        for node in graph.nodes
        if failures is not None and failures.node_down(node, final_slot)
    )
    unreachable = _unreachable_from_root(graph, tree.root, set(down_at_end))
    expected_by_origin = {
        node: process._serial for node, process in processes.items()
    }
    delivered_ids = {m.msg_id for m in root_process.delivered}
    undelivered = [
        (node, serial)
        for node, count in expected_by_origin.items()
        for serial in range(count)
        if (node, serial) not in delivered_ids
    ]
    return ResilientCollectionResult(
        slots=final_slot,
        delivered=list(root_process.delivered),
        expected_by_origin=expected_by_origin,
        stats=network.stats,
        slot_structure=slot_structure,
        repairs=[
            event for p in processes.values() for event in p.repairs
        ],
        declared_partitioned=tuple(
            sorted(n for n, p in processes.items() if p.partitioned)
        ),
        unreachable=unreachable,
        down_at_end=down_at_end,
        timed_out=timed_out,
        undelivered=undelivered,
    )


def _unreachable_from_root(
    graph: Graph, root: NodeId, down: Set[NodeId]
) -> Tuple[NodeId, ...]:
    """Stations with no all-alive path to the root (ground truth)."""
    if root in down:
        return tuple(n for n in graph.nodes if n != root)
    reached = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for neighbor in graph.neighbors(node):
            if neighbor not in reached and neighbor not in down:
                reached.add(neighbor)
                frontier.append(neighbor)
    return tuple(n for n in graph.nodes if n not in reached)
