"""The complete setup pipeline in one call.

The paper's lifecycle is: elect a leader, build the BFS tree (Las-Vegas),
run the §5.1 preparation — then any number of collections, point-to-point
transmissions, broadcasts and rankings.  :func:`run_full_setup` performs
the whole one-time phase and returns a DFS-prepared tree plus the slot
accounting of each stage, so applications are three lines:

    setup = run_full_setup(graph, seed=7)
    result = run_point_to_point(graph, setup.tree, batch, seed=8)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bfs import run_setup
from repro.core.dfs import apply_preparation, prepared_tree_infos, run_dfs_preparation
from repro.core.leader import elect_leader, run_bit_election
from repro.core.tree import TreeInfo
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId


@dataclass
class FullSetupResult:
    """Everything the one-time phase produces."""

    tree: BFSTree  # spanning BFS tree with DFS intervals installed
    tree_infos: Dict[NodeId, TreeInfo]  # per-station local knowledge
    root: NodeId
    election_slots: int
    bfs_slots: int
    preparation_slots: int
    bfs_attempts: int

    @property
    def total_slots(self) -> int:
        return self.election_slots + self.bfs_slots + self.preparation_slots


def run_full_setup(
    graph: Graph,
    seed: int,
    election: str = "bit",
    root: Optional[NodeId] = None,
    max_attempts: int = 10,
    require_true_bfs: bool = False,
) -> FullSetupResult:
    """Run election + BFS setup + DFS preparation over ``graph``.

    Parameters
    ----------
    election:
        ``"bit"`` (the bitwise tournament, default), ``"epidemic"`` (the
        max-ID gossip), or ``"none"`` (use the given ``root`` without an
        election — the experiments' bypass).
    root:
        Required iff ``election == "none"``.

    A failed election (no unique agreed leader) or BFS attempt is retried
    with fresh coins, Las-Vegas style, with all slots accounted.
    """
    from repro.graphs.properties import require_connected

    require_connected(graph)
    election_slots = 0
    if election == "none":
        if root is None:
            raise ConfigurationError('election="none" requires a root')
        leader = root
    elif election == "bit":
        for attempt in range(max_attempts):
            result = run_bit_election(graph, seed=seed + 101 * attempt)
            election_slots += result.slots
            if result.unique and result.agreed:
                leader = result.leaders[0]
                break
        else:
            raise SimulationTimeout(
                f"bit election failed {max_attempts} times"
            )
    elif election == "epidemic":
        result = elect_leader(graph, seed=seed, max_attempts=max_attempts)
        election_slots = result.slots
        leader = result.leaders[0]
    else:
        raise ConfigurationError(
            f'unknown election {election!r}; use "bit", "epidemic" or "none"'
        )

    setup = run_setup(
        graph,
        root=leader,
        seed=seed + 1,
        max_attempts=max_attempts,
        require_true_bfs=require_true_bfs,
    )
    preparation = run_dfs_preparation(graph, setup.tree)
    apply_preparation(setup.tree, preparation)
    infos = prepared_tree_infos(graph, setup.tree, preparation)
    return FullSetupResult(
        tree=setup.tree,
        tree_infos=infos,
        root=leader,
        election_slots=election_slots,
        bfs_slots=setup.slots,
        preparation_slots=preparation.slots,
        bfs_attempts=setup.attempts,
    )
