"""§8 remark (2): running without pre-assigned IDs.

"If there are no IDs then the processors can randomly choose sufficiently
long IDs such that with probability 1−ε all the IDs are distinct."

The whole protocol stack (leader election, confirmation routing, DFS
ordering) only needs IDs to be *distinct and totally ordered*, so the
anonymous-network variant is: every station draws a uniform ID from a
space of size ``⌈N²/ε⌉`` (birthday bound: collision probability ≤ ε) and
proceeds as usual.  A collision is eventually caught by the Las-Vegas
setup verification — two stations claiming the same ID confuse either the
election or the confirmation count — whereupon fresh IDs are drawn.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, NodeId


def id_space_size(n_bound: int, epsilon: float) -> int:
    """Smallest ID space making P[any collision] ≤ ε (birthday bound).

    With m stations drawing uniformly from S values,
    ``P[collision] ≤ m(m−1)/(2S)``; solve for S.
    """
    if n_bound < 1:
        raise ConfigurationError(f"need n_bound >= 1, got {n_bound}")
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0,1), got {epsilon}")
    return max(1, math.ceil(n_bound * (n_bound - 1) / (2.0 * epsilon)))


def collision_probability_bound(n: int, space: int) -> float:
    """The birthday upper bound ``n(n−1)/(2·space)`` (clamped to 1)."""
    if n < 0 or space < 1:
        raise ConfigurationError("need n >= 0 and space >= 1")
    return min(1.0, n * (n - 1) / (2.0 * space))


@dataclass
class AnonymousIdAssignment:
    """Result of one round of random ID choice."""

    ids: Dict[NodeId, int]  # station -> chosen ID
    space: int
    attempts: int

    @property
    def distinct(self) -> bool:
        return len(set(self.ids.values())) == len(self.ids)


def choose_random_ids(
    stations: List[NodeId],
    n_bound: int,
    rng: random.Random,
    epsilon: float = 0.01,
    max_attempts: int = 64,
    require_distinct: bool = True,
) -> AnonymousIdAssignment:
    """Draw random IDs for anonymous stations.

    Each station independently draws from ``id_space_size(n_bound, ε)``.
    With ``require_distinct`` (the simulation's stand-in for the
    Las-Vegas retry that a real deployment performs after detecting
    confusion), redraw until all IDs differ; the expected number of
    attempts is ≤ 1/(1−ε).
    """
    if len(stations) > n_bound:
        raise ConfigurationError(
            f"{len(stations)} stations exceed the bound {n_bound}"
        )
    space = id_space_size(n_bound, epsilon)
    for attempt in range(1, max_attempts + 1):
        ids = {station: rng.randrange(space) for station in stations}
        assignment = AnonymousIdAssignment(
            ids=ids, space=space, attempts=attempt
        )
        if not require_distinct or assignment.distinct:
            return assignment
    raise ConfigurationError(
        f"no distinct assignment found in {max_attempts} attempts "
        f"(space={space}, stations={len(stations)})"
    )


def relabel_graph(
    graph: Graph, assignment: AnonymousIdAssignment
) -> Graph:
    """The same topology with stations renamed to their chosen IDs.

    Requires a distinct assignment (a simple graph cannot merge nodes).
    """
    if not assignment.distinct:
        raise ConfigurationError("cannot relabel with colliding IDs")
    ids = assignment.ids
    return Graph(
        {
            ids[node]: [ids[neighbor] for neighbor in graph.neighbors(node)]
            for node in graph.nodes
        }
    )
