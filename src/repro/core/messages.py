"""Message formats used by the paper's protocols.

The radio model gives receivers no physical-layer information about who
transmitted, so — exactly as §4 prescribes — every message carries the IDs
it needs inside its payload ("To each message we append the ID of the node
v which sent the message and the ID of v's BFS-parent").

All message types are small frozen dataclasses: hashable, comparable and
cheap, standing in for the O(log n)-bit packets of the model.  The
``hop_sender`` / ``hop_dest`` fields change at every hop; the ``origin`` /
``dest_address`` fields identify the end-to-end flow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable, Optional, Tuple

from repro.graphs.graph import NodeId


@dataclass(frozen=True)
class DataMessage:
    """A unicast data packet travelling hop by hop along the BFS tree.

    Used by collection (§4) and by both point-to-point subprotocols (§5).

    Attributes
    ----------
    msg_id:
        Globally unique message identifier, ``(origin, serial)``.
    origin:
        Station that injected the message.
    hop_sender / hop_dest:
        Current-hop transmitter and its intended next-hop receiver.  Per
        Theorem 3.1 each data message has exactly one destination.
    dest_address:
        Final destination as a DFS address (§5.1); ``None`` means "the
        root" (pure collection traffic).
    payload:
        Application payload (opaque).
    """

    msg_id: Tuple[NodeId, int]
    origin: NodeId
    hop_sender: NodeId
    hop_dest: NodeId
    dest_address: Optional[int] = None
    payload: Any = None

    def rehop(self, sender: NodeId, dest: NodeId) -> "DataMessage":
        """The same end-to-end message readdressed for the next hop."""
        return replace(self, hop_sender=sender, hop_dest=dest)


@dataclass(frozen=True)
class AckMessage:
    """A deterministic acknowledgement (§3) for one received data message.

    Sent in the slot immediately following the reception, by the station
    the data message was designated to, back toward ``hop_dest`` (the
    original transmitter).
    """

    msg_id: Tuple[NodeId, int]
    hop_sender: NodeId  # the acknowledging station
    hop_dest: NodeId  # the station whose transmission is being acked


@dataclass(frozen=True)
class JoinMessage:
    """BFS-expansion announcement: "I am at level ``level``, join under me"."""

    sender: NodeId
    level: int


@dataclass(frozen=True)
class LeaderMessage:
    """Epidemic leader-election gossip: the best (largest) ID heard so far."""

    sender: NodeId
    best_id: NodeId


@dataclass(frozen=True)
class TokenMessage:
    """The DFS token of §5.1 (only its holder transmits: conflict-free).

    During the first traversal (on the graph) the token broadcast carries
    the holder's ID and BFS parent, so all neighbors learn who is whose
    BFS child.  During the second traversal (on the BFS tree) it carries
    DFS-number assignments.
    """

    holder: NodeId
    next_holder: NodeId
    traversal: int  # 1 = DFS on the graph, 2 = DFS on the BFS tree
    holder_bfs_parent: Optional[NodeId] = None
    dfs_number: Optional[int] = None  # number assigned to next_holder
    returning: bool = False  # token backtracking to the parent
    max_descendant: Optional[int] = None  # reported while backtracking


@dataclass(frozen=True)
class BroadcastMessage:
    """A pipelined distribution packet (§6): the root's ``seq``-th message."""

    seq: int
    origin: NodeId
    payload: Any = None
    sender_level: int = 0


@dataclass(frozen=True)
class ResendRequest:
    """A NACK travelling to the root: "I am missing broadcast #``seq``".

    Carried as the payload of a collection DataMessage (§6: "v sends a
    message to the root requesting it to resend the missing message").
    """

    requester: NodeId
    seq: int


@dataclass(frozen=True)
class BroadcastSubmission:
    """A broadcast payload on its way up to the root for sequencing (§6)."""

    origin: NodeId
    body: Any


@dataclass(frozen=True)
class CheckpointAck:
    """§6's checkpoint acknowledgement: "I hold every message of
    checkpoint #``checkpoint``"."""

    origin: NodeId
    checkpoint: int


def message_bits(message: object) -> int:
    """Rough size of a message in bits, for model-compliance checks.

    The model allows messages of length O(log n); tests use this to assert
    that no protocol smuggles more than a constant number of IDs, sequence
    numbers and flags into one packet.
    """
    fields = getattr(message, "__dataclass_fields__", {})
    count = 0
    for name in fields:
        value = getattr(message, name)
        if isinstance(value, tuple):
            count += len(value)
        else:
            count += 1
    # Each field is an ID, a level, a sequence number or a flag: O(log n)
    # bits apiece.  Report "number of log-n words" * 1 for simplicity.
    return count


def is_protocol_message(payload: Hashable) -> bool:
    """Whether a payload is one of this module's message types."""
    return isinstance(
        payload,
        (
            DataMessage,
            AckMessage,
            JoinMessage,
            LeaderMessage,
            TokenMessage,
            BroadcastMessage,
            BroadcastSubmission,
            CheckpointAck,
            ResendRequest,
        ),
    )
