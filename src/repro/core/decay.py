"""The Decay primitive of Bar-Yehuda, Goldreich & Itai.

    procedure Decay(m);
        repeat at most 2·log Δ times
            transmit m to all neighbors;
            flip coin R ∈ {0, 1}
        until coin = 0.

Properties (§1.4):

1. One invocation lasts ``2·log Δ`` time slots.
2. If several neighbors of a node v use Decay to send messages, then with
   probability greater than 1/2, v receives one of the messages.

:class:`DecaySession` is the reusable in-protocol building block: one
instance per invocation, stepped once per transmission opportunity.  The
module also provides standalone processes and a closed-form/Monte-Carlo
analysis of property (2) used by experiment E1.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, List, Optional

from repro.graphs.graph import NodeId
from repro.radio.process import Process
from repro.radio.transmission import Transmission


class DecaySession:
    """One invocation of Decay by one station.

    The station calls :meth:`should_transmit` at each of its transmission
    opportunities within the phase.  Faithful to the paper's pseudocode:
    the station transmits, *then* flips a coin and falls silent ("dies")
    on 0, and never exceeds ``budget`` transmissions.
    """

    def __init__(self, budget: int, rng: random.Random):
        if budget < 1:
            raise ValueError(f"Decay budget must be >= 1, got {budget}")
        self.budget = budget
        self._rng = rng
        self._steps_taken = 0
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the station still transmits in this invocation."""
        return self._alive and self._steps_taken < self.budget

    def should_transmit(self) -> bool:
        """Decide (and record) one transmission opportunity.

        Returns True iff the station transmits at this opportunity; the
        post-transmission coin flip is performed internally.
        """
        if not self.alive:
            return False
        self._steps_taken += 1
        if self._rng.random() < 0.5:
            self._alive = False
        return True

    def kill(self) -> None:
        """Fall silent immediately (used when the message got acked)."""
        self._alive = False


class DecayTransmitter(Process):
    """Standalone process: transmit ``payload`` with one Decay invocation.

    Transmits on its channel at every slot from ``start_slot`` until the
    session dies.  Used by the single-layer experiments (E1) and Decay
    unit tests.
    """

    def __init__(
        self,
        node_id: NodeId,
        payload: Any,
        budget: int,
        rng: random.Random,
        start_slot: int = 0,
        channel: int = 0,
    ):
        super().__init__(node_id)
        self.payload = payload
        self.channel = channel
        self.start_slot = start_slot
        self.session = DecaySession(budget, rng)

    def on_slot(self, slot: int):
        if slot < self.start_slot:
            return None
        if self.session.should_transmit():
            return Transmission(self.payload, self.channel)
        return None

    def is_done(self) -> bool:
        return not self.session.alive


def success_probability_exact(num_transmitters: int, budget: int) -> Fraction:
    """Exact P[receiver hears exactly one transmitter in some step].

    Closed-form companion to Decay property (2), for a star: one receiver
    whose ``num_transmitters`` neighbors all start an independent Decay
    with the given budget.  Computed by dynamic programming over the number
    of live transmitters: at each step every live station transmits then
    survives with probability 1/2; the receiver succeeds at the first step
    that begins with exactly one live station.

    The paper's property (2) asserts this exceeds 1/2 whenever
    ``num_transmitters <= Δ`` and ``budget = 2·ceil(log2 Δ)``; experiment
    E1 checks the Monte-Carlo simulation against this exact value, and the
    exact value against 1/2.
    """
    if num_transmitters < 1:
        raise ValueError("need at least one transmitter")
    if budget < 1:
        raise ValueError("budget must be >= 1")
    # state: probability distribution over the number of live stations at
    # the *start* of each step, conditioned on not having succeeded yet.
    # Success at a step happens iff exactly one station is live then.
    half = Fraction(1, 2)
    dist = {num_transmitters: Fraction(1)}
    success = Fraction(0)
    for _ in range(budget):
        success += dist.get(1, Fraction(0))
        dist.pop(1, None)  # succeeded runs stop contributing
        new_dist: dict = {}
        for live, prob in dist.items():
            if live == 0:
                # Everyone already dead without success: absorbed failure.
                new_dist[0] = new_dist.get(0, Fraction(0)) + prob
                continue
            # Each of the `live` stations independently survives w.p. 1/2.
            for survivors in range(live + 1):
                weight = (
                    prob
                    * _binomial(live, survivors)
                    * half**live
                )
                new_dist[survivors] = (
                    new_dist.get(survivors, Fraction(0)) + weight
                )
        dist = new_dist
    return success


def _binomial(n: int, k: int) -> int:
    import math

    return math.comb(n, k)


def simulate_star_reception(
    num_transmitters: int,
    budget: int,
    rng: random.Random,
    trials: int,
) -> float:
    """Monte-Carlo estimate of the same star-reception probability.

    Simulates the coin flips directly (no radio engine) for speed; the
    engine-level equivalent lives in experiment E1 and the two are compared
    in tests.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    successes = 0
    for _ in range(trials):
        live = num_transmitters
        for _ in range(budget):
            if live == 1:
                successes += 1
                break
            if live == 0:
                break
            # Each live station transmits, then survives w.p. 1/2.
            survivors = sum(1 for _ in range(live) if rng.random() < 0.5)
            live = survivors
    return successes / trials


def expected_transmissions(budget: int) -> float:
    """Expected number of transmissions by one Decay invocation (≤ 2).

    The station transmits once, then each further transmission requires
    surviving a fair coin: 1 + 1/2 + 1/4 + … truncated at ``budget``.
    """
    return sum(0.5**i for i in range(budget))


def decay_schedule(budget: int, rng: random.Random) -> List[bool]:
    """Materialize one invocation's transmit/silent pattern (for tests)."""
    session = DecaySession(budget, rng)
    return [session.should_transmit() for _ in range(budget)]


class DecayRelay(Process):
    """Repeat-Decay flooding relay: re-broadcasts the first payload heard.

    This is the body of the BGI broadcast protocol that the setup phase
    builds on: a station that knows the message keeps invoking Decay for
    ``repetitions`` invocations.

    Invocations are **window-aligned**: globally, invocation w occupies
    slots ``[w·budget, (w+1)·budget)`` — every station derives the
    boundaries from the slot number, a station whose session dies early
    stays silent until the next boundary, and a station informed mid-window
    joins at the next boundary.  This alignment is what property (2) of
    Decay assumes (all participating neighbors run the *same* invocation).
    """

    def __init__(
        self,
        node_id: NodeId,
        budget: int,
        repetitions: int,
        rng: random.Random,
        channel: int = 0,
        initial_payload: Optional[Any] = None,
    ):
        super().__init__(node_id)
        self.budget = budget
        self.repetitions = repetitions
        self.channel = channel
        self._rng = rng
        self.payload = initial_payload
        self._session: Optional[DecaySession] = None
        self._session_window = -1
        self._joined_window: Optional[int] = 0 if initial_payload is not None else None
        self.informed_at_slot: Optional[int] = 0 if initial_payload is not None else None

    @property
    def informed(self) -> bool:
        return self.payload is not None

    def _window(self, slot: int) -> int:
        return slot // self.budget

    def on_slot(self, slot: int):
        if self.payload is None:
            return None
        window = self._window(slot)
        assert self._joined_window is not None
        if window < self._joined_window:
            return None
        if window - self._joined_window >= self.repetitions:
            return None
        if self._session_window != window:
            self._session = DecaySession(self.budget, self._rng)
            self._session_window = window
        assert self._session is not None
        if self._session.should_transmit():
            return Transmission(self.payload, self.channel)
        return None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if channel == self.channel and self.payload is None:
            self.payload = payload
            self.informed_at_slot = slot
            # Participate from the next invocation boundary onward.
            self._joined_window = self._window(slot) + 1

    def is_done(self) -> bool:
        """Informed and past its transmission duty (relative to joining)."""
        if self.payload is None or self._joined_window is None:
            return False
        return self._window_done()

    def _window_done(self) -> bool:
        assert self._joined_window is not None
        current = self._session_window
        return current - self._joined_window + 1 >= self.repetitions
