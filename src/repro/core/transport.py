"""Reliable single-hop transport over the BFS tree: Decay + deterministic acks.

This module implements the machinery shared by the collection protocol
(§4) and both point-to-point subprotocols (§5): every station keeps "a
buffer of unacknowledged messages"; in each phase it invokes Decay once to
send the head of the buffer toward its next hop; data slots are followed by
ack slots in which receivers acknowledge deterministically (§3); "every
such message is resent until an acknowledgement is received", whereupon it
moves to the receiver's buffer — so each message lives in exactly one
buffer at any time.

One :class:`TransportLane` manages one direction of traffic on one channel
(the paper runs upward and downward traffic "on separate channels", §1.4).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Set, Tuple

try:  # Protocol is typing-only; keep 3.9 compatibility simple.
    from typing import Protocol as _Protocol
except ImportError:  # pragma: no cover
    _Protocol = object  # type: ignore[assignment,misc]

from repro.core.decay import DecaySession


class SessionLike(_Protocol):
    """What a per-phase retransmission session must provide."""

    def should_transmit(self) -> bool:  # pragma: no cover - protocol
        ...

    def kill(self) -> None:  # pragma: no cover - protocol
        ...
from repro.core.messages import AckMessage, DataMessage
from repro.core.slots import SlotStructure
from repro.errors import ConfigurationError, ProtocolError
from repro.graphs.graph import NodeId
from repro.radio.process import QUIET_FOREVER
from repro.radio.transmission import Transmission


@dataclass(frozen=True)
class RetryPolicy:
    """Per-message retry budget with exponential backoff between phases.

    The paper's transport retries the buffer head every phase forever —
    correct in the failure-free model, a livelock once the next hop can
    crash.  With a policy attached, a :class:`TransportLane` counts the
    phases it has attempted its current head without an acknowledgement
    (``head_attempts``); after attempt *k* it sits out
    ``min(backoff_cap, 2^(k-1) - 1)`` phases before retrying, and after
    ``max_attempts`` attempts it stops transmitting that message
    (``head_exhausted``) so the repair layer can re-route or give up
    instead of jamming the channel forever.

    ``max_attempts=None`` keeps retrying indefinitely (backoff still
    applies) — the right setting when a watchdog above the lane handles
    failover, as :class:`~repro.core.repair.ResilientCollectionProcess`
    does.
    """

    max_attempts: Optional[int] = None
    backoff_cap: int = 4

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts}"
            )
        if self.backoff_cap < 0:
            raise ConfigurationError(
                f"backoff_cap must be >= 0, got {self.backoff_cap}"
            )

    def backoff_phases(self, attempt: int) -> int:
        """Phases to sit out after the ``attempt``-th failed attempt."""
        return min(self.backoff_cap, (1 << (attempt - 1)) - 1)


class TransportLane:
    """One station's send/receive state for one traffic direction.

    Responsibilities per slot (driven by the owning process):

    * On this station's data slots (its level class, §2.2): run the
      per-phase Decay session for the buffer head.
    * On the slot right after receiving a designated data message: send
      the acknowledgement (§3).
    * On receiving an acknowledgement for the in-flight head: remove it
      from the buffer and fall silent for the rest of the phase.

    ``strict`` mode turns impossible-in-the-model events (duplicate
    designated receptions, unmatched designated acks) into
    :class:`ProtocolError` — the property tests run strict; failure
    injection experiments run non-strict and count anomalies instead.
    """

    def __init__(
        self,
        node_id: NodeId,
        level: int,
        slots: SlotStructure,
        rng: random.Random,
        channel: int,
        strict: bool = True,
        session_factory: Optional[Callable[[], "SessionLike"]] = None,
        retry: Optional[RetryPolicy] = None,
        dedup_window: Optional[int] = None,
    ):
        if dedup_window is not None and dedup_window < 1:
            raise ConfigurationError(
                f"dedup_window must be >= 1 or None, got {dedup_window}"
            )
        self.node_id = node_id
        self.level = level
        self.slots = slots
        self.channel = channel
        self.strict = strict
        self.retry = retry
        self._rng = rng
        # The per-phase retransmission policy: the paper's Decay by
        # default; ablations (E12) plug in alternatives such as ALOHA.
        self._session_factory = session_factory or (
            lambda: DecaySession(self.slots.decay_budget, self._rng)
        )
        self.buffer: Deque[DataMessage] = deque()
        # Phase from which each buffered message may be transmitted: §4.1
        # has a node send, each phase, a message whose buffer residence
        # predates the phase ("every node whose buffer is not empty [at
        # the beginning of a phase] executes Decay"), so a message
        # received mid-phase must wait for the next phase — this is what
        # keeps the pipeline at one level per phase, the granularity all
        # of §4.2's models assume.
        self._earliest_phase: Deque[int] = deque()
        self._session: Optional[SessionLike] = None
        self._session_phase = -1
        self._head: Optional[DataMessage] = None
        self._pending_ack: Optional[Tuple[int, AckMessage]] = None
        # Duplicate suppression.  Closed runs keep every accepted id (an
        # exact tripwire for Thm 3.1 violations); open-system service
        # runs pass a ``dedup_window`` bound so a horizon of millions of
        # messages never accretes per-message state — a realistic
        # duplicate (re-reception after a lost ack) arrives within a
        # phase or two of the original, far inside any sane window.
        self._accepted_ids: Set[Tuple[NodeId, int]] = set()
        self._dedup_window = dedup_window
        self._accepted_order: Deque[Tuple[NodeId, int]] = deque()
        self._evictions_since_rebuild = 0
        # Retry/backoff state for the current head (only used with a
        # retry policy; see RetryPolicy).
        self._attempt_msg_id: Optional[Tuple[NodeId, int]] = None
        self._attempt_phase = -1
        self._backoff_until_phase = 0
        self.head_attempts = 0
        self.head_exhausted = False
        # A muted lane does ack duty but never transmits data — set by the
        # repair layer when this station has given up (partition).
        self.muted = False
        # Counters for experiments.
        self.data_transmissions = 0
        self.ack_transmissions = 0
        self.duplicates_seen = 0
        self.retargets = 0

    # ------------------------------------------------------------------
    # Sending side
    # ------------------------------------------------------------------

    def enqueue(
        self, message: DataMessage, received_at_slot: Optional[int] = None
    ) -> None:
        """Add a hop-addressed message to this lane's buffer.

        ``received_at_slot`` marks forwarded traffic: a message received
        during phase p becomes transmittable at phase p+1 (see
        ``_earliest_phase``).  Locally originated messages (no slot) are
        eligible immediately.
        """
        if message.hop_sender != self.node_id:
            raise ProtocolError(
                f"station {self.node_id!r} enqueued a message whose "
                f"hop_sender is {message.hop_sender!r}"
            )
        self.buffer.append(message)
        if received_at_slot is None:
            self._earliest_phase.append(0)
        else:
            self._earliest_phase.append(
                self.slots.phase_of(received_at_slot) + 1
            )

    @property
    def backlog(self) -> int:
        return len(self.buffer)

    def on_slot(self, slot: int) -> Optional[Transmission]:
        """This lane's transmission (if any) for the given slot."""
        # Ack duty takes precedence; it is scheduled on an ack slot, which
        # is never simultaneously one of our data slots.
        if self._pending_ack is not None:
            due, ack = self._pending_ack
            if due == slot:
                self._pending_ack = None
                self.ack_transmissions += 1
                return Transmission(ack, self.channel)
            if due < slot:
                # The ack slot passed while this station was down (failure
                # injection): the ack is lost, like any other transmission
                # of a crashed station.
                self._pending_ack = None
        if not self.buffer or self.muted:
            return None
        if not self.slots.is_data_slot_for(slot, self.level):
            return None
        info = self.slots.decode(slot)
        if info.phase != self._session_phase:
            # A new phase begins: nodes whose buffer is non-empty at the
            # beginning of the phase invoke Decay for the buffer head (§4.1).
            self._session_phase = info.phase
            self._session = None
            self._head = None
            if self._earliest_phase[0] <= info.phase:
                if self.retry is None:
                    self._session = self._session_factory()
                    self._head = self.buffer[0]
                else:
                    self._start_attempt(info.phase)
            # else: head arrived mid-phase, sit this phase out.
        if self._session is not None and self._session.should_transmit():
            self.data_transmissions += 1
            assert self._head is not None
            return Transmission(self._head, self.channel)
        return None

    def _start_attempt(self, phase: int) -> None:
        """Retry-policy gate at a phase boundary: maybe attempt the head."""
        assert self.retry is not None
        head = self.buffer[0]
        if head.msg_id != self._attempt_msg_id:
            # Fresh head: reset the per-message retry state.
            self._attempt_msg_id = head.msg_id
            self.head_attempts = 0
            self._backoff_until_phase = 0
            self.head_exhausted = False
        if self.head_exhausted or phase < self._backoff_until_phase:
            return
        if (
            self.retry.max_attempts is not None
            and self.head_attempts >= self.retry.max_attempts
        ):
            self.head_exhausted = True
            return
        self.head_attempts += 1
        self._attempt_phase = phase
        self._backoff_until_phase = (
            phase + 1 + self.retry.backoff_phases(self.head_attempts)
        )
        self._session = self._session_factory()
        self._head = head

    def failed_attempts(self, slot: int) -> int:
        """Completed, unacknowledged attempts for the current head.

        An attempt spans one Decay phase (its ack, if any, arrives within
        that same phase); an attempt whose phase is over without the head
        being acknowledged has therefore failed.  This is the watchdog's
        input: N failed attempts ⇒ suspect the next hop.
        """
        if self._attempt_msg_id is None:
            return 0
        if self.slots.phase_of(slot) > self._attempt_phase:
            return self.head_attempts
        return max(0, self.head_attempts - 1)

    def retarget(self, new_dest: NodeId, new_level: Optional[int] = None) -> None:
        """Re-address all buffered traffic to a new next hop.

        Called by the repair layer after a parent switch: every buffered
        message is re-hopped to ``new_dest``, the in-flight session is
        killed, and the per-message retry state is reset so the new parent
        gets a full retry budget.  ``new_level`` renumbers this station's
        BFS level (which selects its data slots).
        """
        self.buffer = deque(
            message.rehop(self.node_id, new_dest) for message in self.buffer
        )
        if new_level is not None:
            self.level = new_level
        if self._session is not None:
            self._session.kill()
        self._session = None
        self._head = None
        self._attempt_msg_id = None
        self._attempt_phase = -1
        self.head_attempts = 0
        self._backoff_until_phase = 0
        self.head_exhausted = False
        self.retargets += 1

    # ------------------------------------------------------------------
    # Receiving side
    # ------------------------------------------------------------------

    def accept_data(self, slot: int, message: DataMessage) -> bool:
        """Handle a received data message designated to this station.

        Schedules the deterministic acknowledgement for the next slot and
        reports whether the message is new (True) or a duplicate (False —
        impossible in the failure-free model; see ``strict``).  The caller
        routes new messages onward (enqueue on some lane, or deliver).
        """
        if message.hop_dest != self.node_id:
            raise ProtocolError(
                f"station {self.node_id!r} asked to accept a message "
                f"designated to {message.hop_dest!r}"
            )
        ack = AckMessage(
            msg_id=message.msg_id,
            hop_sender=self.node_id,
            hop_dest=message.hop_sender,
        )
        if self._pending_ack is not None:
            if self._pending_ack[0] <= slot:
                self._pending_ack = None  # expired while crashed
            else:
                raise ProtocolError(
                    f"station {self.node_id!r} has two pending acks; data "
                    f"arrived on an ack slot?"
                )
        self._pending_ack = (self.slots.ack_slot_after(slot), ack)
        if message.msg_id in self._accepted_ids:
            self.duplicates_seen += 1
            if self.strict:
                raise ProtocolError(
                    f"station {self.node_id!r} received duplicate message "
                    f"{message.msg_id!r}: acknowledgement determinism "
                    f"(Thm 3.1) was violated"
                )
            return False
        self._accepted_ids.add(message.msg_id)
        if self._dedup_window is not None:
            self._accepted_order.append(message.msg_id)
            while len(self._accepted_order) > self._dedup_window:
                self._accepted_ids.discard(self._accepted_order.popleft())
                self._evictions_since_rebuild += 1
            if self._evictions_since_rebuild >= self._dedup_window:
                # CPython sets never shrink on discard (dummy entries
                # accrete and the table keeps resizing up), so a churn
                # of W evictions rebuilds the set from the bounded
                # deque — amortized O(1), table size pinned to W.
                self._accepted_ids = set(self._accepted_order)
                self._evictions_since_rebuild = 0
        return True

    def accept_ack(self, ack: AckMessage) -> None:
        """Handle an acknowledgement designated to this station."""
        if ack.hop_dest != self.node_id:
            raise ProtocolError(
                f"station {self.node_id!r} asked to accept an ack "
                f"designated to {ack.hop_dest!r}"
            )
        if self.buffer and self.buffer[0].msg_id == ack.msg_id:
            self.buffer.popleft()
            self._earliest_phase.popleft()
            self._attempt_msg_id = None
            self.head_attempts = 0
            self._backoff_until_phase = 0
            self.head_exhausted = False
            if self._head is not None and self._head.msg_id == ack.msg_id:
                self._head = None
                if self._session is not None:
                    self._session.kill()
            return
        # An ack for something not at our head: cannot happen in the model
        # (we only ever have one in-flight message, and it is resent until
        # acked); tolerated when failures are being injected.
        if self.strict:
            raise ProtocolError(
                f"station {self.node_id!r} got ack for {ack.msg_id!r} "
                f"which is not its in-flight head"
            )

    def next_active_slot(self, slot: int) -> int:
        """The first slot >= ``slot`` this lane does anything in.

        The lane's activity is fully slot-determined: a scheduled ack
        fires at its due slot, and buffered data may only be transmitted
        in this level class's data slots (§2.2) — every Decay session
        consumes one ``should_transmit`` coin per own data slot, so while
        the buffer is non-empty the lane must be polled on *every* own
        data slot (skipping one would shift the coin stream).  All other
        slots are provable no-ops, which is what feeds the engine's
        :meth:`~repro.radio.process.Process.quiet_until` fast path.  A
        reception re-wakes the owning process immediately, so new ack
        duty / forwarded traffic is never missed.
        """
        wake = QUIET_FOREVER
        if self._pending_ack is not None and self._pending_ack[0] >= slot:
            wake = self._pending_ack[0]
        if self.buffer and not self.muted:
            data = self.slots.next_data_slot_for(slot, self.level)
            if data < wake:
                wake = data
        return wake

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No buffered traffic and no ack duty outstanding."""
        return not self.buffer and self._pending_ack is None

    def quiescent(self, slot: int) -> bool:
        """Like :attr:`idle`, but a stale ack duty does not count.

        A station that crashed holding a scheduled ack keeps it frozen
        until revival; once ``slot`` has passed the ack's due slot the
        duty can never fire, so for termination detection the lane is as
        good as idle.
        """
        if self.buffer:
            return False
        return self._pending_ack is None or self._pending_ack[0] < slot
