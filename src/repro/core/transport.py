"""Reliable single-hop transport over the BFS tree: Decay + deterministic acks.

This module implements the machinery shared by the collection protocol
(§4) and both point-to-point subprotocols (§5): every station keeps "a
buffer of unacknowledged messages"; in each phase it invokes Decay once to
send the head of the buffer toward its next hop; data slots are followed by
ack slots in which receivers acknowledge deterministically (§3); "every
such message is resent until an acknowledgement is received", whereupon it
moves to the receiver's buffer — so each message lives in exactly one
buffer at any time.

One :class:`TransportLane` manages one direction of traffic on one channel
(the paper runs upward and downward traffic "on separate channels", §1.4).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Optional, Set, Tuple

try:  # Protocol is typing-only; keep 3.9 compatibility simple.
    from typing import Protocol as _Protocol
except ImportError:  # pragma: no cover
    _Protocol = object  # type: ignore[assignment,misc]

from repro.core.decay import DecaySession


class SessionLike(_Protocol):
    """What a per-phase retransmission session must provide."""

    def should_transmit(self) -> bool:  # pragma: no cover - protocol
        ...

    def kill(self) -> None:  # pragma: no cover - protocol
        ...
from repro.core.messages import AckMessage, DataMessage
from repro.core.slots import SlotStructure
from repro.errors import ProtocolError
from repro.graphs.graph import NodeId
from repro.radio.transmission import Transmission


class TransportLane:
    """One station's send/receive state for one traffic direction.

    Responsibilities per slot (driven by the owning process):

    * On this station's data slots (its level class, §2.2): run the
      per-phase Decay session for the buffer head.
    * On the slot right after receiving a designated data message: send
      the acknowledgement (§3).
    * On receiving an acknowledgement for the in-flight head: remove it
      from the buffer and fall silent for the rest of the phase.

    ``strict`` mode turns impossible-in-the-model events (duplicate
    designated receptions, unmatched designated acks) into
    :class:`ProtocolError` — the property tests run strict; failure
    injection experiments run non-strict and count anomalies instead.
    """

    def __init__(
        self,
        node_id: NodeId,
        level: int,
        slots: SlotStructure,
        rng: random.Random,
        channel: int,
        strict: bool = True,
        session_factory: Optional[Callable[[], "SessionLike"]] = None,
    ):
        self.node_id = node_id
        self.level = level
        self.slots = slots
        self.channel = channel
        self.strict = strict
        self._rng = rng
        # The per-phase retransmission policy: the paper's Decay by
        # default; ablations (E12) plug in alternatives such as ALOHA.
        self._session_factory = session_factory or (
            lambda: DecaySession(self.slots.decay_budget, self._rng)
        )
        self.buffer: Deque[DataMessage] = deque()
        # Phase from which each buffered message may be transmitted: §4.1
        # has a node send, each phase, a message whose buffer residence
        # predates the phase ("every node whose buffer is not empty [at
        # the beginning of a phase] executes Decay"), so a message
        # received mid-phase must wait for the next phase — this is what
        # keeps the pipeline at one level per phase, the granularity all
        # of §4.2's models assume.
        self._earliest_phase: Deque[int] = deque()
        self._session: Optional[SessionLike] = None
        self._session_phase = -1
        self._head: Optional[DataMessage] = None
        self._pending_ack: Optional[Tuple[int, AckMessage]] = None
        self._accepted_ids: Set[Tuple[NodeId, int]] = set()
        # Counters for experiments.
        self.data_transmissions = 0
        self.ack_transmissions = 0
        self.duplicates_seen = 0

    # ------------------------------------------------------------------
    # Sending side
    # ------------------------------------------------------------------

    def enqueue(
        self, message: DataMessage, received_at_slot: Optional[int] = None
    ) -> None:
        """Add a hop-addressed message to this lane's buffer.

        ``received_at_slot`` marks forwarded traffic: a message received
        during phase p becomes transmittable at phase p+1 (see
        ``_earliest_phase``).  Locally originated messages (no slot) are
        eligible immediately.
        """
        if message.hop_sender != self.node_id:
            raise ProtocolError(
                f"station {self.node_id!r} enqueued a message whose "
                f"hop_sender is {message.hop_sender!r}"
            )
        self.buffer.append(message)
        if received_at_slot is None:
            self._earliest_phase.append(0)
        else:
            self._earliest_phase.append(
                self.slots.phase_of(received_at_slot) + 1
            )

    @property
    def backlog(self) -> int:
        return len(self.buffer)

    def on_slot(self, slot: int) -> Optional[Transmission]:
        """This lane's transmission (if any) for the given slot."""
        # Ack duty takes precedence; it is scheduled on an ack slot, which
        # is never simultaneously one of our data slots.
        if self._pending_ack is not None:
            due, ack = self._pending_ack
            if due == slot:
                self._pending_ack = None
                self.ack_transmissions += 1
                return Transmission(ack, self.channel)
            if due < slot:
                # The ack slot passed while this station was down (failure
                # injection): the ack is lost, like any other transmission
                # of a crashed station.
                self._pending_ack = None
        if not self.buffer:
            return None
        if not self.slots.is_data_slot_for(slot, self.level):
            return None
        info = self.slots.decode(slot)
        if info.phase != self._session_phase:
            # A new phase begins: nodes whose buffer is non-empty at the
            # beginning of the phase invoke Decay for the buffer head (§4.1).
            self._session_phase = info.phase
            if self._earliest_phase[0] <= info.phase:
                self._session = self._session_factory()
                self._head = self.buffer[0]
            else:
                # Head arrived mid-phase: sit this phase out.
                self._session = None
                self._head = None
        if self._session is not None and self._session.should_transmit():
            self.data_transmissions += 1
            assert self._head is not None
            return Transmission(self._head, self.channel)
        return None

    # ------------------------------------------------------------------
    # Receiving side
    # ------------------------------------------------------------------

    def accept_data(self, slot: int, message: DataMessage) -> bool:
        """Handle a received data message designated to this station.

        Schedules the deterministic acknowledgement for the next slot and
        reports whether the message is new (True) or a duplicate (False —
        impossible in the failure-free model; see ``strict``).  The caller
        routes new messages onward (enqueue on some lane, or deliver).
        """
        if message.hop_dest != self.node_id:
            raise ProtocolError(
                f"station {self.node_id!r} asked to accept a message "
                f"designated to {message.hop_dest!r}"
            )
        ack = AckMessage(
            msg_id=message.msg_id,
            hop_sender=self.node_id,
            hop_dest=message.hop_sender,
        )
        if self._pending_ack is not None:
            if self._pending_ack[0] <= slot:
                self._pending_ack = None  # expired while crashed
            else:
                raise ProtocolError(
                    f"station {self.node_id!r} has two pending acks; data "
                    f"arrived on an ack slot?"
                )
        self._pending_ack = (self.slots.ack_slot_after(slot), ack)
        if message.msg_id in self._accepted_ids:
            self.duplicates_seen += 1
            if self.strict:
                raise ProtocolError(
                    f"station {self.node_id!r} received duplicate message "
                    f"{message.msg_id!r}: acknowledgement determinism "
                    f"(Thm 3.1) was violated"
                )
            return False
        self._accepted_ids.add(message.msg_id)
        return True

    def accept_ack(self, ack: AckMessage) -> None:
        """Handle an acknowledgement designated to this station."""
        if ack.hop_dest != self.node_id:
            raise ProtocolError(
                f"station {self.node_id!r} asked to accept an ack "
                f"designated to {ack.hop_dest!r}"
            )
        if self.buffer and self.buffer[0].msg_id == ack.msg_id:
            self.buffer.popleft()
            self._earliest_phase.popleft()
            if self._head is not None and self._head.msg_id == ack.msg_id:
                self._head = None
                if self._session is not None:
                    self._session.kill()
            return
        # An ack for something not at our head: cannot happen in the model
        # (we only ever have one in-flight message, and it is resent until
        # acked); tolerated when failures are being injected.
        if self.strict:
            raise ProtocolError(
                f"station {self.node_id!r} got ack for {ack.msg_id!r} "
                f"which is not its in-flight head"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No buffered traffic and no ack duty outstanding."""
        return not self.buffer and self._pending_ack is None
