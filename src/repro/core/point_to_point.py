"""Point-to-point transmission (§5).

A message from u to v "travels first up the tree.  Once the message
reaches a common ancestor of u and v it continues downwards towards v."
After the preparation protocol (§5.1, :mod:`repro.core.dfs`) every station
holds its DFS number and its children's descendant intervals, so each hop
is a purely local decision:

* if the destination address is **not** in my interval → next hop is my
  BFS parent (the *upward subprotocol*, §5.2 — "essentially identical to
  the collection protocol");
* if it is in a child's interval → next hop is that child (the *downward
  subprotocol*, §5.3 — also Decay + deterministic acks, with the message
  prepended with its final destination);
* if it equals my own number → deliver.

Upward and downward traffic run concurrently on separate channels (§1.4),
each as its own :class:`~repro.core.transport.TransportLane`.  Like
collection, the protocol "is always successful on the graph spanned by the
BFS tree"; only its duration is random — expected ``O((k + D)·log Δ)``
slots for k transmissions, i.e. a new transmission every ``O(log Δ)``
slots in steady state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.messages import AckMessage, DataMessage
from repro.core.slots import SlotStructure, decay_budget
from repro.core.transport import TransportLane
from repro.core.tree import TreeInfo, tree_info_from_bfs_tree
from repro.errors import ConfigurationError, ProtocolError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.trace import NetworkStats
from repro.radio.transmission import DOWN_CHANNEL, UP_CHANNEL
from repro.rng import RngFactory


class PointToPointProcess(Process):
    """One station's point-to-point behaviour: an up lane and a down lane."""

    def __init__(
        self,
        info: TreeInfo,
        slots: SlotStructure,
        rng: random.Random,
        up_channel: int = UP_CHANNEL,
        down_channel: int = DOWN_CHANNEL,
        strict: bool = True,
    ):
        if not info.has_addressing:
            raise ConfigurationError(
                f"station {info.node_id!r} lacks DFS addressing; run the "
                f"preparation protocol (repro.core.dfs) first"
            )
        super().__init__(info.node_id)
        self.info = info
        self.slots = slots
        self.up_channel = up_channel
        self.down_channel = down_channel
        self.up_lane = TransportLane(
            info.node_id, info.level, slots, rng, up_channel, strict
        )
        self.down_lane = TransportLane(
            info.node_id, info.level, slots, rng, down_channel, strict
        )
        self.delivered: List[DataMessage] = []
        self._serial = 0

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def submit(self, dest_address: int, payload: Any) -> Tuple[NodeId, int]:
        """Send ``payload`` to the station whose DFS address is given."""
        msg_id = (self.info.node_id, self._serial)
        self._serial += 1
        message = DataMessage(
            msg_id=msg_id,
            origin=self.info.node_id,
            hop_sender=self.info.node_id,
            hop_dest=self.info.node_id,  # placeholder; set by _route
            dest_address=dest_address,
            payload=payload,
        )
        self._route(message)
        return msg_id

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(
        self, message: DataMessage, received_at_slot: Optional[int] = None
    ) -> None:
        """Deliver locally or enqueue on the correct lane, re-hop-addressed."""
        address = message.dest_address
        if address is None:
            raise ProtocolError("point-to-point messages must carry an address")
        next_hop = self.info.next_hop_for_address(address)
        if next_hop == self.info.node_id:
            self.delivered.append(message)
            return
        hopped = message.rehop(self.info.node_id, next_hop)
        if next_hop == self.info.parent and not self.info.owns_address(address):
            self.up_lane.enqueue(hopped, received_at_slot)
        else:
            self.down_lane.enqueue(hopped, received_at_slot)

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        actions = []
        up = self.up_lane.on_slot(slot)
        if up is not None:
            actions.append(up)
        down = self.down_lane.on_slot(slot)
        if down is not None:
            actions.append(down)
        return actions or None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if channel == self.up_channel:
            lane = self.up_lane
        elif channel == self.down_channel:
            lane = self.down_lane
        else:
            return
        if isinstance(payload, DataMessage):
            if payload.hop_dest != self.info.node_id:
                return
            if lane.accept_data(slot, payload):
                self._route(payload, received_at_slot=slot)
        elif isinstance(payload, AckMessage):
            if payload.hop_dest == self.info.node_id:
                lane.accept_ack(payload)

    def is_done(self) -> bool:
        return self.up_lane.idle and self.down_lane.idle

    @property
    def backlog(self) -> int:
        return self.up_lane.backlog + self.down_lane.backlog


@dataclass
class PointToPointResult:
    """Outcome of a batch point-to-point run."""

    slots: int
    delivered: Dict[NodeId, List[DataMessage]]  # per destination station
    stats: NetworkStats
    slot_structure: SlotStructure

    @property
    def messages_delivered(self) -> int:
        return sum(len(v) for v in self.delivered.values())


def p2p_reference_slots(
    k: int, depth: int, max_degree: int, level_classes: int = 1
) -> float:
    """Reference scale for §5.4's ``O((k + D)·log Δ)``: both directions of
    the collection bound (Theorem 4.4 applied up and down)."""
    from repro.core.collection import expected_collection_slots

    return 2 * expected_collection_slots(k, depth, max_degree, level_classes)


def build_p2p_network(
    graph: Graph,
    tree: BFSTree,
    seed: int,
    level_classes: int = 3,
    strict: bool = True,
) -> Tuple[RadioNetwork, Dict[NodeId, PointToPointProcess], SlotStructure]:
    """Wire a network of point-to-point stations over a prepared tree.

    ``tree`` must carry DFS intervals (from
    :meth:`~repro.graphs.bfs_tree.BFSTree.assign_dfs_intervals` or the
    distributed preparation protocol).
    """
    if not tree.has_dfs_intervals:
        raise ConfigurationError(
            "tree has no DFS intervals; run preparation first"
        )
    factory = RngFactory(seed)
    slot_structure = SlotStructure(
        decay_budget=decay_budget(graph.max_degree()),
        level_classes=level_classes,
        with_acks=True,
    )
    infos = tree_info_from_bfs_tree(tree)
    network = RadioNetwork(graph, num_channels=2)
    processes: Dict[NodeId, PointToPointProcess] = {}
    for node in graph.nodes:
        process = PointToPointProcess(
            info=infos[node],
            slots=slot_structure,
            rng=factory.for_node(node),
            strict=strict,
        )
        processes[node] = process
        network.attach(process)
    return network, processes, slot_structure


def run_point_to_point(
    graph: Graph,
    tree: BFSTree,
    transmissions: Iterable[Tuple[NodeId, NodeId, Any]],
    seed: int,
    max_slots: Optional[int] = None,
    level_classes: int = 3,
    strict: bool = True,
) -> PointToPointResult:
    """Run a batch of (source, destination, payload) transmissions.

    All messages are submitted at slot 0 (the protocol is reactive, so
    custom drivers may instead submit over time via
    :func:`build_p2p_network`); the run ends when every message has been
    delivered to its destination station.
    """
    network, processes, slot_structure = build_p2p_network(
        graph, tree, seed, level_classes, strict
    )
    batch = list(transmissions)
    expected_counts: Dict[NodeId, int] = {}
    for source, dest, payload in batch:
        if source not in processes or dest not in processes:
            raise ConfigurationError(
                f"unknown station in transmission {source!r}->{dest!r}"
            )
        processes[source].submit(tree.dfs_number[dest], payload)
        expected_counts[dest] = expected_counts.get(dest, 0) + 1
    if max_slots is None:
        bound = p2p_reference_slots(
            len(batch), tree.depth, graph.max_degree(), level_classes
        )
        max_slots = max(10_000, int(20 * bound))

    def complete(net: RadioNetwork) -> bool:
        return all(
            len(processes[dest].delivered) >= count
            for dest, count in expected_counts.items()
        ) and all(p.is_done() for p in processes.values())

    network.run(max_slots, until=complete)
    return PointToPointResult(
        slots=network.slot,
        delivered={
            node: list(proc.delivered) for node, proc in processes.items()
        },
        stats=network.stats,
        slot_structure=slot_structure,
    )
