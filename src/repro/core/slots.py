"""The multiplexed slot schedule shared by the tree protocols.

The paper composes three time-multiplexing mechanisms:

* **Decay phases** (§1.4): the basic unit of progress is one invocation of
  Decay, lasting ``decay_budget = 2·ceil(log2 Δ)`` transmission
  opportunities.
* **Level classes** (§2.2): a node at BFS level i may transmit only when
  the current slot's class equals ``i mod 3``, which prevents collisions
  between non-adjacent levels ("increases the duration … by a factor of 3").
* **Ack slots** (§3): "the odd time slots are dedicated to the original
  protocol and the even ones to acknowledgements" — every data slot is
  immediately followed by an ack slot ("slows down the protocol by a
  factor of 2").

:class:`SlotStructure` fixes one concrete interleaving honouring all three:
a *phase* consists of ``decay_budget`` rounds; each round contains, for
each level class j in order, one data slot (class j transmits a Decay step)
immediately followed by its ack slot.  Every station derives the whole
schedule from the global slot number alone — no coordination needed, which
is exactly how the paper's synchronous model intends it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class SlotKind(Enum):
    """What a given slot is for."""

    DATA = "data"
    ACK = "ack"


def decay_budget(max_degree: int) -> int:
    """The paper's Decay repetition budget, ``2·ceil(log2 Δ)`` (minimum 2).

    ``max_degree`` is the upper bound on Δ that every station knows
    a priori (§1.1).  Δ ≤ 1 degenerates to a budget of 2: one guaranteed
    transmission plus one coin-gated repeat, enough for conflict-free
    topologies.
    """
    if max_degree < 0:
        raise ConfigurationError(f"max degree must be >= 0, got {max_degree}")
    return max(2, 2 * math.ceil(math.log2(max(2, max_degree))))


@dataclass(frozen=True)
class SlotInfo:
    """Decoded meaning of one global slot."""

    slot: int
    phase: int  # which Decay phase this slot belongs to
    decay_step: int  # 0-based step within the phase
    level_class: int  # which (level mod classes) may transmit data
    kind: SlotKind  # data or acknowledgement


class SlotStructure:
    """Decoder from global slot numbers to the multiplexed schedule.

    Parameters
    ----------
    decay_budget:
        Transmission opportunities per Decay invocation (per level class).
    level_classes:
        3 in the paper (§2.2); 1 disables level multiplexing (used by the
        ablation experiment E11 and by protocols that are single-level by
        construction, like the BFS expansion stages).
    with_acks:
        Whether each data slot is followed by an ack slot (§3).  Protocols
        without per-message destinations (distribution, §6) turn this off.
    """

    def __init__(
        self,
        decay_budget: int,
        level_classes: int = 3,
        with_acks: bool = True,
    ):
        if decay_budget < 1:
            raise ConfigurationError(
                f"decay budget must be >= 1, got {decay_budget}"
            )
        if level_classes < 1:
            raise ConfigurationError(
                f"need >= 1 level class, got {level_classes}"
            )
        self.decay_budget = decay_budget
        self.level_classes = level_classes
        self.with_acks = with_acks
        self._width = 2 if with_acks else 1
        self.phase_length = decay_budget * level_classes * self._width

    def decode(self, slot: int) -> SlotInfo:
        """Decode a global slot number."""
        phase, within_phase = divmod(slot, self.phase_length)
        round_width = self.level_classes * self._width
        decay_step, within_round = divmod(within_phase, round_width)
        level_class, sub = divmod(within_round, self._width)
        kind = SlotKind.ACK if (self.with_acks and sub == 1) else SlotKind.DATA
        return SlotInfo(
            slot=slot,
            phase=phase,
            decay_step=decay_step,
            level_class=level_class,
            kind=kind,
        )

    def is_data_slot_for(self, slot: int, level: int) -> bool:
        """Whether a node at BFS ``level`` may transmit data in ``slot``."""
        info = self.decode(slot)
        return (
            info.kind is SlotKind.DATA
            and info.level_class == level % self.level_classes
        )

    def next_data_slot_for(self, slot: int, level: int) -> int:
        """The first slot >= ``slot`` in which BFS ``level`` may send data.

        Exact schedule arithmetic for the idle fast path: phases tile
        rounds uniformly, so the data slots of level class c are exactly
        the slots congruent to ``c * width (mod round_width)`` — the
        class's data slot sits at offset ``c * width`` within each round
        of ``level_classes * width`` slots.
        """
        round_width = self.level_classes * self._width
        target = (level % self.level_classes) * self._width
        return slot + (target - slot) % round_width

    def ack_slot_after(self, data_slot: int) -> int:
        """The ack slot paired with ``data_slot`` (the next slot, §3)."""
        if not self.with_acks:
            raise ConfigurationError("this schedule has no ack slots")
        info = self.decode(data_slot)
        if info.kind is not SlotKind.DATA:
            raise ConfigurationError(f"slot {data_slot} is not a data slot")
        return data_slot + 1

    def phase_of(self, slot: int) -> int:
        return slot // self.phase_length

    def first_slot_of_phase(self, phase: int) -> int:
        return phase * self.phase_length

    def slots_for_phases(self, phases: int) -> int:
        """Total slots consumed by ``phases`` complete phases."""
        return phases * self.phase_length
