"""k-broadcast (§6): collection to the root + pipelined distribution.

"To broadcast a message a node first sends the message to the root using
the collection subprotocol of Section 4.  Then the message is sent to all
the nodes of the network using the distribution subprotocol."

Distribution has no per-message destination, so §3's deterministic acks do
not apply; instead the paper pipelines: time is divided into *superphases*
of ``2·log n`` Decay invocations (``4·log Δ·log n`` slots, error 1/n² per
hop per message).  "At superphase t the root sends the t-th message and
all the nodes of level i repeatedly send the (t−i)-th message."  Because
of level multiplexing (§2.2) a station only ever hears level i−1 during
those slots, so each superphase moves the pipeline one level forward.

Reliability: "The root appends consecutive numbers to the messages.  Every
node v examines these numbers and when v encounters a gap it realizes that
it did not receive a message.  Thereupon, v sends a message to the root
requesting it to resend the missing message" — the NACK travels over the
(reliable) collection channel, and the root re-injects the missing message
into the pipeline.  The root also interleaves end-of-stream announcements
(carrying how many messages have been sequenced) whenever it is otherwise
idle, so that even a missed *last* message produces gap evidence.  This
plays the role of the paper's mod-3n² checkpoint numbering for the finite
runs of an experiment; the checkpoint acknowledgements themselves are
implemented as an optional flow-control layer (``checkpoint_interval``).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.decay import DecaySession
from repro.core.messages import (
    AckMessage,
    BroadcastMessage,
    BroadcastSubmission,
    CheckpointAck,
    DataMessage,
    ResendRequest,
)
from repro.core.slots import SlotStructure, decay_budget
from repro.core.transport import TransportLane
from repro.core.tree import TreeInfo, tree_info_from_bfs_tree
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.trace import NetworkStats
from repro.radio.transmission import DOWN_CHANNEL, UP_CHANNEL, Transmission

#: Marks an end-of-stream announcement: ``seq`` then carries the number of
#: messages the root has sequenced so far.
EOS = "__end_of_stream__"



def superphase_invocations(n: int) -> int:
    """Decay invocations per superphase: ``2·ceil(log2 n)`` (ε = 1/n²)."""
    return max(1, 2 * math.ceil(math.log2(max(2, n))))


class BroadcastProcess(Process):
    """One station's k-broadcast behaviour.

    Two independent machines share the station:

    * an **upward** collection lane (channel ``up_channel``) carrying
      broadcast submissions, NACKs and checkpoint acks to the root;
    * a **downward** distribution relay (channel ``down_channel``) driven
      by superphase arithmetic on the global slot number.
    """

    def __init__(
        self,
        info: TreeInfo,
        up_slots: SlotStructure,
        dist_slots: SlotStructure,
        invocations_per_superphase: int,
        rng: random.Random,
        up_channel: int = UP_CHANNEL,
        down_channel: int = DOWN_CHANNEL,
        nack_retry_superphases: int = 8,
        checkpoint_interval: Optional[int] = None,
        strict: bool = True,
    ):
        super().__init__(info.node_id)
        self.info = info
        self.up_slots = up_slots
        self.dist_slots = dist_slots
        self.invocations_per_superphase = invocations_per_superphase
        self.superphase_slots = (
            invocations_per_superphase * dist_slots.phase_length
        )
        self.up_channel = up_channel
        self.down_channel = down_channel
        self.nack_retry_superphases = nack_retry_superphases
        self.checkpoint_interval = checkpoint_interval
        self._rng = rng
        self.up_lane = TransportLane(
            info.node_id, info.level, up_slots, rng, up_channel, strict
        )
        self._up_serial = 0
        # Distribution state (all stations).
        self.received: Dict[int, BroadcastMessage] = {}
        self.announced_count = 0  # from EOS announcements
        self._max_seen_seq = -1
        # Per-superphase inbox: what was heard from level i−1 during each
        # superphase (message, was-it-new).  At superphase T a station
        # relays what it received during T−1 — never sooner, so the
        # pipeline advances exactly one level per superphase as §6
        # prescribes ("at superphase t … the nodes of level i repeatedly
        # send the (t−i)-th message").
        self._inbox: Dict[int, Tuple[BroadcastMessage, bool]] = {}
        self._relay: Optional[BroadcastMessage] = None
        self._session: Optional[DecaySession] = None
        self._session_phase = -1
        self._prepared_superphase = -1
        self._nacked_at: Dict[int, int] = {}  # seq -> superphase of last NACK
        self._checkpoints_acked = 0
        # Root state.
        self.sequenced: List[BroadcastMessage] = []
        self._next_fresh = 0  # next seq the root has not yet pipelined
        self._resend_queue: Deque[int] = deque()
        self._resend_set: Set[int] = set()
        self._current_tx: Optional[BroadcastMessage] = None
        self.resends_served = 0
        self.checkpoint_acks: Dict[int, Set[NodeId]] = {}

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def submit(self, payload: Any) -> None:
        """Initiate a broadcast of ``payload`` from this station."""
        if self.info.is_root:
            self._sequence(self.info.node_id, payload)
        else:
            self._send_up(
                BroadcastSubmission(origin=self.info.node_id, body=payload)
            )

    def _send_up(self, payload: Any) -> None:
        message = DataMessage(
            msg_id=(self.info.node_id, self._up_serial),
            origin=self.info.node_id,
            hop_sender=self.info.node_id,
            hop_dest=self.info.parent,
            payload=payload,
        )
        self._up_serial += 1
        self.up_lane.enqueue(message)

    def _sequence(self, origin: NodeId, payload: Any) -> int:
        seq = len(self.sequenced)
        self.sequenced.append(
            BroadcastMessage(seq=seq, origin=origin, payload=payload)
        )
        # The root trivially "receives" its own stream.
        self.received[seq] = self.sequenced[seq]
        return seq

    # ------------------------------------------------------------------
    # Superphase arithmetic
    # ------------------------------------------------------------------

    def superphase(self, slot: int) -> int:
        return slot // self.superphase_slots

    def _prepare_superphase(self, index: int) -> None:
        """Runs once at each station's first data slot of a superphase."""
        self._prepared_superphase = index
        if self.info.is_root:
            self._current_tx = self._pick_root_message()
        else:
            entry = self._inbox.get(index - 1)
            self._relay = entry[0] if entry is not None else None
            # Drop anything older than the previous superphase.
            self._inbox = {
                sp: value
                for sp, value in self._inbox.items()
                if sp >= index - 1
            }
            self._emit_nacks(index)
            self._emit_checkpoint_acks()

    def _pick_root_message(self) -> Optional[BroadcastMessage]:
        while self._resend_queue:
            seq = self._resend_queue.popleft()
            self._resend_set.discard(seq)
            if 0 <= seq < len(self.sequenced):
                self.resends_served += 1
                return self.sequenced[seq]
        if self._next_fresh < len(self.sequenced):
            message = self.sequenced[self._next_fresh]
            self._next_fresh += 1
            return message
        # Idle: announce the end of the stream so stragglers get gap
        # evidence even for the very last message.
        return BroadcastMessage(
            seq=len(self.sequenced), origin=self.info.node_id, payload=EOS
        )

    # ------------------------------------------------------------------
    # Gap detection and NACKs (non-root)
    # ------------------------------------------------------------------

    def _known_upper(self) -> int:
        """Number of messages this station has evidence must exist."""
        return max(self.announced_count, self._max_seen_seq + 1)

    def missing_seqs(self) -> List[int]:
        return [
            seq
            for seq in range(self._known_upper())
            if seq not in self.received
        ]

    def _emit_nacks(self, superphase_index: int) -> None:
        for seq in self.missing_seqs():
            last = self._nacked_at.get(seq)
            if (
                last is None
                or superphase_index - last >= self.nack_retry_superphases
            ):
                self._nacked_at[seq] = superphase_index
                self._send_up(
                    ResendRequest(requester=self.info.node_id, seq=seq)
                )

    def _emit_checkpoint_acks(self) -> None:
        if self.checkpoint_interval is None:
            return
        interval = self.checkpoint_interval
        while True:
            boundary = (self._checkpoints_acked + 1) * interval
            if all(seq in self.received for seq in range(boundary)) and (
                self._known_upper() >= boundary
            ):
                self._checkpoints_acked += 1
                self._send_up(
                    CheckpointAck(
                        origin=self.info.node_id,
                        checkpoint=self._checkpoints_acked,
                    )
                )
            else:
                break

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        actions = []
        up = self.up_lane.on_slot(slot)
        if up is not None:
            actions.append(up)
        down = self._distribution_transmission(slot)
        if down is not None:
            actions.append(down)
        return actions or None

    def _distribution_transmission(self, slot: int) -> Optional[Transmission]:
        if not self.dist_slots.is_data_slot_for(slot, self.info.level):
            return None
        index = self.superphase(slot)
        if index != self._prepared_superphase:
            self._prepare_superphase(index)
        message = self._current_tx if self.info.is_root else self._relay
        if message is None:
            return None
        info = self.dist_slots.decode(slot)
        if info.phase != self._session_phase:
            self._session_phase = info.phase
            self._session = DecaySession(
                self.dist_slots.decay_budget, self._rng
            )
        assert self._session is not None
        if self._session.should_transmit():
            stamped = replace(message, sender_level=self.info.level)
            return Transmission(stamped, self.down_channel)
        return None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if channel == self.down_channel:
            if isinstance(payload, BroadcastMessage):
                self._handle_distribution(slot, payload)
            return
        if channel != self.up_channel:
            return
        if isinstance(payload, DataMessage):
            if payload.hop_dest != self.info.node_id:
                return
            if not self.up_lane.accept_data(slot, payload):
                return
            if self.info.is_root:
                self._root_consume(payload.payload)
            else:
                self.up_lane.enqueue(
                    payload.rehop(self.info.node_id, self.info.parent),
                    received_at_slot=slot,
                )
        elif isinstance(payload, AckMessage):
            if payload.hop_dest == self.info.node_id:
                self.up_lane.accept_ack(payload)

    def _handle_distribution(self, slot: int, message: BroadcastMessage) -> None:
        if message.sender_level != self.info.level - 1:
            return  # only the pipeline stage directly above feeds us
        if message.payload == EOS:
            self.announced_count = max(self.announced_count, message.seq)
            self._consider_relay(slot, message)
            return
        self._max_seen_seq = max(self._max_seen_seq, message.seq)
        is_new = message.seq not in self.received
        if is_new:
            self.received[message.seq] = replace(message, sender_level=0)
        self._consider_relay(slot, message, is_new_data=is_new)

    def _consider_relay(
        self, slot: int, message: BroadcastMessage, is_new_data: bool = False
    ) -> None:
        """Record what to forward in the *next* superphase.

        Priority within a superphase's inbox: data that was new on arrival
        beats everything (it is the advancing pipeline front); otherwise
        keep the latest thing heard — duplicates and EOS announcements
        *must* still be forwarded, or NACK-driven resends and end-of-stream
        evidence would never reach levels below us.
        """
        superphase = self.superphase(slot)
        entry = self._inbox.get(superphase)
        if entry is None or is_new_data or not entry[1]:
            self._inbox[superphase] = (message, is_new_data)

    def _root_consume(self, payload: Any) -> None:
        if isinstance(payload, BroadcastSubmission):
            self._sequence(payload.origin, payload.body)
        elif isinstance(payload, ResendRequest):
            seq = payload.seq
            if seq not in self._resend_set and 0 <= seq < len(self.sequenced):
                self._resend_set.add(seq)
                self._resend_queue.append(seq)
        elif isinstance(payload, CheckpointAck):
            self.checkpoint_acks.setdefault(
                payload.checkpoint, set()
            ).add(payload.origin)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def has_prefix(self, k: int) -> bool:
        """Whether this station holds broadcasts 0..k−1."""
        return all(seq in self.received for seq in range(k))

    def delivered_in_order(self) -> List[BroadcastMessage]:
        """The longest delivered prefix, in sequence order."""
        out = []
        seq = 0
        while seq in self.received:
            out.append(self.received[seq])
            seq += 1
        return out

    def is_done(self) -> bool:
        return self.up_lane.idle


@dataclass
class BroadcastResult:
    """Outcome of a k-broadcast run."""

    slots: int
    superphases: int
    messages: int
    stats: NetworkStats
    resends: int  # how many pipeline injections were NACK-driven
    delivered_everywhere: bool


def broadcast_reference_slots(
    k: int, depth: int, max_degree: int, n: int, level_classes: int = 3
) -> float:
    """Reference scale for §6: ``O((k + D)·log Δ·log n)`` slots.

    Concretely ``(k + D + slack)`` superphases of
    ``2·log n × 2·log Δ × level_classes`` slots.
    """
    log_n = math.log2(max(2, n))
    log_delta = math.log2(max(2, max_degree))
    return (k + depth + 4) * (2 * log_n) * (2 * log_delta) * level_classes


def build_broadcast_network(
    graph: Graph,
    tree: BFSTree,
    seed: int,
    level_classes: int = 3,
    invocations: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    strict: bool = True,
) -> Tuple[RadioNetwork, Dict[NodeId, BroadcastProcess]]:
    """Wire a network of broadcast stations over a BFS tree."""
    from repro.rng import RngFactory

    factory = RngFactory(seed)
    budget = decay_budget(graph.max_degree())
    up_slots = SlotStructure(
        decay_budget=budget, level_classes=level_classes, with_acks=True
    )
    dist_slots = SlotStructure(
        decay_budget=budget, level_classes=level_classes, with_acks=False
    )
    if invocations is None:
        invocations = superphase_invocations(graph.num_nodes)
    infos = tree_info_from_bfs_tree(tree)
    network = RadioNetwork(graph, num_channels=2)
    processes: Dict[NodeId, BroadcastProcess] = {}
    for node in graph.nodes:
        process = BroadcastProcess(
            info=infos[node],
            up_slots=up_slots,
            dist_slots=dist_slots,
            invocations_per_superphase=invocations,
            rng=factory.for_node(node),
            checkpoint_interval=checkpoint_interval,
            strict=strict,
        )
        processes[node] = process
        network.attach(process)
    return network, processes


def run_broadcast(
    graph: Graph,
    tree: BFSTree,
    submissions: Dict[NodeId, List[Any]],
    seed: int,
    max_slots: Optional[int] = None,
    level_classes: int = 3,
    invocations: Optional[int] = None,
    strict: bool = True,
) -> BroadcastResult:
    """Run a k-broadcast batch until every station holds every message."""
    network, processes = build_broadcast_network(
        graph, tree, seed, level_classes, invocations, strict=strict
    )
    k = sum(len(v) for v in submissions.values())
    for node, payloads in submissions.items():
        if node not in processes:
            raise ConfigurationError(f"unknown station {node!r}")
        for payload in payloads:
            processes[node].submit(payload)
    if max_slots is None:
        bound = broadcast_reference_slots(
            k, tree.depth, graph.max_degree(), graph.num_nodes, level_classes
        )
        max_slots = max(20_000, int(30 * bound))
    network.run(
        max_slots,
        until=lambda net: all(p.has_prefix(k) for p in processes.values()),
        check_every=4,
    )
    root_process = processes[tree.root]
    return BroadcastResult(
        slots=network.slot,
        superphases=root_process.superphase(network.slot),
        messages=k,
        stats=network.stats,
        resends=root_process.resends_served,
        delivered_everywhere=all(
            p.has_prefix(k) for p in processes.values()
        ),
    )
