"""Per-station tree knowledge produced by the setup phase.

After setup (leader election + BFS + DFS preparation), every station knows
exactly the paper's §2/§5.1 state: its BFS parent, its level, which
neighbors are its BFS children, its own DFS number, and for each child the
child's DFS interval.  :class:`TreeInfo` packages that *local* knowledge;
the steady-state protocols are written against it so they can run either
on the output of the distributed setup or on a centrally computed tree
(the experiments' ``known_root`` bypass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProtocolError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import NodeId


@dataclass
class TreeInfo:
    """What one station knows about its place in the BFS tree.

    ``dfs_number``/``subtree_max``/``child_intervals`` are ``None`` until
    the DFS preparation (§5.1) has run; collection and distribution do not
    need them, point-to-point does.
    """

    node_id: NodeId
    root: NodeId
    parent: NodeId
    level: int
    children: Tuple[NodeId, ...]
    dfs_number: Optional[int] = None
    subtree_max: Optional[int] = None
    child_intervals: Dict[NodeId, Tuple[int, int]] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.node_id == self.root

    @property
    def has_addressing(self) -> bool:
        return self.dfs_number is not None and self.subtree_max is not None

    def owns_address(self, address: int) -> bool:
        """Whether ``address`` is in this station's descendant interval."""
        if not self.has_addressing:
            raise ProtocolError(
                f"station {self.node_id!r} has no DFS addressing yet"
            )
        assert self.dfs_number is not None and self.subtree_max is not None
        return self.dfs_number <= address <= self.subtree_max

    def child_for_address(self, address: int) -> NodeId:
        """The unique BFS child whose interval contains ``address``.

        §5.1: "it suffices that each node remember the DFS number of each
        of its children and the maximum DFS number of all the descendants"
        — child intervals are consecutive, so exactly one child matches any
        strictly-descendant address.
        """
        for child, (low, high) in self.child_intervals.items():
            if low <= address <= high:
                return child
        raise ProtocolError(
            f"station {self.node_id!r}: no child interval contains "
            f"address {address}"
        )

    def next_hop_for_address(self, address: int) -> NodeId:
        """§5 routing rule: down into the owning child, else up."""
        if self.owns_address(address):
            assert self.dfs_number is not None
            if address == self.dfs_number:
                return self.node_id
            return self.child_for_address(address)
        if self.is_root:
            raise ProtocolError(
                f"root does not own address {address}; tree is inconsistent"
            )
        return self.parent


def tree_info_from_bfs_tree(tree: BFSTree) -> Dict[NodeId, TreeInfo]:
    """Distribute a (centrally known) BFS tree into per-station TreeInfo.

    This is the experiments' setup bypass: it hands every station exactly
    the local state the distributed setup phase would have produced,
    including DFS addressing if the tree has it.
    """
    infos: Dict[NodeId, TreeInfo] = {}
    for node in tree.nodes:
        info = TreeInfo(
            node_id=node,
            root=tree.root,
            parent=tree.parent[node],
            level=tree.level[node],
            children=tree.children[node],
        )
        if tree.has_dfs_intervals:
            info.dfs_number = tree.dfs_number[node]
            info.subtree_max = tree.subtree_max[node]
            info.child_intervals = {
                child: (tree.dfs_number[child], tree.subtree_max[child])
                for child in tree.children[node]
            }
        infos[node] = info
    return infos


def bfs_tree_from_tree_info(infos: Dict[NodeId, TreeInfo]) -> BFSTree:
    """Reassemble a :class:`BFSTree` from per-station knowledge.

    Used to validate the *distributed* setup phase: collect what every
    station believes and check global consistency via BFSTree.validate().
    """
    if not infos:
        raise ProtocolError("no stations")
    roots = {info.root for info in infos.values()}
    if len(roots) != 1:
        raise ProtocolError(f"stations disagree on the root: {sorted(map(repr, roots))}")
    root = roots.pop()
    tree = BFSTree(
        root=root,
        parent={node: info.parent for node, info in infos.items()},
        level={node: info.level for node, info in infos.items()},
    )
    if all(info.dfs_number is not None for info in infos.values()):
        tree.dfs_number = {
            node: info.dfs_number  # type: ignore[misc]
            for node, info in infos.items()
        }
        tree.subtree_max = {
            node: info.subtree_max  # type: ignore[misc]
            for node, info in infos.items()
        }
    return tree
