"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo [seed]``
    Run the quickstart scenario (all four services on one network).
``timeline [seed]``
    Render the collection pipeline draining as an ASCII heatmap.
``congestion [seed]``
    Measure the §8-remark-(5) root congestion on a deep network.
``map [seed]``
    Draw a positioned unit-disk field with BFS levels as symbols.
``resilience [seed]``
    Run collection under the standard fault scenarios (churn, fading,
    jamming, blackout, partition) and report delivery ratio, slowdown
    vs. the failure-free baseline, repairs and partition detection.
``service [--topology T] [--rate λ] [--phases N] [--sweep] …``
    Open-system service mode: stream unbounded per-station arrivals
    through collection over a long horizon and report the streaming
    KPIs (sojourn moments and P² percentiles, queue occupancy,
    throughput, backlog-drift stability) against the §4 tandem-queue
    oracle.  ``--sweep`` instead walks λ across the predicted critical
    rate and reports the detected stability knee.  The same cells run
    grid-style as experiments E19/E20 (``run E19``, ``run E20``).
``scenario <FILE> [--workers N] [--cache DIR] [--kpi-out PATH] …``
    Run a declarative scenario: a TOML/JSON spec naming a topology,
    arrival profile, fault profile, protocol mix, engine and
    replication grid, compiled onto the same executor/cache/
    checkpoint/fleet machinery as the registered experiments, followed
    by a KPI post-pass (delivery ratio, latency percentiles, air-time
    utilization, collision rate, Jain fairness) written as
    ``KPI_<scenario>.json``.  ``scenario validate <FILE>`` checks a
    spec without running it; ``scenario list`` shows the spec files
    under ``scenarios/``.
``run <EXP_ID> [--engine vector] [--workers N] [--cache DIR] …``
    Run a registered experiment grid through the parallel runner:
    sharded execution, content-addressed result cache, JSONL telemetry.
    ``--engine vector`` batches every seed of a grid cell into one NumPy
    lockstep call; ``--reception dense|sparse|auto`` picks its reception
    kernel, ``--backend numpy|numba|auto`` its array-kernel backend
    (numba falls back to numpy when unavailable) and ``--mask
    on|off|auto`` the active-set loop that restricts per-slot work to
    the provably-awake stations.  ``--timeout S``, ``--retries N`` and
    ``--no-quarantine``
    set the fault policy (watchdog budget, retry count, whether a task
    that keeps failing is recorded-and-skipped or fatal);
    ``--checkpoint FILE`` journals completed tasks so an interrupted
    sweep resumes where it stopped.  ``run --list`` shows the runnable
    experiments; ``run <EXP_ID> --help`` shows all options.
``chaos [--quick] [--fleet] [--coord] [--json FILE] …``
    Run the fault-injection harness: the E3 quick grid with worker
    crashes, a hanging task, a transient failure and corrupt cache
    entries injected, verified to converge bit-for-bit to a clean
    control run.  With ``--fleet``, run the multi-host scenario
    instead: worker subprocesses drain a shared queue directory while
    one whole host is SIGKILLed, one lease is corrupted and one clock
    is skewed.  With ``--coord``, run the TCP coordinator scenario:
    workers reach the coordinator only through fault proxies that
    drop/duplicate/delay/truncate wire frames, one worker is
    partitioned, and the coordinator is SIGKILLed mid-lease and
    restarted from its journal.  Exits non-zero if any verdict fails.
``fleet submit|worker|status …``
    The multi-host execution backend.  ``submit`` populates a shared
    queue directory with an experiment grid; ``worker`` (run on any
    number of machines that see that directory) pulls tasks under
    atomic leases until the queue drains; ``status`` merges every
    host's journal into one live progress / failure-taxonomy report.
    ``fleet <sub> --help`` shows each subcommand's options.
``coord serve|submit|worker|status …``
    The TCP coordinator backend — the fleet without a shared
    filesystem.  ``serve`` runs the coordinator (crash-recoverable via
    its append-only journal); ``submit`` sends an experiment grid to
    it; ``worker`` (run anywhere with a TCP route to the coordinator)
    claims and executes tasks over the wire, spooling outcomes to a
    local outbox when the coordinator is unreachable; ``status`` asks
    the live coordinator, falling back to an offline journal replay.
    ``coord <sub> --help`` shows each subcommand's options.
``profile <EXP_ID> [--engine vector] [--json FILE] …``
    Run an experiment inline under the slot-loop profiler and print a
    JSON breakdown of where the engines spend their time (per-phase
    seconds, slots stepped, processes polled vs. skipped).
``vector-check [seed] [--backend NAME] [--mask on|off]``
    Run the vector-engine equivalence harness: exact invariants on
    traced batch runs plus the scalar-vs-vector KS test on E2/E3 cells,
    across every backend x mask combination (restrictable by flag).
``experiments``
    List the experiment registry (id, claim, bench file).
``validate``
    Run the quick self-check: verify each headline claim in seconds.
``info``
    Print package version and the paper's headline constants.
"""

from __future__ import annotations

import random
import sys


def _cmd_demo(seed: int) -> None:
    from repro.core import (
        run_broadcast,
        run_collection,
        run_point_to_point,
        run_ranking,
    )
    from repro.graphs import diameter, random_geometric, reference_bfs_tree

    graph = random_geometric(30, radius=0.32, rng=random.Random(seed))
    tree = reference_bfs_tree(graph, root=0)
    tree.assign_dfs_intervals()
    print(
        f"n={graph.num_nodes} D={diameter(graph)} Δ={graph.max_degree()} "
        f"depth={tree.depth}"
    )
    c = run_collection(graph, tree, {5: ["a"], 9: ["b"]}, seed=seed)
    print(f"collection: {c.messages_delivered} msgs in {c.slots} slots")
    p = run_point_to_point(graph, tree, [(3, 17, "x")], seed=seed)
    print(f"point-to-point: {p.messages_delivered} msgs in {p.slots} slots")
    b = run_broadcast(graph, tree, {8: ["alert"]}, seed=seed)
    print(f"broadcast: everywhere={b.delivered_everywhere} in {b.slots} slots")
    r = run_ranking(graph, tree, seed=seed)
    print(f"ranking: {len(r.ranks)} stations ranked in {r.slots} slots")


def _cmd_timeline(seed: int) -> None:
    from repro.analysis import record_collection_timeline, render_timeline
    from repro.graphs import path, reference_bfs_tree

    graph = path(14)
    tree = reference_bfs_tree(graph, 0)
    sources = {13: [f"m{i}" for i in range(8)], 7: ["n0", "n1"]}
    timeline = record_collection_timeline(graph, tree, sources, seed=seed)
    print(render_timeline(timeline))
    print(f"(drained in {timeline.phases - 1} phases of "
          f"{timeline.phase_length} slots)")


def _cmd_congestion(seed: int) -> None:
    from repro.analysis import congestion_profile
    from repro.graphs import balanced_tree, reference_bfs_tree

    graph = balanced_tree(3, 3)
    tree = reference_bfs_tree(graph, 0)
    sources = {
        node: ["r"] for node in tree.nodes if tree.level[node] == tree.depth
    }
    profile = congestion_profile(graph, tree, sources, seed=seed)
    print("§8 remark (5): transmission share by BFS level")
    for level in sorted(profile.per_level_transmissions):
        share = profile.load_share(level)
        bar = "#" * int(50 * share)
        print(f"  L{level}: {share:6.1%} {bar}")
    print(f"busiest level: {profile.busiest_level} "
          f"(the root's children carry everything)")


def _cmd_map(seed: int) -> None:
    from repro.graphs import (
        ascii_map,
        diameter,
        random_geometric_with_positions,
        reference_bfs_tree,
    )

    graph, positions = random_geometric_with_positions(
        30, radius=0.3, rng=random.Random(seed)
    )
    tree = reference_bfs_tree(graph, root=0)
    print(
        f"unit-disk field: n={graph.num_nodes}, D={diameter(graph)}, "
        f"Δ={graph.max_degree()} — symbols are BFS levels, R = root"
    )
    print(
        ascii_map(
            graph,
            positions,
            width=64,
            height=20,
            label=lambda v: "R" if v == tree.root else str(tree.level[v] % 10),
        )
    )


def _cmd_resilience(seed: int) -> None:
    from repro.analysis import resilience_table, run_resilience_suite
    from repro.graphs import diameter, layered_band, reference_bfs_tree

    graph = layered_band(6, 3)
    tree = reference_bfs_tree(graph, 0)
    deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
    mid = next(v for v in tree.nodes if tree.level[v] == tree.depth // 2)
    sources = {deepest: [f"m{i}" for i in range(4)], mid: ["n0", "n1"]}
    print(
        f"n={graph.num_nodes} D={diameter(graph)} Δ={graph.max_degree()} "
        f"depth={tree.depth}  sources={{"
        f"{deepest}: 4 msgs, {mid}: 2 msgs}}"
    )
    reports = run_resilience_suite(
        graph, tree, sources, seed=seed, down_grace_slots=2_000
    )
    print(resilience_table(reports))
    print(
        "(ratio = delivered/injected; reachable = delivered/expected from "
        "the root's surviving component;\n part P/R = partition detection "
        "precision/recall among alive stations)"
    )


def _cmd_run(argv: list) -> int:
    import argparse

    from repro.errors import ConfigurationError
    from repro.runner import (
        get_experiment,
        registered_ids,
        run_experiment,
        write_bench_summary,
    )
    from repro.vector import BACKENDS, ENGINES, MASK_MODES, RECEPTION_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description=(
            "Run one registered experiment as a (topology × workload × "
            "seed) task grid: sharded over worker processes, resumable "
            "through the result cache, recorded as JSONL telemetry."
        ),
    )
    parser.add_argument(
        "exp_id", nargs="?", help="experiment id (see --list)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list runnable experiments"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="scalar",
        help=(
            "simulation engine: 'scalar' steps each task's slot loop in "
            "Python; 'vector' batches all seeds of a grid cell into one "
            "NumPy lockstep run (default: scalar)"
        ),
    )
    parser.add_argument(
        "--reception",
        choices=RECEPTION_MODES,
        default="auto",
        help=(
            "vector-engine reception kernel: 'dense' ((n,n) adjacency "
            "product), 'sparse' (CSR scatter, O(edges) memory) or "
            "'auto' (edge-density heuristic, the default); part of the "
            "cached task identity"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help=(
            "vector-engine array kernels: 'numpy' (default "
            "formulations), 'numba' (JIT-compiled inner loops; silently "
            "falls back to numpy when the wheel is unavailable — "
            "results are bit-identical), 'cupy' (GPU stub, not yet "
            "implemented) or 'auto' (numba when importable); part of "
            "the cached task identity"
        ),
    )
    parser.add_argument(
        "--mask",
        choices=MASK_MODES,
        default="auto",
        help=(
            "vector-engine active-set mask: 'on' restricts per-slot "
            "work (coin draws, reception scatter, backlog updates) to "
            "the provably-awake stations, 'off' runs the full-width "
            "loop, 'auto' enables it at n >= 1024; the modes are "
            "distributionally (not bitwise) equivalent, so this is "
            "part of the cached task identity"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = inline, the default)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="result-cache directory (hits replay without executing)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="experiment root seed"
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=5,
        help="replications per grid case",
    )
    parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="telemetry directory (manifest.json + telemetry.jsonl)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the BENCH-style summary JSON to FILE",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="miniature grid (CI smoke / quick sanity)",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the live progress line",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-task wall-clock budget; with workers >= 1 a watchdog "
            "kills and quarantines tasks that exceed it (default: the "
            "experiment's own budget, if any)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "re-executions of a failed or crashed task before it is "
            "quarantined (default: 2)"
        ),
    )
    parser.add_argument(
        "--no-quarantine",
        action="store_true",
        help=(
            "abort the run on the first task that exhausts its retries "
            "instead of recording and skipping it"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help=(
            "sweep-checkpoint journal: completed tasks are appended as "
            "they finish and restored on the next run, so Ctrl-C or an "
            "OOM kill is a pause, not a restart"
        ),
    )
    args = parser.parse_args(argv)

    if args.list or args.exp_id is None:
        from repro.analysis.experiments import REGISTRY

        claims = {e.exp_id: e.claim for e in REGISTRY}
        print("runnable experiments:")
        for exp_id in registered_ids():
            defn = get_experiment(exp_id)
            claim = claims.get(exp_id)
            detail = f" — {claim}" if claim else ""
            print(f"  {exp_id:<5} {defn.title}{detail}")
        return 0 if args.list else 2

    if args.exp_id not in registered_ids():
        from repro.scenario.discovery import unknown_experiment_message

        print(
            unknown_experiment_message(args.exp_id, registered_ids())
            + "\n(use 'python -m repro run --list' for descriptions)",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_experiment(
            args.exp_id,
            seed=args.seed,
            replications=args.replications,
            workers=args.workers,
            cache=args.cache,
            telemetry=args.run_dir,
            checkpoint=args.checkpoint,
            progress=not args.no_progress,
            engine=args.engine,
            reception=args.reception,
            backend=args.backend,
            mask=args.mask,
            timeout=args.timeout,
            retries=args.retries,
            quarantine=not args.no_quarantine,
            quick=args.quick,
        )
    except ConfigurationError as exc:
        print(f"cannot run {args.exp_id!r}: {exc}", file=sys.stderr)
        return 2
    defn = get_experiment(args.exp_id)
    print(report.summary_table(defn.summary_metrics or None))
    print(
        f"{len(report.outcomes)} tasks: {report.executed} executed, "
        f"{report.cache_hits} from cache; engine={args.engine}; "
        f"reception={args.reception}; backend={args.backend}; "
        f"mask={args.mask}; "
        f"workers={report.workers}; wall {report.wall_time:.2f}s"
    )
    failures = report.failure_summary()
    if any(failures[k] for k in failures):
        print(
            f"failures: {failures['quarantined']} quarantined, "
            f"{failures['retries']} retries, "
            f"{failures['timeouts']} timeouts, "
            f"{failures['pool_rebuilds']} pool rebuilds, "
            f"{failures['corrupt_cache_entries']} corrupt cache entries, "
            f"{failures['resumed']} resumed from checkpoint"
            + (" (degraded to inline)" if report.fallback_inline else "")
        )
        for record in report.quarantined:
            print(f"  quarantined {record.label} "
                  f"[{record.category}] {record.detail}")
    if args.run_dir:
        print(f"telemetry: {args.run_dir}/telemetry.jsonl")
    if args.json:
        write_bench_summary(report, args.json)
        print(f"summary json: {args.json}")
    return 0


def _cmd_scenario(argv: list) -> int:
    import argparse
    import dataclasses
    import json

    from repro.errors import ConfigurationError
    from repro.scenario import (
        compile_scenario,
        discover_scenarios,
        parse_scenario,
        run_scenario,
    )

    if argv and argv[0] == "list":
        found = discover_scenarios()
        if not found:
            print("no scenario files found under scenarios/")
            return 0
        print("scenario files:")
        for item in found:
            if item.ok:
                detail = f" — {item.title}" if item.title else ""
                print(f"  {item.name:<20} {item.path}{detail}")
            else:
                print(f"  INVALID              {item.path}")
                print(f"      {item.error}")
        return 0

    validate_only = bool(argv) and argv[0] == "validate"
    if validate_only:
        argv = argv[1:]

    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description=(
            "Run a declarative scenario file: a TOML/JSON spec naming a "
            "topology, arrival profile, fault profile, protocol mix and "
            "replication grid, compiled into the same task grid the "
            "registered experiments use (executor, cache, checkpoint "
            "and fleet machinery unchanged), with a KPI post-pass.  "
            "Subcommands: 'scenario validate <file>' checks a spec "
            "without running it; 'scenario list' shows the spec files "
            "under scenarios/."
        ),
    )
    parser.add_argument("file", help="scenario spec file (.toml or .json)")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = inline, the default)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="result-cache directory (hits replay without executing)",
    )
    parser.add_argument(
        "--run-dir", metavar="DIR", default=None,
        help="telemetry directory (manifest.json + telemetry.jsonl)",
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="sweep-checkpoint journal (resume after interruption)",
    )
    parser.add_argument(
        "--kpi-out", metavar="PATH", default=None,
        help=(
            "write the KPI report (KPI_<scenario>.json) to PATH — a "
            "directory gets the canonical filename"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's [run] seed",
    )
    parser.add_argument(
        "--replications", type=int, default=None,
        help="override the spec's [run] replications",
    )
    parser.add_argument(
        "--engine", choices=("scalar", "vector"), default=None,
        help="override the spec's [engine] kind",
    )
    parser.add_argument(
        "--backend", choices=("numpy", "numba", "cupy", "auto"),
        default=None,
        help="override the spec's [engine] backend (vector engine only)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the BENCH-style summary JSON to FILE",
    )
    parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line",
    )
    args = parser.parse_args(argv)

    try:
        spec = parse_scenario(args.file)
        overrides = {}
        if args.seed is not None:
            overrides["run"] = {**spec.run, "seed": args.seed}
        if args.replications is not None:
            run = overrides.get("run", spec.run)
            overrides["run"] = {**run, "replications": args.replications}
        if args.engine is not None:
            overrides["engine"] = {**spec.engine, "kind": args.engine}
        if args.backend is not None:
            engine = overrides.get("engine", spec.engine)
            overrides["engine"] = {**engine, "backend": args.backend}
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        compiled = compile_scenario(spec)
    except ConfigurationError as exc:
        print(f"invalid scenario {args.file}: {exc}", file=sys.stderr)
        return 2

    mode = (
        f"registry twin of {compiled.exp_id}"
        if compiled.registry_mode
        else f"experiment id {compiled.exp_id}"
    )
    print(
        f"scenario {compiled.name!r}: {len(compiled.cases)} cases x "
        f"{spec.run['replications']} replications = "
        f"{len(compiled.tasks)} tasks ({mode})"
    )
    if validate_only:
        print("spec is valid")
        return 0

    try:
        report = run_scenario(
            compiled,
            workers=args.workers,
            cache=args.cache,
            telemetry=args.run_dir,
            checkpoint=args.checkpoint,
            progress=not args.no_progress,
        )
    except ConfigurationError as exc:
        print(f"cannot run scenario: {exc}", file=sys.stderr)
        return 2

    print(report.summary_table(compiled.summary_metrics or None))
    print(
        f"{len(report.outcomes)} tasks: {report.executed} executed, "
        f"{report.cache_hits} from cache; engine={compiled.engine}; "
        f"workers={report.workers}; wall {report.wall_time:.2f}s"
    )
    failures = report.failure_summary()
    if any(failures[k] for k in failures):
        print(
            f"failures: {failures['quarantined']} quarantined, "
            f"{failures['retries']} retries, "
            f"{failures['timeouts']} timeouts"
        )
        for record in report.quarantined:
            print(f"  quarantined {record.label} "
                  f"[{record.category}] {record.detail}")

    from repro.kpi import kpis_from_report, write_kpi_report

    kpis = kpis_from_report(report, scenario=compiled.name)
    headline = [
        f"{key}={kpis[key]:.4g}"
        for key in (
            "delivery_ratio", "latency_p50_phases", "latency_p99_phases",
            "utilization", "collision_rate", "jain_fairness",
        )
        if key in kpis
    ]
    if headline:
        print("KPIs: " + "  ".join(headline))
    if args.kpi_out:
        path = write_kpi_report(kpis, args.kpi_out)
        print(f"kpi json: {path}")
    if args.run_dir:
        print(f"telemetry: {args.run_dir}/telemetry.jsonl")
    if args.json:
        from repro.runner import write_bench_summary

        write_bench_summary(report, args.json)
        print(f"summary json: {args.json}")
    return 0


def _cmd_service(argv: list) -> int:
    import argparse
    import json

    from repro.errors import ConfigurationError
    from repro.runner.defs import service_metrics, service_sources, sweep_metrics

    parser = argparse.ArgumentParser(
        prog="python -m repro service",
        description=(
            "Open-system service mode: stream unbounded per-station "
            "arrivals through the collection protocol over a long "
            "horizon with constant-memory streaming KPIs, validated "
            "against the §4 tandem-queue closed forms.  With --sweep, "
            "walk the arrival rate across the predicted critical λ and "
            "locate the stability knee instead."
        ),
    )
    parser.add_argument(
        "--topology", default="path-12",
        help="topology name, e.g. path-12, band-4x3 (default: path-12)",
    )
    parser.add_argument(
        "--source-mode", choices=("tail", "bottom", "all"), default="tail",
        help=(
            "which stations originate traffic: the single deepest "
            "('tail', default), every deepest-level station ('bottom') "
            "or every non-root station ('all')"
        ),
    )
    parser.add_argument(
        "--arrival", choices=("bernoulli", "poisson"), default="bernoulli",
        help="arrival process per source (default: bernoulli)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.3,
        help="offered load per source per phase (default: 0.3)",
    )
    parser.add_argument(
        "--phases", type=int, default=1500,
        help="horizon in Decay phases (default: 1500)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--sweep", action="store_true",
        help="run a saturation sweep instead of a single cell",
    )
    parser.add_argument(
        "--points", type=int, default=7,
        help="sweep points across the predicted knee (default: 7)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the metrics JSON to FILE",
    )
    args = parser.parse_args(argv)

    try:
        _, tree, sources = service_sources(
            args.topology, args.source_mode, args.seed
        )
        if args.sweep:
            metrics = sweep_metrics(
                args.topology, args.source_mode, args.points,
                args.phases, args.seed,
            )
        else:
            metrics = service_metrics(
                args.topology, args.source_mode, args.arrival,
                args.rate, args.phases, args.seed,
            )
    except ConfigurationError as exc:
        print(f"cannot run service mode: {exc}", file=sys.stderr)
        return 2

    print(
        f"{args.topology} depth={tree.depth} sources={len(sources)} "
        f"({args.source_mode})"
    )
    if args.sweep:
        print(
            f"capacity µ_eff = {metrics['capacity_per_phase']:.4f}/phase, "
            f"critical λ = {metrics['critical_rate_per_source']:.4f}/source"
        )
        knee = (
            f"knee = ({metrics['knee_low']:.4f}, {metrics['knee_high']:.4f})"
            if metrics["knee_found"]
            else "knee not found (sweep never destabilized)"
        )
        verdict = (
            "brackets the analytic critical rate"
            if metrics["knee_brackets_critical"]
            else "does NOT bracket the analytic critical rate"
        )
        print(f"{knee} over {metrics['points']} points — {verdict}")
    else:
        print(
            f"offered {metrics['offered_per_phase']:.4f}/phase over "
            f"{args.phases} phases ({metrics['horizon_slots']} slots, "
            f"warmup {metrics['warmup_slots']}); "
            f"{'stable' if metrics['stable'] else 'UNSTABLE'}"
        )
        print(
            f"sojourn: mean {metrics['sojourn_phases']:.2f} phases "
            f"(predicted {metrics['predicted_sojourn_phases']:.2f}, "
            f"ratio {metrics['sojourn_ratio']:.2f}), "
            f"p50 {metrics['sojourn_p50_phases']:.2f}, "
            f"p90 {metrics['sojourn_p90_phases']:.2f}, "
            f"p99 {metrics['sojourn_p99_phases']:.2f}"
        )
        print(
            f"queue:   mean {metrics['queue_mean']:.2f} msgs "
            f"(predicted {metrics['predicted_queue_mean']:.2f}, "
            f"ratio {metrics['queue_ratio']:.2f}); "
            f"throughput {metrics['throughput_per_phase']:.4f}/phase; "
            f"in-flight peak {metrics['in_flight_peak']}"
        )
    if args.json:
        import os

        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"service json: {args.json}")
    return 0


def _cmd_profile(argv: list) -> int:
    import argparse
    import json

    from repro import profiling
    from repro.errors import ConfigurationError
    from repro.runner import registered_ids, run_experiment
    from repro.vector import BACKENDS, ENGINES, MASK_MODES, RECEPTION_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=(
            "Run one registered experiment inline under the slot-loop "
            "profiler and emit a JSON phase breakdown (where the slot "
            "loops spend wall-clock time, slots stepped, processes "
            "polled vs. skipped).  Always runs workers=0 and without a "
            "result cache: profiles are process-local and cache hits "
            "execute nothing worth measuring."
        ),
    )
    parser.add_argument("exp_id", help="experiment id (see run --list)")
    parser.add_argument("--engine", choices=ENGINES, default="scalar")
    parser.add_argument(
        "--reception", choices=RECEPTION_MODES, default="auto"
    )
    parser.add_argument("--backend", choices=BACKENDS, default="auto")
    parser.add_argument("--mask", choices=MASK_MODES, default="auto")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--replications", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true", help="miniature grid"
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the breakdown JSON to FILE",
    )
    args = parser.parse_args(argv)

    if args.exp_id not in registered_ids():
        print(
            f"unknown experiment {args.exp_id!r}; runnable: "
            f"{', '.join(registered_ids())}",
            file=sys.stderr,
        )
        return 2
    try:
        with profiling.profiled() as profile:
            report = run_experiment(
                args.exp_id,
                seed=args.seed,
                replications=args.replications,
                workers=0,
                engine=args.engine,
                reception=args.reception,
                backend=args.backend,
                mask=args.mask,
                quick=args.quick,
            )
    except ConfigurationError as exc:
        print(f"cannot profile {args.exp_id!r}: {exc}", file=sys.stderr)
        return 2
    breakdown = {
        "exp_id": args.exp_id,
        "engine": args.engine,
        "reception": args.reception,
        "backend": args.backend,
        "mask": args.mask,
        "seed": args.seed,
        "replications": args.replications,
        "tasks": len(report.outcomes),
        "run_wall_seconds": round(report.wall_time, 6),
        **profile.report(),
    }
    text = json.dumps(breakdown, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"profile json: {args.json}", file=sys.stderr)
    return 0


def _cmd_chaos(argv: list) -> int:
    import argparse
    import json

    from repro.errors import ConfigurationError
    from repro.runner.chaos import run_chaos, run_coord_chaos, run_fleet_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Fault-injection harness: run the E3 quick grid once clean "
            "and once with injected worker crashes, a hanging task, a "
            "transient failure and corrupt cache entries, and verify "
            "the chaotic run converges bit-for-bit to the control.  "
            "--fleet swaps in the multi-host scenario: worker "
            "subprocesses drain a shared queue directory while one "
            "whole host is SIGKILLed mid-sweep, one in-flight lease is "
            "corrupted and one host's clock is skewed.  --coord swaps "
            "in the TCP coordinator scenario: frame-level network "
            "faults, a partitioned worker, and a coordinator SIGKILL "
            "mid-lease with journal recovery."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller grid and tighter watchdog budget (CI smoke)",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "run the multi-host fleet scenario (host kill, lease "
            "corruption, clock skew) instead of the process-pool one"
        ),
    )
    parser.add_argument(
        "--coord",
        action="store_true",
        help=(
            "run the TCP coordinator scenario (frame faults, worker "
            "partition, coordinator SIGKILL + journal restart) instead "
            "of the process-pool one"
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes (default 2), or with --fleet the number "
            "of worker hosts (default 3, the first is killed)"
        ),
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=None,
        help="replications per grid case (default: 6 quick, 10 full)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog budget per task (default: 3 quick, 6 full)",
    )
    parser.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help=(
            "working directory for caches, telemetry and the injection "
            "plan (default: a temporary directory, removed afterwards)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the chaos report JSON to FILE",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the live progress lines",
    )
    args = parser.parse_args(argv)
    if args.fleet and args.coord:
        print("--fleet and --coord are mutually exclusive", file=sys.stderr)
        return 2
    try:
        if args.coord:
            report = run_coord_chaos(
                seed=args.seed,
                workers=args.workers if args.workers is not None else 3,
                replications=args.replications,
                quick=args.quick,
                base_dir=args.dir,
                keep=args.dir is not None,
                progress=not args.no_progress,
            )
        elif args.fleet:
            report = run_fleet_chaos(
                seed=args.seed,
                workers=args.workers if args.workers is not None else 3,
                replications=args.replications,
                quick=args.quick,
                base_dir=args.dir,
                keep=args.dir is not None,
                progress=not args.no_progress,
            )
        else:
            report = run_chaos(
                seed=args.seed,
                workers=args.workers if args.workers is not None else 2,
                replications=args.replications,
                quick=args.quick,
                timeout=args.timeout,
                base_dir=args.dir,
                keep=args.dir is not None,
                progress=not args.no_progress,
            )
    except ConfigurationError as exc:
        print(f"cannot run chaos: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        import os

        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos json: {args.json}")
    return 0 if report.ok else 1


def _cmd_fleet(argv: list) -> int:
    import argparse
    import json
    import time as _time

    from repro.errors import ConfigurationError
    from repro.runner.fleet import (
        FleetQueue,
        FleetWorker,
        fleet_status,
    )
    from repro.runner.policy import FaultPolicy
    from repro.vector import BACKENDS, ENGINES, MASK_MODES, RECEPTION_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description=(
            "Multi-host execution backend: a shared queue directory "
            "drained by lease-holding workers on any number of "
            "machines, merged into one report.  No coordinator; the "
            "filesystem is the protocol."
        ),
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    p_submit = sub.add_parser(
        "submit", help="populate a queue directory with an experiment grid"
    )
    p_submit.add_argument("exp_id", help="experiment id (see run --list)")
    p_submit.add_argument(
        "--queue", required=True, metavar="DIR",
        help="queue directory (created; must be visible to every worker)",
    )
    p_submit.add_argument("--seed", type=int, default=7)
    p_submit.add_argument("--replications", type=int, default=5)
    p_submit.add_argument("--engine", choices=ENGINES, default="scalar")
    p_submit.add_argument(
        "--reception", choices=RECEPTION_MODES, default="auto"
    )
    p_submit.add_argument("--backend", choices=BACKENDS, default="auto")
    p_submit.add_argument("--mask", choices=MASK_MODES, default="auto")
    p_submit.add_argument(
        "--quick", action="store_true", help="miniature grid"
    )

    p_worker = sub.add_parser(
        "worker", help="pull and execute tasks until the queue drains"
    )
    p_worker.add_argument("queue", metavar="QUEUE", help="queue directory")
    p_worker.add_argument(
        "--host", default=None,
        help="fleet host identity (default: <hostname>-<pid>)",
    )
    p_worker.add_argument(
        "--ttl", type=float, default=30.0,
        help="lease expiry: a lease untouched this long is reclaimed",
    )
    p_worker.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease refresh interval (default: ttl/4)",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.5,
        help="rescan interval when every pending task is leased",
    )
    p_worker.add_argument(
        "--throttle", type=float, default=0.0, metavar="SECONDS",
        help="sleep before each fresh execution (chaos/testing)",
    )
    p_worker.add_argument(
        "--retries", type=int, default=None,
        help="retry budget per task, shared with lease steals (default 2)",
    )
    p_worker.add_argument(
        "--skew", type=float, default=0.0, metavar="SECONDS",
        help="stamp lease times with a skewed clock (chaos/testing)",
    )
    p_worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="stop after this many tasks instead of draining the queue",
    )
    p_worker.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-task progress lines",
    )

    p_status = sub.add_parser(
        "status", help="merge every host's journal into one report"
    )
    p_status.add_argument("queue", metavar="QUEUE", help="queue directory")
    p_status.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the merged status JSON to FILE",
    )
    p_status.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render every SECONDS until the queue drains",
    )

    args = parser.parse_args(argv)

    if args.subcommand == "submit":
        import dataclasses

        from repro import __version__
        from repro.runner import get_experiment, registered_ids
        from repro.vector.engine import (
            validate_backend,
            validate_mask,
            validate_reception,
        )

        if args.exp_id not in registered_ids():
            print(
                f"unknown experiment {args.exp_id!r}; runnable: "
                f"{', '.join(registered_ids())}",
                file=sys.stderr,
            )
            return 2
        validate_reception(args.reception)
        validate_backend(args.backend)
        validate_mask(args.mask)
        defn = get_experiment(args.exp_id)
        options = {"quick": True} if args.quick else {}
        try:
            tasks = defn.tasks(args.seed, args.replications, **options)
            if args.engine != "scalar":
                if not defn.supports_vector:
                    raise ConfigurationError(
                        f"experiment {args.exp_id!r} has no vector-engine "
                        "implementation"
                    )
                tasks = [
                    dataclasses.replace(
                        spec,
                        engine=args.engine,
                        reception=args.reception,
                        backend=args.backend,
                        mask=args.mask,
                    )
                    for spec in tasks
                ]
            queue = FleetQueue(args.queue)
            fresh = queue.submit(
                tasks,
                version=__version__,
                options={
                    "seed": args.seed,
                    "replications": args.replications,
                    "engine": args.engine,
                    "reception": args.reception,
                    "backend": args.backend,
                    "mask": args.mask,
                    **options,
                },
            )
        except ConfigurationError as exc:
            print(f"cannot submit {args.exp_id!r}: {exc}", file=sys.stderr)
            return 2
        print(
            f"submitted {args.exp_id}: {len(tasks)} tasks "
            f"({fresh} new) -> {queue.root}"
        )
        print(
            "start workers with: python -m repro fleet worker "
            f"{queue.root}"
        )
        return 0

    if args.subcommand == "worker":
        policy = (
            FaultPolicy(max_retries=args.retries)
            if args.retries is not None
            else None
        )
        try:
            worker = FleetWorker(
                args.queue,
                host=args.host,
                policy=policy,
                ttl=args.ttl,
                heartbeat_interval=args.heartbeat,
                poll_interval=args.poll,
                throttle=args.throttle,
                clock_skew=args.skew,
                max_tasks=args.max_tasks,
                progress=not args.no_progress,
            )
            stats = worker.run()
        except ConfigurationError as exc:
            print(f"cannot start worker: {exc}", file=sys.stderr)
            return 2
        print(
            f"[{stats.host}] drained: {stats.executed} executed, "
            f"{stats.cache_hits} cache hits, {stats.lease_reclaims} "
            f"lease reclaims, {stats.retries} retries, "
            f"{stats.quarantined} quarantined in {stats.wall_time:.1f}s"
        )
        return 0

    # status
    while True:
        try:
            status = fleet_status(args.queue)
        except ConfigurationError as exc:
            print(f"cannot read queue: {exc}", file=sys.stderr)
            return 2
        print(status.summary())
        if args.json:
            import os as _os

            parent = _os.path.dirname(args.json)
            if parent:
                _os.makedirs(parent, exist_ok=True)
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(status.to_json(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.watch is None or status.done:
            return 0
        _time.sleep(args.watch)
        print()


def _cmd_coord(argv: list) -> int:
    import argparse
    import json
    import time as _time

    from repro.errors import ConfigurationError
    from repro.runner.client import (
        CoordClient,
        CoordinatorUnreachable,
        CoordWorker,
        parse_address,
    )
    from repro.runner.coord import (
        CoordServer,
        coord_status,
        format_coord_status,
        submit_tasks,
    )
    from repro.runner.policy import FaultPolicy
    from repro.vector import BACKENDS, ENGINES, MASK_MODES, RECEPTION_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro coord",
        description=(
            "TCP coordinator backend: one coordinator process holds the "
            "queue (crash-recoverable via an append-only journal), any "
            "number of workers reach it over length-prefixed JSON "
            "frames — no shared filesystem needed."
        ),
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    p_serve = sub.add_parser(
        "serve", help="run the coordinator (recovers from its journal)"
    )
    p_serve.add_argument(
        "--dir", required=True, metavar="DIR",
        help="coordinator state directory (journal, results, coord.json)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1; 0.0.0.0 for remote workers)",
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = ephemeral, advertised in coord.json)",
    )
    p_serve.add_argument(
        "--ttl", type=float, default=30.0,
        help="lease expiry: a lease unheard-of this long is re-queued",
    )
    p_serve.add_argument(
        "--retries", type=int, default=None,
        help="retry budget per task, shared with lease steals (default 2)",
    )

    p_submit = sub.add_parser(
        "submit", help="send an experiment grid to the coordinator"
    )
    p_submit.add_argument("exp_id", help="experiment id (see run --list)")
    p_submit.add_argument(
        "--dir", default=None, metavar="DIR",
        help="coordinator state dir (reads coord.json for the address)",
    )
    p_submit.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="explicit coordinator address (no state dir needed)",
    )
    p_submit.add_argument("--seed", type=int, default=7)
    p_submit.add_argument("--replications", type=int, default=5)
    p_submit.add_argument("--engine", choices=ENGINES, default="scalar")
    p_submit.add_argument(
        "--reception", choices=RECEPTION_MODES, default="auto"
    )
    p_submit.add_argument("--backend", choices=BACKENDS, default="auto")
    p_submit.add_argument("--mask", choices=MASK_MODES, default="auto")
    p_submit.add_argument(
        "--quick", action="store_true", help="miniature grid"
    )

    p_worker = sub.add_parser(
        "worker", help="claim and execute tasks over the wire"
    )
    p_worker.add_argument(
        "--dir", default=None, metavar="DIR",
        help="coordinator state dir (reads coord.json for the address)",
    )
    p_worker.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="explicit coordinator address (no state dir needed)",
    )
    p_worker.add_argument(
        "--outbox", default=None, metavar="DIR",
        help=(
            "local spool for outcomes computed while the coordinator "
            "is unreachable (default: <dir>/outbox; required with "
            "--addr alone)"
        ),
    )
    p_worker.add_argument(
        "--host", default=None,
        help="worker identity (default: <hostname>-<pid>-<nonce>)",
    )
    p_worker.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="SECONDS",
        help="lease heartbeat interval (default: 2.0)",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.5,
        help="re-claim interval when every pending task is leased",
    )
    p_worker.add_argument(
        "--throttle", type=float, default=0.0, metavar="SECONDS",
        help="sleep before each fresh execution (chaos/testing)",
    )
    p_worker.add_argument(
        "--retries", type=int, default=None,
        help="retry budget per task (default 2)",
    )
    p_worker.add_argument(
        "--request-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-request timeout before a reconnect-and-resend",
    )
    p_worker.add_argument(
        "--offline-budget", type=float, default=30.0, metavar="SECONDS",
        help=(
            "how long to keep retrying an unreachable coordinator "
            "before spooling to the outbox and exiting cleanly"
        ),
    )
    p_worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="stop after this many tasks instead of draining the queue",
    )
    p_worker.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-task progress lines",
    )

    p_status = sub.add_parser(
        "status", help="coordinator status (live TCP, else journal replay)"
    )
    p_status.add_argument(
        "--dir", required=True, metavar="DIR",
        help="coordinator state directory",
    )
    p_status.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the status JSON to FILE",
    )
    p_status.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render every SECONDS until the queue drains",
    )

    args = parser.parse_args(argv)

    if args.subcommand == "serve":
        policy = (
            FaultPolicy(max_retries=args.retries)
            if args.retries is not None
            else None
        )
        try:
            server = CoordServer(
                args.dir,
                host=args.host,
                port=args.port,
                ttl=args.ttl,
                policy=policy,
            )
            host, port = server.start()
        except (ConfigurationError, OSError) as exc:
            print(f"cannot start coordinator: {exc}", file=sys.stderr)
            return 2
        recovered = (
            f", {server.recovered_leases} leases restored"
            if server.recovered_leases
            else ""
        )
        print(
            f"coordinator on {host}:{port} — "
            f"{len(server.state.tasks)} tasks, "
            f"{len(server.state.done)} done{recovered} "
            f"(journal: {server.journal_path})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return 0

    if args.subcommand in ("submit", "worker"):
        if args.dir is None and args.addr is None:
            print(
                f"coord {args.subcommand} needs --dir or --addr",
                file=sys.stderr,
            )
            return 2
        address = parse_address(args.addr) if args.addr else None

    if args.subcommand == "submit":
        import dataclasses

        from repro import __version__
        from repro.runner import get_experiment, registered_ids
        from repro.vector.engine import (
            validate_backend,
            validate_mask,
            validate_reception,
        )

        if args.exp_id not in registered_ids():
            print(
                f"unknown experiment {args.exp_id!r}; runnable: "
                f"{', '.join(registered_ids())}",
                file=sys.stderr,
            )
            return 2
        validate_reception(args.reception)
        validate_backend(args.backend)
        validate_mask(args.mask)
        defn = get_experiment(args.exp_id)
        options = {"quick": True} if args.quick else {}
        client = None
        try:
            tasks = defn.tasks(args.seed, args.replications, **options)
            if args.engine != "scalar":
                if not defn.supports_vector:
                    raise ConfigurationError(
                        f"experiment {args.exp_id!r} has no vector-engine "
                        "implementation"
                    )
                tasks = [
                    dataclasses.replace(
                        spec,
                        engine=args.engine,
                        reception=args.reception,
                        backend=args.backend,
                        mask=args.mask,
                    )
                    for spec in tasks
                ]
            client = CoordClient(args.dir, address=address)
            fresh = submit_tasks(
                client,
                tasks,
                version=__version__,
                options={
                    "seed": args.seed,
                    "replications": args.replications,
                    "engine": args.engine,
                    "reception": args.reception,
                    "backend": args.backend,
                    "mask": args.mask,
                    **options,
                },
            )
        except ConfigurationError as exc:
            print(f"cannot submit {args.exp_id!r}: {exc}", file=sys.stderr)
            return 2
        except CoordinatorUnreachable as exc:
            print(f"coordinator unreachable: {exc}", file=sys.stderr)
            return 1
        finally:
            if client is not None:
                client.close()
        print(f"submitted {args.exp_id}: {len(tasks)} tasks ({fresh} new)")
        print(
            "start workers with: python -m repro coord worker "
            + (f"--dir {args.dir}" if args.dir else f"--addr {args.addr}")
        )
        return 0

    if args.subcommand == "worker":
        policy = (
            FaultPolicy(max_retries=args.retries)
            if args.retries is not None
            else None
        )
        try:
            worker = CoordWorker(
                args.dir,
                host=args.host,
                address=address,
                policy=policy,
                heartbeat_interval=args.heartbeat,
                poll_interval=args.poll,
                throttle=args.throttle,
                request_timeout=args.request_timeout,
                offline_budget=args.offline_budget,
                outbox_dir=args.outbox,
                max_tasks=args.max_tasks,
                progress=not args.no_progress,
            )
            stats = worker.run()
        except ConfigurationError as exc:
            print(f"cannot start worker: {exc}", file=sys.stderr)
            return 2
        stranded = (
            f", {stats.stranded} stranded in the outbox"
            if stats.stranded
            else ""
        )
        print(
            f"[{stats.host}] done: {stats.executed} executed, "
            f"{stats.cache_hits} cache hits, {stats.retries} retries, "
            f"{stats.quarantined} quarantined{stranded} in "
            f"{stats.wall_time:.1f}s"
        )
        return 1 if stats.stranded else 0

    # status
    while True:
        payload = coord_status(args.dir)
        print(format_coord_status(payload))
        if args.json:
            import os as _os

            parent = _os.path.dirname(args.json)
            if parent:
                _os.makedirs(parent, exist_ok=True)
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        total = int(payload.get("total", 0))
        drained = total > 0 and int(payload.get("pending", 0)) == 0
        if args.watch is None or drained:
            return 0
        _time.sleep(args.watch)
        print()


def _cmd_vector_check(argv: list) -> int:
    import argparse

    from repro.vector import BACKENDS
    from repro.vector.check import run_equivalence

    parser = argparse.ArgumentParser(
        prog="repro vector-check",
        description="scalar-vs-vector equivalence: exact invariants on "
        "traced batch runs plus the KS test, across the backend x mask "
        "matrix",
    )
    parser.add_argument("seed", nargs="?", type=int, default=20260704)
    parser.add_argument(
        "--backend",
        action="append",
        choices=[b for b in BACKENDS if b != "auto"],
        help="restrict the matrix to these kernel backends (repeatable; "
        "default: every available backend)",
    )
    parser.add_argument(
        "--mask",
        action="append",
        choices=["on", "off"],
        help="restrict the matrix to these active-set mask modes "
        "(repeatable; default: both)",
    )
    args = parser.parse_args(argv)
    report = run_equivalence(
        seed=args.seed,
        backends=args.backend,
        masks=tuple(args.mask) if args.mask else ("off", "on"),
    )
    print(report.summary())
    return 0 if report.passed else 1


def _cmd_info() -> None:
    import repro
    from repro.core import LAMBDA_STAR, MU, theorem_44_constant

    print(f"repro {repro.__version__} — Bar-Yehuda, Israeli & Itai, "
          f"PODC 1989")
    print(f"µ  = e⁻¹(1−e⁻¹)      = {MU:.6f}   (Theorem 4.1)")
    print(f"λ* = 1−√(1−µ)        = {LAMBDA_STAR:.6f}   (Theorem 4.3 tuning)")
    print(f"4/λ*                 = {theorem_44_constant():.2f}      "
          f"(Theorem 4.4 constant)")


def main(argv: list) -> int:
    if len(argv) < 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = argv[0]
    if command == "run":
        return _cmd_run(argv[1:])
    if command == "scenario":
        return _cmd_scenario(argv[1:])
    if command == "service":
        return _cmd_service(argv[1:])
    if command == "profile":
        return _cmd_profile(argv[1:])
    if command == "chaos":
        return _cmd_chaos(argv[1:])
    if command == "fleet":
        return _cmd_fleet(argv[1:])
    if command == "coord":
        return _cmd_coord(argv[1:])
    seed = int(argv[1]) if len(argv) > 1 else 7
    if command == "demo":
        _cmd_demo(seed)
    elif command == "timeline":
        _cmd_timeline(seed)
    elif command == "congestion":
        _cmd_congestion(seed)
    elif command == "map":
        _cmd_map(seed)
    elif command == "resilience":
        _cmd_resilience(seed)
    elif command == "vector-check":
        return _cmd_vector_check(argv[1:])
    elif command == "experiments":
        from repro.analysis.experiments import registry_table

        print(registry_table())
    elif command == "validate":
        from repro.validate import run_validation

        results = run_validation()
        return 0 if all(r.passed for r in results) else 1
    elif command == "info":
        _cmd_info()
    else:
        print(f"unknown command {command!r}\n", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        raise SystemExit(0)
