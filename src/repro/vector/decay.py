"""Batched Decay: B × n lockstep invocations as boolean matrix updates.

The scalar :class:`~repro.core.decay.DecaySession` steps one station's
invocation one transmission opportunity at a time.  Here the same
pseudocode —

    repeat at most 2·log Δ times
        transmit m to all neighbors;
        flip coin R ∈ {0, 1}
    until coin = 0

— runs for a whole ``(B, n)`` array of stations at once (B lockstep
replications × n stations): ``alive`` and ``steps`` are arrays, one coin
matrix is consumed per transmission opportunity, and the returned
transmit mask drives the batched reception product of
:mod:`repro.vector.engine`.

Faithfulness: the first transmission of an invocation is unconditional
(the paper transmits, *then* flips), a station dies on coin 0, and no
invocation exceeds ``budget`` transmissions.  The equivalence harness
(:mod:`repro.vector.check`) verifies the first property as an exact
invariant; :class:`BrokenOffByOneDecay` there deliberately violates it to
prove the harness has teeth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.vector.backend import _np_decay_pairs


class BatchDecay:
    """Lockstep Decay sessions for a ``(B, n)`` array of stations.

    One instance manages *all* sessions of the batch: a session is
    started per station at its first transmission opportunity of a phase
    (:meth:`start`), stepped via :meth:`transmit` once per opportunity,
    and silenced early by :meth:`kill` when the in-flight message is
    acknowledged.
    """

    def __init__(self, budget: int, shape: tuple):
        if budget < 1:
            raise ConfigurationError(
                f"Decay budget must be >= 1, got {budget}"
            )
        self.budget = budget
        self.shape = shape
        self.alive = np.zeros(shape, dtype=bool)
        self.steps = np.zeros(shape, dtype=np.int16)

    def start(self, mask: np.ndarray) -> None:
        """Begin a fresh invocation wherever ``mask`` is True."""
        self.alive[mask] = True
        self.steps[mask] = 0

    def reset(self) -> None:
        """Phase boundary: all in-flight invocations end."""
        self.alive[:] = False

    def kill(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Silence the sessions at ``(rows, cols)`` (message acked)."""
        self.alive[rows, cols] = False

    def transmit(
        self, coins: np.ndarray, opportunity: np.ndarray = None
    ) -> np.ndarray:
        """One transmission opportunity; returns the ``(B, n)`` transmit mask.

        ``coins`` is a ``(B, n)`` uniform[0,1) matrix; a station uses its
        entry only if it transmits this step.  ``opportunity`` restricts
        the step to the stations whose level class owns the slot —
        sessions of other classes neither transmit nor advance.  Paper
        order: transmit first, flip after — the first step of a session
        always transmits.
        """
        transmitting = self.alive & (self.steps < self.budget)
        if opportunity is not None:
            transmitting &= opportunity
        self.steps[transmitting] += 1
        self.alive &= ~(transmitting & (coins < 0.5))
        return transmitting

    # ------------------------------------------------------------------
    # Active-set (pair list) interface — the masked lockstep loop
    # ------------------------------------------------------------------

    def start_pairs(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Begin fresh invocations at the listed (replication, station)
        pairs — the compact-form twin of :meth:`start`."""
        self.alive[rows, cols] = True
        self.steps[rows, cols] = 0

    def transmit_pairs(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        coins: np.ndarray,
        kernel=None,
    ) -> np.ndarray:
        """One opportunity restricted to an active pair list.

        Same semantics as :meth:`transmit` (transmit first, flip after;
        a killed or exhausted session stays silent), but work and coin
        consumption are O(pairs), never O(B·n): ``coins`` carries one
        uniform draw *per pair*.  ``kernel`` optionally supplies a
        compiled implementation from the resolved array backend; the
        default NumPy formulation is bit-identical, and subclasses that
        override this method (the equivalence harness's broken variants)
        simply ignore the kernel.  Returns the per-pair transmit mask.
        """
        if kernel is not None:
            return kernel(
                self.alive, self.steps, self.budget, rows, cols, coins
            )
        return _np_decay_pairs(
            self.alive, self.steps, self.budget, rows, cols, coins
        )
