"""Equivalence harness: proving the vector engine simulates the paper.

Vector RNG streams (NumPy) can never be bit-identical to the scalar
engine's ``random.Random`` streams, so "same trajectory" is not a
checkable contract.  What *is* checkable:

**Exact invariants** on traced vector sub-runs — properties every
faithful simulation of the §2–§4 protocol must satisfy on *every*
trajectory:

* *ack parity* — data transmissions occupy even slots, acknowledgements
  the odd slot immediately after (the deterministic ack schedule of §3);
* *level multiplexing / no cross-level collisions* — only the slot's
  level class transmits data and, with ≥ 3 classes, any two transmitters
  colliding at a common receiver are at the same BFS level (§2.2:
  neighbors differ by at most one level);
* *session starts* — the first transmission of a Decay invocation is
  unconditional (the paper transmits, then flips);
* *conservation* — every injected message is collected at the root
  exactly once and all buffers drain.

**Distributional equivalence** — a two-sample Kolmogorov–Smirnov test
that scalar and vector completion-slot distributions agree on an E2
contention cell and an E3 collection cell (α = 0.01 by default).

The harness must be able to *fail*: :class:`BrokenOffByOneDecay` shifts
the Decay coin flip one step early (gating the first transmission), and
``tests/test_vector.py`` asserts that this breaks both the session-start
invariant and the KS test.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import KSResult, ks_2sample
from repro.core.collection import run_collection
from repro.core.slots import SlotKind
from repro.graphs import Graph, layered_band, reference_bfs_tree
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import NodeId
from repro.rng import derive_seed
from repro.vector.backend import available_backends
from repro.vector.collection import (
    BatchCollectionResult,
    DecayFactory,
    run_collection_batch,
)
from repro.vector.decay import BatchDecay

DEFAULT_ALPHA = 0.01


class BrokenOffByOneDecay(BatchDecay):
    """Decay with the coin flip shifted one step early — deliberately wrong.

    The paper transmits *then* flips, so the first transmission of an
    invocation is unconditional.  This variant flips first: a freshly
    started session stays silent with probability 1/2, which (a) violates
    the session-start invariant on any traced run and (b) roughly halves
    the per-slot transmission rate, visibly slowing completion — the two
    failure modes the harness exists to detect.
    """

    def transmit(
        self, coins: np.ndarray, opportunity: np.ndarray = None
    ) -> np.ndarray:
        candidates = self.alive & (self.steps < self.budget)
        if opportunity is not None:
            candidates &= opportunity
        self.alive &= ~(candidates & (coins < 0.5))
        transmitting = candidates & (coins >= 0.5)
        self.steps[transmitting] += 1
        return transmitting

    def transmit_pairs(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        coins: np.ndarray,
        kernel=None,
    ) -> np.ndarray:
        # Same flip-first bug on the active-set path, so the harness
        # keeps its teeth in masked mode under any backend (the kernel
        # is deliberately ignored — broken means broken).
        candidates = self.alive[rows, cols] & (
            self.steps[rows, cols] < self.budget
        )
        died = candidates & (coins < 0.5)
        if died.any():
            self.alive[rows[died], cols[died]] = False
        transmitting = candidates & (coins >= 0.5)
        self.steps[rows, cols] += transmitting
        return transmitting


# ----------------------------------------------------------------------
# Exact invariants on traced runs
# ----------------------------------------------------------------------


def check_invariants(result: BatchCollectionResult) -> List[str]:
    """All invariant violations of a traced batch run (empty = clean)."""
    sim = result.simulation
    if sim.trace is None:
        raise ValueError("invariant checks need a trace=True run")
    failures: List[str] = []
    slots = sim.slots
    classes = slots.level_classes
    levels = sim.radio.levels
    adjacency = sim.radio.adjacency

    for rec in sim.trace.slots:
        info = slots.decode(rec.slot)
        expected = "data" if info.kind is SlotKind.DATA else "ack"
        if rec.kind != expected:
            failures.append(
                f"slot {rec.slot}: traced as {rec.kind}, schedule says "
                f"{expected}"
            )
        if rec.kind == "data" and rec.slot % 2 != 0:
            failures.append(
                f"ack parity: data transmissions in odd slot {rec.slot}"
            )
        if rec.kind == "ack" and rec.slot % 2 != 1:
            failures.append(
                f"ack parity: acknowledgements in even slot {rec.slot}"
            )

    for rec in sim.trace.data_slots():
        if rec.tx.any():
            outside = rec.tx & (
                (levels % classes != rec.level_class)[None, :]
            )
            if outside.any():
                failures.append(
                    f"slot {rec.slot}: station outside level class "
                    f"{rec.level_class} transmitted data"
                )
        if classes >= 3 and rec.counts is not None:
            # §2.2: with ≥ 3 classes, transmitters colliding at a common
            # receiver must share a BFS level (receiver's neighbors span
            # ≤ 2 adjacent levels, and class-equality mod ≥ 3 pins one).
            for b, v in zip(*np.nonzero(rec.counts >= 2.0)):
                colliders = levels[rec.tx[b] & adjacency[v]]
                if colliders.size and colliders.min() != colliders.max():
                    failures.append(
                        f"slot {rec.slot}: cross-level collision at "
                        f"station {sim.radio.nodes[v]} "
                        f"(levels {sorted(set(colliders.tolist()))})"
                    )
        if rec.decay_step == 0 and rec.started is not None:
            if not np.array_equal(rec.tx, rec.started):
                failures.append(
                    f"slot {rec.slot}: session-start violated — a fresh "
                    "Decay invocation's first transmission was not "
                    "unconditional"
                )

    expected_ids = Counter(range(sim.total_messages))
    for b, ids in enumerate(sim.delivered_ids()):
        if Counter(ids) != expected_ids:
            failures.append(
                f"replication {b}: conservation violated — collected "
                f"{sorted(ids)} instead of each of "
                f"{sim.total_messages} messages exactly once"
            )
        leftovers = sim.buffered_ids(b)
        if leftovers:
            failures.append(
                f"replication {b}: {len(leftovers)} messages still "
                "buffered after completion"
            )
    return failures


# ----------------------------------------------------------------------
# Scalar-vs-vector KS equivalence on experiment cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One (topology, workload) grid cell to compare across engines."""

    name: str
    graph: Graph
    tree: BFSTree
    sources: Dict[NodeId, List[Any]]
    level_classes: int = 3


def e3_cell() -> CellSpec:
    """An E3 collection cell: messages spread across the deepest layer.

    Spreading the workload over contending siblings (rather than the
    single deepest station of the E3 grid) makes the completion slot
    genuinely random — a single-source band pipeline drains
    deterministically, which would give the KS test nothing to compare.
    """
    graph = layered_band(6, 4)
    tree = reference_bfs_tree(graph, 0)
    deepest_level = max(tree.level.values())
    deepest = sorted(v for v in tree.nodes if tree.level[v] == deepest_level)
    return CellSpec(
        name="E3/band-6x4/k=8",
        graph=graph,
        tree=tree,
        sources={v: [f"m{v}-{i}" for i in range(2)] for v in deepest},
    )


def e2_cell() -> CellSpec:
    """An E2 contention cell: loaded children under shared parents."""
    parents, children, load = 2, 8, 2
    edges = [(0, p) for p in range(1, parents + 1)]
    for child in range(parents + 1, parents + children + 1):
        for parent in range(1, parents + 1):
            edges.append((parent, child))
    graph = Graph.from_edges(edges)
    tree = reference_bfs_tree(graph, 0)
    child_ids = [node for node in graph.nodes if tree.level[node] == 2]
    return CellSpec(
        name="E2/contention-2x8/load=2",
        graph=graph,
        tree=tree,
        sources={
            child: [f"m{child}-{i}" for i in range(load)]
            for child in child_ids
        },
    )


def default_cells() -> List[CellSpec]:
    return [e3_cell(), e2_cell()]


@dataclass
class CellReport:
    """Harness outcome for one cell."""

    name: str
    invariant_failures: List[str]
    ks: KSResult
    scalar_slots: List[int]
    vector_slots: List[int]

    def passed(self, alpha: float = DEFAULT_ALPHA) -> bool:
        return not self.invariant_failures and not self.ks.rejects(alpha)


@dataclass
class EquivalenceReport:
    """Full harness outcome across all checked cells."""

    alpha: float
    cells: List[CellReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(cell.passed(self.alpha) for cell in self.cells)

    def summary(self) -> str:
        lines = [
            f"engine equivalence @ alpha={self.alpha}: "
            + ("PASS" if self.passed else "FAIL")
        ]
        for cell in self.cells:
            verdict = "ok" if cell.passed(self.alpha) else "FAIL"
            lines.append(
                f"  {cell.name}: {verdict}  "
                f"KS D={cell.ks.statistic:.3f} p={cell.ks.pvalue:.4f} "
                f"(n={cell.ks.n1}+{cell.ks.n2}), "
                f"{len(cell.invariant_failures)} invariant violations"
            )
            for failure in cell.invariant_failures[:5]:
                lines.append(f"    - {failure}")
        return "\n".join(lines)


def _cell_seeds(cell: CellSpec, seed: int, replications: int) -> List[int]:
    return [
        derive_seed(seed, "equivalence", cell.name, index)
        for index in range(replications)
    ]


def _scalar_slots(cell: CellSpec, seeds: Sequence[int]) -> List[int]:
    return [
        run_collection(
            cell.graph,
            cell.tree,
            cell.sources,
            s,
            level_classes=cell.level_classes,
        ).slots
        for s in seeds
    ]


def compare_cell(
    cell: CellSpec,
    seed: int,
    replications: int,
    decay_factory: DecayFactory = BatchDecay,
    trace: bool = True,
    reception: str = "auto",
    backend: str = "auto",
    mask: str = "auto",
    label: Optional[str] = None,
    scalar_slots: Optional[List[int]] = None,
) -> CellReport:
    """Run one cell on both engines and compare.

    Scalar: ``replications`` independent :func:`run_collection` calls
    (``scalar_slots`` lets the matrix harness reuse one scalar sample
    across backend×mask combinations — the scalar side does not depend
    on any vector knob).  Vector: one batched call over the same derived
    seeds with the given ``reception``/``backend``/``mask``, traced so
    the exact invariants can be checked on the very trajectories that
    feed the KS sample.
    """
    seeds = _cell_seeds(cell, seed, replications)
    if scalar_slots is None:
        scalar_slots = _scalar_slots(cell, seeds)
    batch = run_collection_batch(
        cell.graph,
        cell.tree,
        cell.sources,
        seeds,
        level_classes=cell.level_classes,
        decay_factory=decay_factory,
        trace=trace,
        reception=reception,
        backend=backend,
        mask=mask,
    )
    vector_slots = [int(v) for v in batch.completion_slots]
    failures = check_invariants(batch) if trace else []
    return CellReport(
        name=label if label is not None else cell.name,
        invariant_failures=failures,
        ks=ks_2sample(scalar_slots, vector_slots),
        scalar_slots=scalar_slots,
        vector_slots=vector_slots,
    )


def run_equivalence(
    seed: int = 20260704,
    replications: int = 48,
    alpha: float = DEFAULT_ALPHA,
    decay_factory: DecayFactory = BatchDecay,
    cells: Optional[Sequence[CellSpec]] = None,
    backends: Optional[Sequence[str]] = None,
    masks: Sequence[str] = ("off", "on"),
) -> EquivalenceReport:
    """The full harness: invariants + KS over the backend×mask matrix.

    Every cell is compared against the scalar engine once per
    ``backends × masks`` combination (defaults: the backends that can
    actually run in this environment × both mask modes), so a report
    that passes certifies each kernel backend *and* both lockstep loops
    — the full-width and the active-set one — against the paper's
    invariants and the scalar completion-slot distribution.  The scalar
    sample is computed once per cell and shared across combinations.
    """
    if backends is None:
        backends = available_backends()
    report = EquivalenceReport(alpha=alpha)
    for cell in cells if cells is not None else default_cells():
        seeds = _cell_seeds(cell, seed, replications)
        scalar = _scalar_slots(cell, seeds)
        for backend in backends:
            for mask in masks:
                report.cells.append(
                    compare_cell(
                        cell,
                        seed,
                        replications,
                        decay_factory,
                        backend=backend,
                        mask=mask,
                        label=f"{cell.name}[{backend},mask={mask}]",
                        scalar_slots=scalar,
                    )
                )
    return report
