"""Batched collection (§4): B lockstep replications as array updates.

This is the vector-engine implementation of the protocol in
:mod:`repro.core.collection`: every station runs Decay toward its BFS
parent on the multiplexed slot schedule (level classes mod 3, each data
slot followed by its deterministic ack slot), and the root's accepted
messages are the output.  One :class:`BatchCollection` advances B
replications of that protocol *simultaneously*:

* per-node buffers are ``(B, n)`` **counters** — ``backlog`` (queued
  messages) and ``eligible`` (messages buffered since before the current
  phase, the §4.1 "buffer non-empty at the beginning of a phase" rule);
  because buffers are FIFO and eligibility is monotone in queue position,
  counters capture the full sending dynamics;
* message *identity* rides in a bounded **payload ring** ``(B, n, k)``
  of global message ids with per-node head pointers, so conservation —
  every collected message originates exactly once — stays checkable;
* reception is the adjacency product of
  :class:`~repro.vector.engine.LockstepRadio`; acknowledgements are
  resolved physically on the paired ack slot and Theorem 3.1 (the ack
  always arrives, failure-free) is *asserted*, making ack determinism a
  built-in runtime invariant of the engine.

Randomness: replication ``b`` draws its Decay coins from the NumPy
stream ``np_rng(seeds[b], "vector", "decay")`` and consumes exactly one
``(n,)`` coin row per data slot, whether or not its stations transmit.
Stream position is therefore a pure function of the slot number —
replication outcomes are independent of batch size and batch position,
which is what lets the runner cache vector results per task.

Validity: lockstep batching assumes the paper's failure-free model on a
fixed topology (no failure injection, no repair).  Fault experiments
stay on the scalar engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.collection import expected_collection_slots
from repro.core.slots import SlotKind, SlotStructure, decay_budget
from repro.errors import ConfigurationError, ProtocolError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.rng import np_rng
from repro.vector.decay import BatchDecay
from repro.vector.engine import BatchTrace, LockstepRadio, SlotRecord

#: Coin rows generated per refill of the per-replication streams; bounds
#: the resident coin block to ``COIN_BLOCK × B × n`` float32.
COIN_BLOCK = 256

DecayFactory = Callable[[int, tuple], BatchDecay]


class BatchCollection:
    """B lockstep replications of collection on one topology.

    Parameters
    ----------
    graph, tree:
        The shared topology and its BFS tree (all replications identical).
    sources:
        ``station -> [payload, ...]`` — the workload, injected at slot 0
        in every replication (grid cells share their workload; only the
        coins differ across replications).
    seeds:
        One root seed per replication; each seeds an independent
        NumPy coin stream.
    level_classes, budget:
        As in the scalar protocol: §2.2 multiplexing (3 in the paper)
        and the Decay budget (default ``2·ceil(log2 Δ)``).
    decay_factory:
        Constructor for the batched Decay implementation — the
        equivalence harness swaps in a deliberately broken variant to
        prove its own checks can fail.
    trace:
        Capture a :class:`~repro.vector.engine.BatchTrace` of every slot
        (dense copies: traced sub-runs only).
    reception:
        Reception kernel: ``"dense"`` (adjacency product), ``"sparse"``
        (CSR scatter) or ``"auto"`` (density heuristic).  The kernels
        are bit-identical in outcome; the knob trades memory/work
        profiles and is part of the runner's task identity.
    """

    def __init__(
        self,
        graph: Graph,
        tree: BFSTree,
        sources: Dict[NodeId, List[Any]],
        seeds: Sequence[int],
        level_classes: int = 3,
        budget: Optional[int] = None,
        decay_factory: DecayFactory = BatchDecay,
        trace: bool = False,
        reception: str = "auto",
    ):
        unknown = set(sources) - set(graph.nodes)
        if unknown:
            raise ConfigurationError(
                f"unknown source stations {sorted(unknown)!r}"
            )
        if not seeds:
            raise ConfigurationError("need at least one replication seed")
        self.radio = LockstepRadio(
            graph, tree, len(seeds), reception=reception
        )
        self.seeds = tuple(int(s) for s in seeds)
        self.slots = SlotStructure(
            decay_budget=(
                budget if budget is not None
                else decay_budget(graph.max_degree())
            ),
            level_classes=level_classes,
            with_acks=True,
        )
        B, n = len(self.seeds), self.radio.n
        self.shape = (B, n)

        # Global message ids 0..k-1 in (station, serial) order.
        self.message_origins: List[NodeId] = []
        self.message_payloads: List[Any] = []
        per_node: Dict[int, List[int]] = {}
        for node in sorted(sources, key=self.radio.index.__getitem__):
            for payload in sources[node]:
                gid = len(self.message_payloads)
                self.message_origins.append(node)
                self.message_payloads.append(payload)
                per_node.setdefault(self.radio.index[node], []).append(gid)
        self.total_messages = len(self.message_payloads)
        self.capacity = max(1, self.total_messages)

        # Buffer counters + payload ring.
        self.backlog = np.zeros(self.shape, dtype=np.int32)
        self.eligible = np.zeros(self.shape, dtype=np.int32)
        self.ring = np.full(
            (B, n, self.capacity), -1, dtype=np.int32
        )
        self.head = np.zeros(self.shape, dtype=np.int32)
        self.delivered_count = np.zeros(B, dtype=np.int64)
        self._delivered_log: List[Tuple[int, np.ndarray, np.ndarray]] = []
        root = self.radio.root_index
        for node_idx, gids in per_node.items():
            if node_idx == root:
                # §4: submission at the root delivers immediately.
                self.delivered_count += len(gids)
                self._delivered_log.append((
                    0,
                    np.arange(B, dtype=np.int64),
                    np.array(gids, dtype=np.int32),
                ))
                continue
            self.ring[:, node_idx, : len(gids)] = np.array(
                gids, dtype=np.int32
            )
            self.backlog[:, node_idx] = len(gids)

        # Ack bookkeeping: which child each station must ack this slot.
        self.pending_child = np.full(self.shape, -1, dtype=np.int64)
        self.pending_msg = np.full(self.shape, -1, dtype=np.int32)
        self._expect_ack: Optional[np.ndarray] = None

        self.decay = decay_factory(self.slots.decay_budget, self.shape)
        # Which stations may transmit data in a class-c slot (root never).
        classes = self.slots.level_classes
        not_root = np.ones(n, dtype=bool)
        not_root[root] = False
        self._class_mask = [
            (self.radio.levels % classes == c) & not_root
            for c in range(classes)
        ]
        # Per-phase schedule decoded once via the *scalar* SlotStructure,
        # so both engines share one source of schedule truth.
        self._schedule = [
            self.slots.decode(s) for s in range(self.slots.phase_length)
        ]

        # Per-replication coin streams (block-generated, row per data slot).
        self._coin_gens = [
            np_rng(seed, "vector", "decay") for seed in self.seeds
        ]
        self._coin_block: Optional[np.ndarray] = None
        self._coin_pos = 0

        self.slot = 0
        self.done = np.zeros(B, dtype=bool)
        self.completion_slots = np.full(B, -1, dtype=np.int64)
        self.trace: Optional[BatchTrace] = BatchTrace() if trace else None
        from repro import profiling

        self.profiler = profiling.current_profile()
        self._check_done()  # empty workloads complete at slot 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_replications(self) -> int:
        return len(self.seeds)

    @property
    def phase_length(self) -> int:
        return self.slots.phase_length

    def backlog_at(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Summed backlog over ``nodes`` per replication, shape ``(B,)``."""
        idx = [self.radio.index[node] for node in nodes]
        return self.backlog[:, idx].sum(axis=1)

    def delivered_ids(self) -> List[List[int]]:
        """Per replication: global message ids in root-arrival order."""
        out: List[List[int]] = [[] for _ in self.seeds]
        for _slot, b_idx, msgs in self._delivered_log:
            if msgs.ndim == 0 or b_idx.size != msgs.size:
                # Initial root submissions: same ids for every replication.
                for b in b_idx:
                    out[int(b)].extend(int(m) for m in np.atleast_1d(msgs))
                continue
            for b, m in zip(b_idx, msgs):
                out[int(b)].append(int(m))
        return out

    def buffered_ids(self, replication: int) -> List[int]:
        """All message ids currently buffered anywhere in ``replication``."""
        ids: List[int] = []
        for v in range(self.radio.n):
            count = int(self.backlog[replication, v])
            start = int(self.head[replication, v])
            for offset in range(count):
                ids.append(
                    int(self.ring[replication, v,
                                  (start + offset) % self.capacity])
                )
        return ids

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------

    def _next_coins(self) -> np.ndarray:
        if (
            self._coin_block is None
            or self._coin_pos >= self._coin_block.shape[1]
        ):
            # Refill in place, one contiguous (COIN_BLOCK, n) plane per
            # replication stream — same values in the same order as the
            # old stack-of-draws formulation, without the O(block·B·n)
            # copy (which dominated refills at n = 10⁴).
            if self._coin_block is None:
                self._coin_block = np.empty(
                    (len(self._coin_gens), COIN_BLOCK, self.radio.n),
                    dtype=np.float32,
                )
            for b, gen in enumerate(self._coin_gens):
                gen.random(out=self._coin_block[b], dtype=np.float32)
            self._coin_pos = 0
        row = self._coin_block[:, self._coin_pos, :]
        self._coin_pos += 1
        return row

    def _begin_phase(self) -> None:
        # §4.1: a message may start a Decay invocation only in a phase it
        # was already buffered at the start of.  At a phase boundary every
        # buffered message qualifies.
        np.copyto(self.eligible, self.backlog)
        self.decay.reset()

    def step(self) -> None:
        """Advance all replications by one slot."""
        profiler = self.profiler
        started_at = profiler.clock() if profiler is not None else 0.0
        within = self.slot % self.slots.phase_length
        if within == 0:
            self._begin_phase()
        info = self._schedule[within]
        if info.kind is SlotKind.DATA:
            self._data_slot(info.level_class, info.decay_step)
            self.slot += 1
            if profiler is not None:
                profiler.add("vector/data", profiler.clock() - started_at)
        else:
            self._ack_slot(info.level_class, info.decay_step)
            self.slot += 1
            self._check_done()
            if profiler is not None:
                profiler.add("vector/ack", profiler.clock() - started_at)
        if profiler is not None:
            profiler.bump("vector_slots")

    def _data_slot(self, level_class: int, decay_step: int) -> None:
        mask = self._class_mask[level_class]
        started: Optional[np.ndarray] = None
        if decay_step == 0:
            # First opportunity of the phase for this class: stations with
            # an eligible buffer head invoke Decay (§4.1).
            started = (self.eligible > 0) & mask[None, :]
            self.decay.start(started)
        coins = self._next_coins()
        tx = self.decay.transmit(coins, opportunity=mask)
        counts: Optional[np.ndarray] = None
        deliv = None
        if tx.any():
            counts, senders, unique = self.radio.resolve(tx)
            par = self.radio.parents
            # Transmitter u's head is delivered iff its parent hears
            # uniquely and the unique transmitter is u itself.
            deliv = (
                tx
                & unique[:, par]
                & (senders[:, par] == self.radio.ids[None, :])
            )
            b_idx, u_idx = np.nonzero(deliv)
            if b_idx.size:
                msgs = self.ring[b_idx, u_idx, self.head[b_idx, u_idx]]
                p_idx = par[u_idx]
                # At most one delivery per (replication, receiver):
                # uniqueness of reception makes these index sets disjoint.
                self.pending_child[b_idx, p_idx] = u_idx
                self.pending_msg[b_idx, p_idx] = msgs
                at_root = p_idx == self.radio.root_index
                root_b = b_idx[at_root]
                if root_b.size:
                    self.delivered_count[root_b] += 1
                    self._delivered_log.append(
                        (self.slot, root_b.copy(), msgs[at_root].copy())
                    )
                fb = b_idx[~at_root]
                if fb.size:
                    fp = p_idx[~at_root]
                    pos = (
                        self.head[fb, fp] + self.backlog[fb, fp]
                    ) % self.capacity
                    self.ring[fb, fp, pos] = msgs[~at_root]
                    self.backlog[fb, fp] += 1
        self._expect_ack = deliv
        if self.trace is not None:
            self.trace.record(SlotRecord(
                self.slot, "data", level_class, decay_step,
                tx.copy(),
                None if counts is None else counts.copy(),
                None if started is None else started.copy(),
            ))

    def _ack_slot(self, level_class: int, decay_step: int) -> None:
        expect = self._expect_ack
        self._expect_ack = None
        ack_tx = self.pending_child >= 0
        any_ack = ack_tx.any()
        if any_ack:
            _counts, senders, unique = self.radio.resolve(ack_tx)
            par = self.radio.parents
            # Child u hears its ack iff it receives uniquely, the unique
            # transmitter is its parent, and the parent's pending ack
            # designates u.
            acked = (
                unique
                & (senders == par.astype(np.float32)[None, :])
                & (
                    self.pending_child[:, par]
                    == np.arange(self.radio.n, dtype=np.int64)[None, :]
                )
            )
        else:
            acked = np.zeros(self.shape, dtype=bool)
        expected = (
            expect if expect is not None
            else np.zeros(self.shape, dtype=bool)
        )
        if not np.array_equal(acked, expected):
            # Theorem 3.1: in the failure-free model every designated
            # delivery is acknowledged in the paired ack slot.
            raise ProtocolError(
                "ack determinism violated in batch engine at slot "
                f"{self.slot}: a designated delivery went unacknowledged"
            )
        if any_ack:
            b_idx, u_idx = np.nonzero(acked)
            if b_idx.size:
                self.head[b_idx, u_idx] = (
                    self.head[b_idx, u_idx] + 1
                ) % self.capacity
                self.backlog[b_idx, u_idx] -= 1
                self.eligible[b_idx, u_idx] -= 1
                self.decay.kill(b_idx, u_idx)
            # Every pending ack fires exactly at its due slot.
            self.pending_child[:] = -1
            self.pending_msg[:] = -1
        if self.trace is not None:
            self.trace.record(SlotRecord(
                self.slot, "ack", level_class, decay_step,
                ack_tx.copy(), None, None,
            ))

    def _check_done(self) -> None:
        undone = ~self.done
        if not undone.any():
            return
        newly = (
            undone
            & (self.delivered_count >= self.total_messages)
            & (self.backlog.sum(axis=1, dtype=np.int64) == 0)
        )
        if newly.any():
            self.done |= newly
            self.completion_slots[newly] = self.slot

    def run_until_done(self, max_slots: Optional[int] = None) -> np.ndarray:
        """Run until every replication drains; returns completion slots.

        ``max_slots`` defaults to the same generous multiple of the
        Theorem 4.4 bound the scalar :func:`~repro.core.collection.
        run_collection` uses; stragglers past it raise
        :class:`~repro.errors.SimulationTimeout`.
        """
        if max_slots is None:
            bound = expected_collection_slots(
                self.total_messages,
                self.radio.tree.depth,
                self.radio.graph.max_degree(),
            )
            max_slots = max(10_000, int(20 * bound))
        while not self.done.all() and self.slot < max_slots:
            self.step()
        if not self.done.all():
            stragglers = int((~self.done).sum())
            raise SimulationTimeout(
                f"{stragglers}/{self.num_replications} replications not "
                f"drained within {max_slots} slots",
                slots_elapsed=self.slot,
            )
        return self.completion_slots.copy()


@dataclass
class BatchCollectionResult:
    """Outcome of one batched collection run."""

    completion_slots: np.ndarray  # (B,) slots until each replication drained
    phases: np.ndarray  # (B,) completed Decay phases (ceil)
    simulation: BatchCollection

    @property
    def num_replications(self) -> int:
        return int(self.completion_slots.shape[0])


def run_collection_batch(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seeds: Sequence[int],
    level_classes: int = 3,
    budget: Optional[int] = None,
    max_slots: Optional[int] = None,
    decay_factory: DecayFactory = BatchDecay,
    trace: bool = False,
    reception: str = "auto",
) -> BatchCollectionResult:
    """Run B replications of collection to completion in one batch.

    The vector-engine counterpart of the scalar
    :func:`~repro.core.collection.run_collection`, for all seeds of a
    grid cell at once.
    """
    simulation = BatchCollection(
        graph,
        tree,
        sources,
        seeds,
        level_classes=level_classes,
        budget=budget,
        decay_factory=decay_factory,
        trace=trace,
        reception=reception,
    )
    completion = simulation.run_until_done(max_slots)
    phase_length = simulation.slots.phase_length
    phases = -(-completion // phase_length)
    return BatchCollectionResult(
        completion_slots=completion,
        phases=phases,
        simulation=simulation,
    )
