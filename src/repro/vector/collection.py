"""Batched collection (§4): B lockstep replications as array updates.

This is the vector-engine implementation of the protocol in
:mod:`repro.core.collection`: every station runs Decay toward its BFS
parent on the multiplexed slot schedule (level classes mod 3, each data
slot followed by its deterministic ack slot), and the root's accepted
messages are the output.  One :class:`BatchCollection` advances B
replications of that protocol *simultaneously*:

* per-node buffers are ``(B, n)`` **counters** — ``backlog`` (queued
  messages) and ``eligible`` (messages buffered since before the current
  phase, the §4.1 "buffer non-empty at the beginning of a phase" rule);
  because buffers are FIFO and eligibility is monotone in queue position,
  counters capture the full sending dynamics;
* message *identity* rides in a bounded **payload ring** ``(B, n, k)``
  of global message ids with per-node head pointers, so conservation —
  every collected message originates exactly once — stays checkable;
* reception is the adjacency product of
  :class:`~repro.vector.engine.LockstepRadio`; acknowledgements are
  resolved physically on the paired ack slot and Theorem 3.1 (the ack
  always arrives, failure-free) is *asserted*, making ack determinism a
  built-in runtime invariant of the engine.

Active-set mask (``mask="on"``): the full-width loop touches all B·n
entries every slot even when almost every station is asleep.  The masked
loop instead derives, at each class's first opportunity of a phase, the
provably-awake (replication, station) pairs — exactly the stations the
scalar engine's idle min-heap would wake via
``SlotStructure.next_data_slot_for`` / ``TransportLane.next_active_slot``:
those with an eligible buffer head in the slot's level class — and
restricts the Decay coin draws, the reception scatter and the backlog
updates to that compact pair list.  Per-slot work then scales with the
awake population, not B·n, and a slot in which nobody is awake costs
O(B).

Randomness: replication ``b`` draws its Decay coins from the NumPy
stream ``np_rng(seeds[b], "vector", "decay")``.  The *full* loop
consumes exactly one ``(n,)`` coin row per data slot; the *masked* loop
consumes exactly one draw per awake pair of that replication.  In both
modes the stream position is a pure function of the replication's own
trajectory — never of batch size or batch position — which is what lets
the runner cache vector results per task and split one cell's
replications into per-worker sub-batches that stay bit-identical to the
unsharded batch.  The two mask modes are therefore *distributionally*
(not coin-flip) equivalent, and ``mask`` joins the task cache identity
exactly like ``engine``.

Validity: lockstep batching assumes the paper's failure-free model on a
fixed topology (no failure injection, no repair).  Fault experiments
stay on the scalar engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.collection import expected_collection_slots
from repro.core.slots import SlotKind, SlotStructure, decay_budget
from repro.errors import ConfigurationError, ProtocolError, SimulationTimeout
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.rng import np_rngs
from repro.vector.decay import BatchDecay
from repro.vector.engine import (
    MASK_MIN_NODES,
    BatchTrace,
    LockstepRadio,
    SlotRecord,
    validate_mask,
)

#: Coin rows generated per refill of the per-replication streams; bounds
#: the resident coin block to ``COIN_BLOCK × B × n`` float32.
COIN_BLOCK = 256

DecayFactory = Callable[[int, tuple], BatchDecay]

_EMPTY_PAIRS = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
)


class BatchCollection:
    """B lockstep replications of collection on one topology.

    Parameters
    ----------
    graph, tree:
        The shared topology and its BFS tree (all replications identical).
    sources:
        ``station -> [payload, ...]`` — the workload, injected at slot 0
        in every replication (grid cells share their workload; only the
        coins differ across replications).
    seeds:
        One root seed per replication; each seeds an independent
        NumPy coin stream.
    level_classes, budget:
        As in the scalar protocol: §2.2 multiplexing (3 in the paper)
        and the Decay budget (default ``2·ceil(log2 Δ)``).
    decay_factory:
        Constructor for the batched Decay implementation — the
        equivalence harness swaps in a deliberately broken variant to
        prove its own checks can fail.
    trace:
        Capture a :class:`~repro.vector.engine.BatchTrace` of every slot
        (dense copies: traced sub-runs only).
    reception:
        Reception kernel of the *full-width* loop: ``"dense"``
        (adjacency product), ``"sparse"`` (CSR scatter) or ``"auto"``
        (density heuristic).  The kernels are bit-identical in outcome;
        the knob trades memory/work profiles and is part of the runner's
        task identity.  The masked loop always scatters over the CSR
        arrays (there is no dense formulation of O(awake) work).
    backend:
        Array-kernel backend (``"numpy"``/``"numba"``/``"cupy"``/
        ``"auto"``) for the CSR scatter and the masked Decay step; see
        :mod:`repro.vector.backend`.  Backends are bit-identical.
    mask:
        Active-set mask mode: ``"on"`` (O(awake) masked loop), ``"off"``
        (full-width loop) or ``"auto"`` (on at n ≥ 1024).  The modes are
        distributionally, not coin-flip, equivalent.
    """

    def __init__(
        self,
        graph: Graph,
        tree: BFSTree,
        sources: Dict[NodeId, List[Any]],
        seeds: Sequence[int],
        level_classes: int = 3,
        budget: Optional[int] = None,
        decay_factory: DecayFactory = BatchDecay,
        trace: bool = False,
        reception: str = "auto",
        backend: str = "auto",
        mask: str = "auto",
    ):
        unknown = set(sources) - set(graph.nodes)
        if unknown:
            raise ConfigurationError(
                f"unknown source stations {sorted(unknown)!r}"
            )
        if not seeds:
            raise ConfigurationError("need at least one replication seed")
        self.radio = LockstepRadio(
            graph, tree, len(seeds), reception=reception, backend=backend
        )
        self.seeds = tuple(int(s) for s in seeds)
        validate_mask(mask)
        self.mask_requested = mask
        self.masked = (
            mask == "on"
            or (mask == "auto" and self.radio.n >= MASK_MIN_NODES)
        )
        self.slots = SlotStructure(
            decay_budget=(
                budget if budget is not None
                else decay_budget(graph.max_degree())
            ),
            level_classes=level_classes,
            with_acks=True,
        )
        B, n = len(self.seeds), self.radio.n
        self.shape = (B, n)

        # Global message ids 0..k-1 in (station, serial) order.
        self.message_origins: List[NodeId] = []
        self.message_payloads: List[Any] = []
        per_node: Dict[int, List[int]] = {}
        for node in sorted(sources, key=self.radio.index.__getitem__):
            for payload in sources[node]:
                gid = len(self.message_payloads)
                self.message_origins.append(node)
                self.message_payloads.append(payload)
                per_node.setdefault(self.radio.index[node], []).append(gid)
        self.total_messages = len(self.message_payloads)
        self.capacity = max(1, self.total_messages)

        # Buffer counters + payload ring.
        self.backlog = np.zeros(self.shape, dtype=np.int32)
        self.eligible = np.zeros(self.shape, dtype=np.int32)
        self.ring = np.full(
            (B, n, self.capacity), -1, dtype=np.int32
        )
        self.head = np.zeros(self.shape, dtype=np.int32)
        self.delivered_count = np.zeros(B, dtype=np.int64)
        self._delivered_log: List[Tuple[int, np.ndarray, np.ndarray]] = []
        root = self.radio.root_index
        for node_idx, gids in per_node.items():
            if node_idx == root:
                # §4: submission at the root delivers immediately.
                self.delivered_count += len(gids)
                self._delivered_log.append((
                    0,
                    np.arange(B, dtype=np.int64),
                    np.array(gids, dtype=np.int32),
                ))
                continue
            self.ring[:, node_idx, : len(gids)] = np.array(
                gids, dtype=np.int32
            )
            self.backlog[:, node_idx] = len(gids)

        # Ack bookkeeping: which child each station must ack this slot.
        self.pending_child = np.full(self.shape, -1, dtype=np.int64)
        self.pending_msg = np.full(self.shape, -1, dtype=np.int32)
        self._expect_ack: Optional[np.ndarray] = None

        self.decay = decay_factory(self.slots.decay_budget, self.shape)
        # Which stations may transmit data in a class-c slot (root never).
        classes = self.slots.level_classes
        not_root = np.ones(n, dtype=bool)
        not_root[root] = False
        self._class_mask = [
            (self.radio.levels % classes == c) & not_root
            for c in range(classes)
        ]
        # Per-phase schedule decoded once via the *scalar* SlotStructure,
        # so both engines share one source of schedule truth.
        self._schedule = [
            self.slots.decode(s) for s in range(self.slots.phase_length)
        ]

        # Per-replication coin streams (block-generated, row per data slot).
        self._coin_gens = np_rngs(self.seeds, "vector", "decay")
        self._coin_block: Optional[np.ndarray] = None
        self._coin_pos = 0

        # Active-set state: compact awake pair lists per level class,
        # rebuilt at each class's first opportunity of a phase; flat
        # persistent scatter buffers touched (and re-zeroed) only at the
        # receiver entries adjacent to a transmitter; an incrementally
        # maintained per-replication backlog total so the done check
        # never re-sums the (B, n) plane.
        self._active: List[Tuple[np.ndarray, np.ndarray]] = [
            _EMPTY_PAIRS for _ in range(classes)
        ]
        self._hits_flat = np.zeros(B * n, dtype=np.int32)
        self._senders_flat = np.zeros(B * n, dtype=np.int64)
        self._txflag_flat = np.zeros(B * n, dtype=bool)
        self._backlog_total = self.backlog.sum(axis=1, dtype=np.int64)
        self._expect_pairs: Tuple[np.ndarray, np.ndarray] = _EMPTY_PAIRS
        self._pending_parents: Tuple[np.ndarray, np.ndarray] = _EMPTY_PAIRS
        #: Awake-set occupancy counters (masked mode): cumulative awake
        #: pairs over data slots — ``active_pairs / (data_slots · B · n)``
        #: is the mean awake fraction the benchmarks report.
        self.mask_stats = {"active_pairs": 0, "data_slots": 0}

        self.slot = 0
        self.done = np.zeros(B, dtype=bool)
        self.completion_slots = np.full(B, -1, dtype=np.int64)
        self.trace: Optional[BatchTrace] = BatchTrace() if trace else None
        from repro import profiling

        self.profiler = profiling.current_profile()
        self._check_done()  # empty workloads complete at slot 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_replications(self) -> int:
        return len(self.seeds)

    @property
    def phase_length(self) -> int:
        return self.slots.phase_length

    @property
    def awake_occupancy(self) -> float:
        """Mean awake fraction over all data slots so far (masked mode)."""
        B, n = self.shape
        slots = self.mask_stats["data_slots"]
        if not slots:
            return float("nan")
        return self.mask_stats["active_pairs"] / (slots * B * n)

    def backlog_at(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Summed backlog over ``nodes`` per replication, shape ``(B,)``."""
        idx = [self.radio.index[node] for node in nodes]
        return self.backlog[:, idx].sum(axis=1)

    def delivered_ids(self) -> List[List[int]]:
        """Per replication: global message ids in root-arrival order."""
        out: List[List[int]] = [[] for _ in self.seeds]
        for _slot, b_idx, msgs in self._delivered_log:
            if msgs.ndim == 0 or b_idx.size != msgs.size:
                # Initial root submissions: same ids for every replication.
                for b in b_idx:
                    out[int(b)].extend(int(m) for m in np.atleast_1d(msgs))
                continue
            for b, m in zip(b_idx, msgs):
                out[int(b)].append(int(m))
        return out

    def delivered_slots(self) -> List[List[Tuple[int, int]]]:
        """Per replication: ``(slot, gid)`` pairs in root-arrival order."""
        out: List[List[Tuple[int, int]]] = [[] for _ in self.seeds]
        for slot, b_idx, msgs in self._delivered_log:
            if msgs.ndim == 0 or b_idx.size != msgs.size:
                for b in b_idx:
                    out[int(b)].extend(
                        (int(slot), int(m)) for m in np.atleast_1d(msgs)
                    )
                continue
            for b, m in zip(b_idx, msgs):
                out[int(b)].append((int(slot), int(m)))
        return out

    def buffered_ids(self, replication: int) -> List[int]:
        """All message ids currently buffered anywhere in ``replication``."""
        ids: List[int] = []
        for v in range(self.radio.n):
            count = int(self.backlog[replication, v])
            start = int(self.head[replication, v])
            for offset in range(count):
                ids.append(
                    int(self.ring[replication, v,
                                  (start + offset) % self.capacity])
                )
        return ids

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------

    def _next_coins(self) -> np.ndarray:
        if (
            self._coin_block is None
            or self._coin_pos >= self._coin_block.shape[1]
        ):
            # Refill in place, one contiguous (COIN_BLOCK, n) plane per
            # replication stream — same values in the same order as the
            # old stack-of-draws formulation, without the O(block·B·n)
            # copy (which dominated refills at n = 10⁴).
            if self._coin_block is None:
                self._coin_block = np.empty(
                    (len(self._coin_gens), COIN_BLOCK, self.radio.n),
                    dtype=np.float32,
                )
            for b, gen in enumerate(self._coin_gens):
                gen.random(out=self._coin_block[b], dtype=np.float32)
            self._coin_pos = 0
        row = self._coin_block[:, self._coin_pos, :]
        self._coin_pos += 1
        return row

    def _pair_coins(self, rows: np.ndarray) -> np.ndarray:
        """One uniform draw per awake pair, per-replication streams.

        ``rows`` is b-major (``np.nonzero`` row order), so each
        replication's draws form one contiguous run; replication ``b``
        consumes exactly ``count_b`` values — a pure function of its own
        trajectory, independent of which other replications share the
        batch (the sharding bit-identity contract).
        """
        counts = np.bincount(rows, minlength=len(self.seeds))
        out = np.empty(rows.size, dtype=np.float32)
        pos = 0
        for b in np.nonzero(counts)[0]:
            count = int(counts[b])
            out[pos:pos + count] = self._coin_gens[b].random(
                count, dtype=np.float32
            )
            pos += count
        return out

    def _begin_phase(self) -> None:
        # §4.1: a message may start a Decay invocation only in a phase it
        # was already buffered at the start of.  At a phase boundary every
        # buffered message qualifies.
        np.copyto(self.eligible, self.backlog)
        self.decay.reset()

    def step(self) -> None:
        """Advance all replications by one slot."""
        profiler = self.profiler
        within = self.slot % self.slots.phase_length
        if within == 0:
            self._begin_phase()
        info = self._schedule[within]
        if info.kind is SlotKind.DATA:
            if self.masked:
                self._data_slot_masked(info.level_class, info.decay_step)
            else:
                self._data_slot(info.level_class, info.decay_step)
            self.slot += 1
        else:
            if self.masked:
                self._ack_slot_masked(info.level_class, info.decay_step)
            else:
                self._ack_slot(info.level_class, info.decay_step)
            self.slot += 1
            self._check_done()
        if profiler is not None:
            profiler.bump("vector_slots")

    # -------------------------- full-width loop -----------------------

    def _data_slot(self, level_class: int, decay_step: int) -> None:
        profiler = self.profiler
        t0 = profiler.clock() if profiler is not None else 0.0
        mask = self._class_mask[level_class]
        started: Optional[np.ndarray] = None
        if decay_step == 0:
            # First opportunity of the phase for this class: stations with
            # an eligible buffer head invoke Decay (§4.1).
            started = (self.eligible > 0) & mask[None, :]
            self.decay.start(started)
        coins = self._next_coins()
        tx = self.decay.transmit(coins, opportunity=mask)
        if profiler is not None:
            t1 = profiler.clock()
            profiler.add("vector/decay", t1 - t0)
        counts: Optional[np.ndarray] = None
        deliv = None
        if tx.any():
            counts, senders, unique = self.radio.resolve(tx)
            if profiler is not None:
                t2 = profiler.clock()
                profiler.add("vector/reception", t2 - t1)
                t1 = t2
            par = self.radio.parents
            # Transmitter u's head is delivered iff its parent hears
            # uniquely and the unique transmitter is u itself.
            deliv = (
                tx
                & unique[:, par]
                & (senders[:, par] == self.radio.ids[None, :])
            )
            b_idx, u_idx = np.nonzero(deliv)
            if b_idx.size:
                msgs = self.ring[b_idx, u_idx, self.head[b_idx, u_idx]]
                p_idx = par[u_idx]
                # At most one delivery per (replication, receiver):
                # uniqueness of reception makes these index sets disjoint.
                self.pending_child[b_idx, p_idx] = u_idx
                self.pending_msg[b_idx, p_idx] = msgs
                at_root = p_idx == self.radio.root_index
                root_b = b_idx[at_root]
                if root_b.size:
                    self.delivered_count[root_b] += 1
                    self._delivered_log.append(
                        (self.slot, root_b.copy(), msgs[at_root].copy())
                    )
                fb = b_idx[~at_root]
                if fb.size:
                    fp = p_idx[~at_root]
                    pos = (
                        self.head[fb, fp] + self.backlog[fb, fp]
                    ) % self.capacity
                    self.ring[fb, fp, pos] = msgs[~at_root]
                    self.backlog[fb, fp] += 1
        self._expect_ack = deliv
        if profiler is not None:
            profiler.add("vector/collection", profiler.clock() - t1)
        if self.trace is not None:
            self.trace.record(SlotRecord(
                self.slot, "data", level_class, decay_step,
                tx.copy(),
                None if counts is None else counts.copy(),
                None if started is None else started.copy(),
            ))

    def _ack_slot(self, level_class: int, decay_step: int) -> None:
        profiler = self.profiler
        t0 = profiler.clock() if profiler is not None else 0.0
        expect = self._expect_ack
        self._expect_ack = None
        ack_tx = self.pending_child >= 0
        any_ack = ack_tx.any()
        if any_ack:
            _counts, senders, unique = self.radio.resolve(ack_tx)
            if profiler is not None:
                t1 = profiler.clock()
                profiler.add("vector/reception", t1 - t0)
                t0 = t1
            par = self.radio.parents
            # Child u hears its ack iff it receives uniquely, the unique
            # transmitter is its parent, and the parent's pending ack
            # designates u.
            acked = (
                unique
                & (senders == par.astype(np.float32)[None, :])
                & (
                    self.pending_child[:, par]
                    == np.arange(self.radio.n, dtype=np.int64)[None, :]
                )
            )
        else:
            acked = np.zeros(self.shape, dtype=bool)
        expected = (
            expect if expect is not None
            else np.zeros(self.shape, dtype=bool)
        )
        if not np.array_equal(acked, expected):
            # Theorem 3.1: in the failure-free model every designated
            # delivery is acknowledged in the paired ack slot.
            raise ProtocolError(
                "ack determinism violated in batch engine at slot "
                f"{self.slot}: a designated delivery went unacknowledged"
            )
        if any_ack:
            b_idx, u_idx = np.nonzero(acked)
            if b_idx.size:
                self.head[b_idx, u_idx] = (
                    self.head[b_idx, u_idx] + 1
                ) % self.capacity
                self.backlog[b_idx, u_idx] -= 1
                self.eligible[b_idx, u_idx] -= 1
                self.decay.kill(b_idx, u_idx)
            # Every pending ack fires exactly at its due slot.
            self.pending_child[:] = -1
            self.pending_msg[:] = -1
        if profiler is not None:
            profiler.add("vector/collection", profiler.clock() - t0)
        if self.trace is not None:
            self.trace.record(SlotRecord(
                self.slot, "ack", level_class, decay_step,
                ack_tx.copy(), None, None,
            ))

    # -------------------------- active-set loop -----------------------

    def _data_slot_masked(self, level_class: int, decay_step: int) -> None:
        profiler = self.profiler
        t0 = profiler.clock() if profiler is not None else 0.0
        radio = self.radio
        n = radio.n
        started_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if decay_step == 0:
            # Rebuild this class's awake set: the stations the scalar
            # min-heap would wake at this data slot — eligible buffer
            # head, level class owns the slot.
            mask = self._class_mask[level_class]
            rows, cols = np.nonzero((self.eligible > 0) & mask[None, :])
            self._active[level_class] = (rows, cols)
            self.decay.start_pairs(rows, cols)
            started_pairs = (rows, cols)
        rows, cols = self._active[level_class]
        self.mask_stats["active_pairs"] += int(rows.size)
        self.mask_stats["data_slots"] += 1
        tb = tv = db = dv = _EMPTY_PAIRS[0]
        if rows.size:
            coins = self._pair_coins(rows)
            tx_pair = self.decay.transmit_pairs(
                rows, cols, coins, kernel=radio.backend.decay_pairs
            )
            tb, tv = rows[tx_pair], cols[tx_pair]
        if profiler is not None:
            t1 = profiler.clock()
            profiler.add("vector/decay", t1 - t0)
            profiler.bump("vector_awake_pairs", int(rows.size))
        else:
            t1 = 0.0
        if tb.size:
            touched = radio.backend.scatter_into(
                tb, tv, radio.indptr, radio.indices,
                self._hits_flat, self._senders_flat, n,
            )
            pair_flat = tb * n + tv
            self._txflag_flat[pair_flat] = True
            parent = radio.parents[tv]
            pf = tb * n + parent
            # Transmitter u's head is delivered iff its parent hears
            # uniquely (one transmitting neighbor, itself silent) and
            # that neighbor is u.
            deliv = (
                (self._hits_flat[pf] == 1)
                & (self._senders_flat[pf] == tv)
                & ~self._txflag_flat[pf]
            )
            if profiler is not None:
                t2 = profiler.clock()
                profiler.add("vector/reception", t2 - t1)
                t1 = t2
            db, dv = tb[deliv], tv[deliv]
            if db.size:
                msgs = self.ring[db, dv, self.head[db, dv]]
                dp = parent[deliv]
                self.pending_child[db, dp] = dv
                self.pending_msg[db, dp] = msgs
                at_root = dp == radio.root_index
                root_b = db[at_root]
                if root_b.size:
                    self.delivered_count[root_b] += 1
                    self._delivered_log.append(
                        (self.slot, root_b.copy(), msgs[at_root].copy())
                    )
                fb = db[~at_root]
                if fb.size:
                    fp = dp[~at_root]
                    pos = (
                        self.head[fb, fp] + self.backlog[fb, fp]
                    ) % self.capacity
                    self.ring[fb, fp, pos] = msgs[~at_root]
                    self.backlog[fb, fp] += 1
                    np.add.at(self._backlog_total, fb, 1)
                self._pending_parents = (db, dp)
            else:
                self._pending_parents = _EMPTY_PAIRS
            # Restore the scatter buffers (touched entries only).
            self._hits_flat[touched] = 0
            self._senders_flat[touched] = 0
            self._txflag_flat[pair_flat] = False
        else:
            self._pending_parents = _EMPTY_PAIRS
        self._expect_pairs = (db, dv)
        if profiler is not None:
            profiler.add("vector/collection", profiler.clock() - t1)
        if self.trace is not None:
            tx_dense = np.zeros(self.shape, dtype=bool)
            tx_dense[tb, tv] = True
            counts = (
                self.radio.resolve(tx_dense)[0].copy() if tb.size else None
            )
            started_dense: Optional[np.ndarray] = None
            if started_pairs is not None:
                started_dense = np.zeros(self.shape, dtype=bool)
                started_dense[started_pairs] = True
            self.trace.record(SlotRecord(
                self.slot, "data", level_class, decay_step,
                tx_dense, counts, started_dense,
            ))

    def _ack_slot_masked(self, level_class: int, decay_step: int) -> None:
        profiler = self.profiler
        t0 = profiler.clock() if profiler is not None else 0.0
        radio = self.radio
        n = radio.n
        eb, ev = self._expect_pairs
        pb, pp = self._pending_parents
        self._expect_pairs = _EMPTY_PAIRS
        self._pending_parents = _EMPTY_PAIRS
        if pb.size:
            touched = radio.backend.scatter_into(
                pb, pp, radio.indptr, radio.indices,
                self._hits_flat, self._senders_flat, n,
            )
            pair_flat = pb * n + pp
            self._txflag_flat[pair_flat] = True
            cf = eb * n + ev
            # Child u hears its ack iff it receives uniquely, the unique
            # transmitter is its parent, and the parent's pending ack
            # designates u (expected children never transmit here:
            # a delivering child's parent was silent in the data slot).
            acked = (
                (self._hits_flat[cf] == 1)
                & (self._senders_flat[cf] == radio.parents[ev])
                & ~self._txflag_flat[cf]
                & (self.pending_child[eb, radio.parents[ev]] == ev)
            )
            if not acked.all():
                # Theorem 3.1: in the failure-free model every designated
                # delivery is acknowledged in the paired ack slot.  (No
                # station outside the expected set can be acked: acks are
                # designated to the child the parent just heard.)
                raise ProtocolError(
                    "ack determinism violated in batch engine at slot "
                    f"{self.slot}: a designated delivery went "
                    "unacknowledged"
                )
            self.head[eb, ev] = (self.head[eb, ev] + 1) % self.capacity
            self.backlog[eb, ev] -= 1
            self.eligible[eb, ev] -= 1
            self.decay.kill(eb, ev)
            np.add.at(self._backlog_total, eb, -1)
            # Every pending ack fires exactly at its due slot.
            self.pending_child[pb, pp] = -1
            self.pending_msg[pb, pp] = -1
            self._hits_flat[touched] = 0
            self._senders_flat[touched] = 0
            self._txflag_flat[pair_flat] = False
        if profiler is not None:
            profiler.add("vector/collection", profiler.clock() - t0)
        if self.trace is not None:
            ack_dense = np.zeros(self.shape, dtype=bool)
            ack_dense[pb, pp] = True
            self.trace.record(SlotRecord(
                self.slot, "ack", level_class, decay_step,
                ack_dense, None, None,
            ))

    # ------------------------------------------------------------------

    def _check_done(self) -> None:
        undone = ~self.done
        if not undone.any():
            return
        backlog_total = (
            self._backlog_total
            if self.masked
            else self.backlog.sum(axis=1, dtype=np.int64)
        )
        newly = (
            undone
            & (self.delivered_count >= self.total_messages)
            & (backlog_total == 0)
        )
        if newly.any():
            self.done |= newly
            self.completion_slots[newly] = self.slot

    def run_until_done(self, max_slots: Optional[int] = None) -> np.ndarray:
        """Run until every replication drains; returns completion slots.

        ``max_slots`` defaults to the same generous multiple of the
        Theorem 4.4 bound the scalar :func:`~repro.core.collection.
        run_collection` uses; stragglers past it raise
        :class:`~repro.errors.SimulationTimeout`.
        """
        if max_slots is None:
            bound = expected_collection_slots(
                self.total_messages,
                self.radio.tree.depth,
                self.radio.graph.max_degree(),
            )
            max_slots = max(10_000, int(20 * bound))
        while not self.done.all() and self.slot < max_slots:
            self.step()
        if not self.done.all():
            stragglers = int((~self.done).sum())
            raise SimulationTimeout(
                f"{stragglers}/{self.num_replications} replications not "
                f"drained within {max_slots} slots",
                slots_elapsed=self.slot,
            )
        return self.completion_slots.copy()


@dataclass
class BatchCollectionResult:
    """Outcome of one batched collection run."""

    completion_slots: np.ndarray  # (B,) slots until each replication drained
    phases: np.ndarray  # (B,) completed Decay phases (ceil)
    simulation: BatchCollection

    @property
    def num_replications(self) -> int:
        return int(self.completion_slots.shape[0])


def run_collection_batch(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seeds: Sequence[int],
    level_classes: int = 3,
    budget: Optional[int] = None,
    max_slots: Optional[int] = None,
    decay_factory: DecayFactory = BatchDecay,
    trace: bool = False,
    reception: str = "auto",
    backend: str = "auto",
    mask: str = "auto",
) -> BatchCollectionResult:
    """Run B replications of collection to completion in one batch.

    The vector-engine counterpart of the scalar
    :func:`~repro.core.collection.run_collection`, for all seeds of a
    grid cell at once.
    """
    simulation = BatchCollection(
        graph,
        tree,
        sources,
        seeds,
        level_classes=level_classes,
        budget=budget,
        decay_factory=decay_factory,
        trace=trace,
        reception=reception,
        backend=backend,
        mask=mask,
    )
    completion = simulation.run_until_done(max_slots)
    phase_length = simulation.slots.phase_length
    phases = -(-completion // phase_length)
    return BatchCollectionResult(
        completion_slots=completion,
        phases=phases,
        simulation=simulation,
    )
