"""The lockstep batch radio: B replications resolved by one reception kernel.

The scalar engine (:mod:`repro.radio.network`) resolves each slot by
iterating neighbors in Python.  For a *batch* of B independent
replications running the same protocol on one topology, the paper's
reception rule — a station receives iff **exactly one** neighbor
transmits (§1.1) — admits two array formulations:

**Dense** (adjacency product): with ``tx`` the (B, n) transmit mask and
``A`` the (n, n) boolean adjacency matrix,

    counts  = tx @ A
    unique  = (counts == 1) & ~tx

and the *identity* of the unique transmitter falls out of a second
product with the node-index vector (valid exactly where ``counts == 1``):

    sender  = (tx * ids) @ A

**Sparse** (CSR scatter): the adjacency is stored as ``indptr``/
``indices`` arrays (compressed sparse rows, one run of neighbor indices
per node); per slot, the transmitting (replication, station) pairs are
enumerated, each transmitter's neighbor run is gathered from ``indices``,
and per-receiver hit counts / sender-index sums are accumulated with
``np.bincount`` scatters.  Work is O(transmitters · degree) per slot and
memory is O(edges) — never O(n²) — which is what makes n ≥ 10⁴ runs
feasible (the dense kernel needs a 400 MB float32 adjacency at n = 10⁴
and O(B·n²) work per slot regardless of how few stations transmit).

Both kernels compute *identical* hit counts and sender sums (integer
arithmetic below 2²⁴, exact in float32); ``reception="auto"`` picks by
an edge-density heuristic and the choice is part of every task's cache
identity (see :class:`~repro.runner.task.TaskSpec`).

:class:`LockstepRadio` packages the topology-side state (CSR arrays,
optional dense adjacency, node indexing, per-node BFS parents/levels)
and the per-slot resolution; protocol dynamics live in
:mod:`repro.vector.collection`.

Engine selection
----------------
The runner exposes both engines behind one interface: every
:class:`~repro.runner.task.TaskSpec` carries ``engine="scalar"`` (the
pure-Python slot loop, the reference implementation) or
``engine="vector"`` (this subsystem), the result-cache key covers the
choice, and experiments opt in by registering a batch task function.
Vector runs are *distributionally* equivalent to scalar runs — same
protocol, same exact invariants, statistically identical outcomes —
but never coin-flip-identical, because NumPy streams cannot be
bit-matched to ``random.Random``.  The equivalence harness
(:mod:`repro.vector.check`) makes that contract testable.  The two
*reception kernels*, by contrast, are bit-identical: swapping
``dense`` for ``sparse`` changes wall-clock time only, never a single
hit count (``tests/test_vector.py`` asserts exact equality).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.vector.backend import (  # noqa: F401  (re-exported knob API)
    BACKENDS,
    KernelBackend,
    available_backends,
    resolve_backend,
    validate_backend,
)

#: The engines a task may select.  ``scalar`` is the reference
#: slot-by-slot interpreter; ``vector`` is the NumPy lockstep batch.
ENGINES: Tuple[str, ...] = ("scalar", "vector")

#: Reception kernels of the vector engine.  ``auto`` resolves to dense
#: or sparse per topology via the density heuristic below.
RECEPTION_MODES: Tuple[str, ...] = ("dense", "sparse", "auto")

#: Active-set mask modes of the lockstep loop.  ``on`` restricts the
#: per-slot work (coin draws, reception scatter, backlog updates) to the
#: provably-awake (replication, station) pairs; ``off`` is the original
#: full-width loop; ``auto`` resolves by size (mask on at large n, where
#: the awake fraction is what makes n = 10⁵ reachable).  The two modes
#: are *distributionally* — not coin-flip — equivalent: the masked loop
#: draws coins only for awake pairs, so the knob joins task identity
#: exactly like ``engine=``.
MASK_MODES: Tuple[str, ...] = ("on", "off", "auto")

#: ``mask="auto"`` switches the active-set loop on at this size — the
#: same threshold at which reception goes sparse; below it the dense
#: full-width ops are already cheap and keep trajectories stable.
MASK_MIN_NODES = 1024

#: ``auto`` heuristic: the dense BLAS product wins on small, dense cells
#: (its per-element cost is tiny and the O(n²) term is bounded); the CSR
#: scatter wins once the adjacency no longer fits comfortably in cache
#: or most of it is zeros.  Crossover measured in
#: ``benchmarks/bench_scale.py`` (see docs/performance.md).
SPARSE_MIN_NODES = 1024
SPARSE_MAX_DENSITY = 0.05


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def validate_reception(reception: str) -> str:
    if reception not in RECEPTION_MODES:
        raise ConfigurationError(
            f"unknown reception kernel {reception!r}; expected one of "
            f"{RECEPTION_MODES}"
        )
    return reception


def validate_mask(mask: str) -> str:
    if mask not in MASK_MODES:
        raise ConfigurationError(
            f"unknown active-set mask mode {mask!r}; expected one of "
            f"{MASK_MODES}"
        )
    return mask


class LockstepRadio:
    """Topology-side state for B lockstep replications on one graph.

    Nodes are re-indexed ``0..n-1`` in the sorted order of
    ``graph.nodes`` (the same order every scalar component iterates in);
    all batch state elsewhere is indexed by these positions.

    ``reception`` selects the slot-resolution kernel: ``"dense"`` (the
    (n, n) adjacency product), ``"sparse"`` (CSR scatter, O(edges)
    memory) or ``"auto"`` (density heuristic).  The dense matrices are
    only materialized when the dense kernel is selected — at large n
    they are the dominant memory cost — or lazily on first access to
    :attr:`adjacency` (used by the trace-driven invariant checks, which
    only ever run on small cells).
    """

    def __init__(
        self,
        graph: Graph,
        tree: BFSTree,
        replications: int,
        reception: str = "auto",
        backend: str = "auto",
    ):
        if replications < 1:
            raise ConfigurationError(
                f"need at least one replication, got {replications}"
            )
        validate_reception(reception)
        # Resolved once per radio: the kernels behind the CSR scatter and
        # (via BatchDecay) the masked Decay step.  Bit-identical across
        # backends; the requested knob still joins task identity.
        self.backend: KernelBackend = resolve_backend(backend)
        self.graph = graph
        self.tree = tree
        self.num_replications = replications
        self.nodes: Tuple[NodeId, ...] = graph.nodes
        self.n = len(self.nodes)
        self.index: Dict[NodeId, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        # CSR adjacency: indices[indptr[v]:indptr[v+1]] are v's neighbor
        # positions.  Built unconditionally — it is O(edges) and both the
        # sparse kernel and the lazy dense build derive from it.
        degrees = np.fromiter(
            (graph.degree(node) for node in self.nodes),
            dtype=np.int64,
            count=self.n,
        )
        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=self.indptr[1:])
        self.indices = np.fromiter(
            (
                self.index[v]
                for u in self.nodes
                for v in graph.neighbors(u)
            ),
            dtype=np.int64,
            count=int(self.indptr[-1]),
        )
        nnz = int(self.indices.size)
        density = nnz / max(1, self.n * self.n)
        self.requested_reception = reception
        if reception == "auto":
            reception = (
                "sparse"
                if self.n >= SPARSE_MIN_NODES or density <= SPARSE_MAX_DENSITY
                else "dense"
            )
        self.reception = reception
        self._adjacency: Optional[np.ndarray] = None
        self._adjacency_f: Optional[np.ndarray] = None
        if reception == "dense":
            self._build_dense()
        self.ids = np.arange(self.n, dtype=np.float32)
        self.root_index = self.index[tree.root]
        self.levels = np.array(
            [tree.level[node] for node in self.nodes], dtype=np.int64
        )
        # parent[root] = root (the root never transmits upward, so the
        # self-reference is never consulted as a real hop).
        self.parents = np.array(
            [
                self.index[tree.parent[node]]
                if tree.parent.get(node) is not None
                else self.index[node]
                for node in self.nodes
            ],
            dtype=np.int64,
        )

    def _build_dense(self) -> None:
        adjacency = np.zeros((self.n, self.n), dtype=bool)
        for v in range(self.n):
            adjacency[v, self.indices[self.indptr[v]:self.indptr[v + 1]]] = (
                True
            )
        self._adjacency = adjacency
        # float32 mirror for the BLAS-backed reception product; counts and
        # index sums stay far below 2^24, so float32 arithmetic is exact.
        self._adjacency_f = adjacency.astype(np.float32)

    @property
    def adjacency(self) -> np.ndarray:
        """The dense (n, n) boolean adjacency (built lazily if sparse)."""
        if self._adjacency is None:
            self._build_dense()
        assert self._adjacency is not None
        return self._adjacency

    def resolve(
        self, tx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve one slot: ``(counts, senders, unique)``.

        ``counts[b, v]`` — transmitting neighbors of v; ``senders[b, v]``
        — sum of their indices (the transmitter's index exactly where
        ``counts == 1``); ``unique[b, v]`` — v hears a message: exactly
        one neighbor transmitted and v itself was listening.

        The two kernels return bit-identical values (float32, exact
        integer arithmetic); only the work/memory profile differs.
        """
        if self.reception == "dense":
            return self._resolve_dense(tx)
        return self._resolve_sparse(tx)

    def _resolve_dense(
        self, tx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._adjacency_f is None:
            self._build_dense()
        assert self._adjacency_f is not None
        tx_f = tx.astype(np.float32)
        counts = tx_f @ self._adjacency_f
        senders = (tx_f * self.ids) @ self._adjacency_f
        unique = (counts == 1.0) & ~tx
        return counts, senders, unique

    def _resolve_sparse(
        self, tx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        B, n = tx.shape
        b_idx, u_idx = np.nonzero(tx)
        if b_idx.size:
            # Gather every transmitter's neighbor run from the CSR
            # arrays and scatter hit counts / sender-index sums — the
            # kernel (bincount formulation or a compiled loop) comes
            # from the resolved array backend.
            counts, senders = self.backend.csr_counts(
                b_idx, u_idx, self.indptr, self.indices, B, n
            )
        else:
            counts = np.zeros((B, n), dtype=np.float32)
            senders = np.zeros((B, n), dtype=np.float32)
        unique = (counts == 1.0) & ~tx
        return counts, senders, unique


class SlotRecord:
    """One traced slot of a batch run (small cells only — dense copies)."""

    __slots__ = (
        "slot", "kind", "level_class", "decay_step",
        "tx", "counts", "started",
    )

    def __init__(
        self,
        slot: int,
        kind: str,
        level_class: int,
        decay_step: int,
        tx: np.ndarray,
        counts: Optional[np.ndarray],
        started: Optional[np.ndarray],
    ):
        self.slot = slot
        self.kind = kind  # "data" | "ack"
        self.level_class = level_class
        self.decay_step = decay_step
        self.tx = tx
        self.counts = counts
        self.started = started  # session-start mask (data step 0 only)


class BatchTrace:
    """Per-slot event capture for the equivalence harness.

    Dense (B, n) copies per slot: meant for the short traced sub-runs the
    invariant checks operate on, not for production sweeps.
    """

    def __init__(self) -> None:
        self.slots: List[SlotRecord] = []

    def record(self, record: SlotRecord) -> None:
        self.slots.append(record)

    def data_slots(self) -> List[SlotRecord]:
        return [r for r in self.slots if r.kind == "data"]

    def ack_slots(self) -> List[SlotRecord]:
        return [r for r in self.slots if r.kind == "ack"]
