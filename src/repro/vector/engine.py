"""The lockstep batch radio: B replications resolved by one matrix product.

The scalar engine (:mod:`repro.radio.network`) resolves each slot by
iterating neighbors in Python.  For a *batch* of B independent
replications running the same protocol on one topology, the paper's
reception rule — a station receives iff **exactly one** neighbor
transmits (§1.1) — is a single boolean adjacency product:

    counts  = tx @ A          # tx: (B, n) transmit mask, A: (n, n) bool
    unique  = (counts == 1) & ~tx

and the *identity* of the unique transmitter falls out of a second
product with the node-index vector (valid exactly where ``counts == 1``):

    sender  = (tx * ids) @ A

:class:`LockstepRadio` packages the topology-side state (adjacency
matrix, node indexing, per-node BFS parents/levels) and the per-slot
resolution; protocol dynamics live in :mod:`repro.vector.collection`.

Engine selection
----------------
The runner exposes both engines behind one interface: every
:class:`~repro.runner.task.TaskSpec` carries ``engine="scalar"`` (the
pure-Python slot loop, the reference implementation) or
``engine="vector"`` (this subsystem), the result-cache key covers the
choice, and experiments opt in by registering a batch task function.
Vector runs are *distributionally* equivalent to scalar runs — same
protocol, same exact invariants, statistically identical outcomes —
but never coin-flip-identical, because NumPy streams cannot be
bit-matched to ``random.Random``.  The equivalence harness
(:mod:`repro.vector.check`) makes that contract testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId

#: The engines a task may select.  ``scalar`` is the reference
#: slot-by-slot interpreter; ``vector`` is the NumPy lockstep batch.
ENGINES: Tuple[str, ...] = ("scalar", "vector")


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class LockstepRadio:
    """Topology-side state for B lockstep replications on one graph.

    Nodes are re-indexed ``0..n-1`` in the sorted order of
    ``graph.nodes`` (the same order every scalar component iterates in);
    all batch state elsewhere is indexed by these positions.
    """

    def __init__(self, graph: Graph, tree: BFSTree, replications: int):
        if replications < 1:
            raise ConfigurationError(
                f"need at least one replication, got {replications}"
            )
        self.graph = graph
        self.tree = tree
        self.num_replications = replications
        self.nodes: Tuple[NodeId, ...] = graph.nodes
        self.n = len(self.nodes)
        self.index: Dict[NodeId, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        adjacency = np.zeros((self.n, self.n), dtype=bool)
        for u in self.nodes:
            ui = self.index[u]
            for v in graph.neighbors(u):
                adjacency[ui, self.index[v]] = True
        self.adjacency = adjacency
        # float32 mirror for the BLAS-backed reception product; counts and
        # index sums stay far below 2^24, so float32 arithmetic is exact.
        self._adjacency_f = adjacency.astype(np.float32)
        self.ids = np.arange(self.n, dtype=np.float32)
        self.root_index = self.index[tree.root]
        self.levels = np.array(
            [tree.level[node] for node in self.nodes], dtype=np.int64
        )
        # parent[root] = root (the root never transmits upward, so the
        # self-reference is never consulted as a real hop).
        self.parents = np.array(
            [
                self.index[tree.parent[node]]
                if tree.parent.get(node) is not None
                else self.index[node]
                for node in self.nodes
            ],
            dtype=np.int64,
        )

    def resolve(
        self, tx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve one slot: ``(counts, senders, unique)``.

        ``counts[b, v]`` — transmitting neighbors of v; ``senders[b, v]``
        — sum of their indices (the transmitter's index exactly where
        ``counts == 1``); ``unique[b, v]`` — v hears a message: exactly
        one neighbor transmitted and v itself was listening.
        """
        tx_f = tx.astype(np.float32)
        counts = tx_f @ self._adjacency_f
        senders = (tx_f * self.ids) @ self._adjacency_f
        unique = (counts == 1.0) & ~tx
        return counts, senders, unique


class SlotRecord:
    """One traced slot of a batch run (small cells only — dense copies)."""

    __slots__ = (
        "slot", "kind", "level_class", "decay_step",
        "tx", "counts", "started",
    )

    def __init__(
        self,
        slot: int,
        kind: str,
        level_class: int,
        decay_step: int,
        tx: np.ndarray,
        counts: Optional[np.ndarray],
        started: Optional[np.ndarray],
    ):
        self.slot = slot
        self.kind = kind  # "data" | "ack"
        self.level_class = level_class
        self.decay_step = decay_step
        self.tx = tx
        self.counts = counts
        self.started = started  # session-start mask (data step 0 only)


class BatchTrace:
    """Per-slot event capture for the equivalence harness.

    Dense (B, n) copies per slot: meant for the short traced sub-runs the
    invariant checks operate on, not for production sweeps.
    """

    def __init__(self) -> None:
        self.slots: List[SlotRecord] = []

    def record(self, record: SlotRecord) -> None:
        self.slots.append(record)

    def data_slots(self) -> List[SlotRecord]:
        return [r for r in self.slots if r.kind == "data"]

    def ack_slots(self) -> List[SlotRecord]:
        return [r for r in self.slots if r.kind == "ack"]
