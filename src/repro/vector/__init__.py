"""The vector engine: NumPy lockstep batch simulation of B replications.

Layout mirrors the scalar stack: :mod:`~repro.vector.engine` is the
radio layer (batched reception), :mod:`~repro.vector.decay` the batched
Decay primitive, :mod:`~repro.vector.collection` the pipelined §4
protocol, and :mod:`~repro.vector.check` the scalar-equivalence harness
(exact invariants + KS test).  :mod:`~repro.vector.backend` supplies the
pluggable array kernels (numpy default, optional numba JIT, cupy stub)
behind the ``backend=`` knob, and the ``mask=`` knob selects the
active-set lockstep loop whose per-slot work scales with the awake
population instead of B·n.
"""

from repro.vector.backend import (
    BACKENDS,
    KernelBackend,
    available_backends,
    numba_available,
    resolve_backend,
    validate_backend,
)
from repro.vector.collection import (
    BatchCollection,
    BatchCollectionResult,
    run_collection_batch,
)
from repro.vector.decay import BatchDecay
from repro.vector.engine import (
    ENGINES,
    MASK_MODES,
    RECEPTION_MODES,
    BatchTrace,
    LockstepRadio,
    SlotRecord,
    validate_engine,
    validate_mask,
    validate_reception,
)

__all__ = [
    "BACKENDS",
    "BatchCollection",
    "BatchCollectionResult",
    "BatchDecay",
    "BatchTrace",
    "ENGINES",
    "KernelBackend",
    "LockstepRadio",
    "MASK_MODES",
    "RECEPTION_MODES",
    "SlotRecord",
    "available_backends",
    "numba_available",
    "resolve_backend",
    "run_collection_batch",
    "validate_backend",
    "validate_engine",
    "validate_mask",
    "validate_reception",
]
