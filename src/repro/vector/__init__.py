"""The vector engine: NumPy lockstep batch simulation of B replications.

Layout mirrors the scalar stack: :mod:`~repro.vector.engine` is the
radio layer (batched reception), :mod:`~repro.vector.decay` the batched
Decay primitive, :mod:`~repro.vector.collection` the pipelined §4
protocol, and :mod:`~repro.vector.check` the scalar-equivalence harness
(exact invariants + KS test).
"""

from repro.vector.collection import (
    BatchCollection,
    BatchCollectionResult,
    run_collection_batch,
)
from repro.vector.decay import BatchDecay
from repro.vector.engine import (
    ENGINES,
    RECEPTION_MODES,
    BatchTrace,
    LockstepRadio,
    SlotRecord,
    validate_engine,
    validate_reception,
)

__all__ = [
    "BatchCollection",
    "BatchCollectionResult",
    "BatchDecay",
    "BatchTrace",
    "ENGINES",
    "LockstepRadio",
    "RECEPTION_MODES",
    "SlotRecord",
    "run_collection_batch",
    "validate_engine",
    "validate_reception",
]
