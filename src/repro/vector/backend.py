"""Array-kernel backends for the vector engine.

The lockstep engine has exactly two inner loops whose cost dominates a
large-n slot: the CSR reception scatter (enumerate every transmitter's
neighbor run, accumulate per-receiver hit counts and sender-index sums)
and the Decay session step (transmit-then-flip over the active pairs).
Both are pure array kernels, so they live behind one small interface:

* ``numpy`` — the default, pure-NumPy formulations (``np.bincount`` /
  ``np.add.at`` scatters, boolean masking).  Always available.
* ``numba`` — the same kernels as JIT-compiled explicit loops.  Numba is
  strictly optional: when the wheel is not importable the backend falls
  back to numpy *silently at resolve time* — the kernels are
  bit-identical, so the fallback changes wall-clock only, never a
  result.  (The resolved name stays observable via
  ``KernelBackend.name`` so benchmarks can report what actually ran.)
* ``cupy`` — a stub behind the same interface, reserved for GPU
  offload.  Selecting it raises a
  :class:`~repro.errors.ConfigurationError` until real kernels exist.
* ``auto`` — numba when importable, else numpy.

The *requested* backend is part of every task's cache identity (see
:class:`~repro.runner.task.TaskSpec`), exactly like ``reception=``:
backends are bit-identical in outcome, but a cached record must state
how it was produced, and ``auto``'s resolution may change with the
environment.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: The array backends a task may select.  ``auto`` resolves per
#: environment (numba when importable, else numpy).
BACKENDS: Tuple[str, ...] = ("numpy", "numba", "cupy", "auto")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown array backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional numba wheel is importable (probed once)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401
        except ImportError:
            _NUMBA_AVAILABLE = False
        else:
            _NUMBA_AVAILABLE = True
    return _NUMBA_AVAILABLE


def available_backends() -> Tuple[str, ...]:
    """The backends that will actually run in this environment."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


# ----------------------------------------------------------------------
# numpy kernels (the reference implementations)
# ----------------------------------------------------------------------


def _np_csr_counts(
    b_idx: np.ndarray,
    u_idx: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    B: int,
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Full-width CSR scatter: dense float32 ``(counts, senders)``.

    Gathers every transmitter's neighbor run (run r spans
    ``indices[starts[r] : starts[r] + lengths[r]]``) and bincounts hits
    and sender-index sums over the whole (B, n) plane.  Integer values
    stay far below 2²⁴, so the float32 casts are exact.
    """
    counts = np.zeros((B, n), dtype=np.float32)
    senders = np.zeros((B, n), dtype=np.float32)
    starts = indptr[u_idx]
    lengths = indptr[u_idx + 1] - starts
    total = int(lengths.sum())
    if total:
        ends = np.cumsum(lengths)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            ends - lengths, lengths
        )
        receivers = indices[np.repeat(starts, lengths) + within]
        flat = np.repeat(b_idx, lengths) * n + receivers
        hit = np.bincount(flat, minlength=B * n)
        sender_sum = np.bincount(
            flat,
            weights=np.repeat(u_idx, lengths).astype(np.float64),
            minlength=B * n,
        )
        counts = hit.reshape(B, n).astype(np.float32)
        senders = sender_sum.reshape(B, n).astype(np.float32)
    return counts, senders


def _np_scatter_into(
    b_idx: np.ndarray,
    u_idx: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    hits: np.ndarray,
    senders: np.ndarray,
    n: int,
) -> np.ndarray:
    """Masked scatter into persistent *flat* buffers; returns touched.

    Accumulates each transmitter's neighbor run into ``hits`` (int32,
    B·n flat) and ``senders`` (int64, B·n flat) at only the receiver
    entries adjacent to a transmitter — O(transmitters · degree) work,
    never O(B·n).  The returned flat index array (with duplicates) is
    what the caller must zero to restore the buffers.
    """
    starts = indptr[u_idx]
    lengths = indptr[u_idx + 1] - starts
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        ends - lengths, lengths
    )
    receivers = indices[np.repeat(starts, lengths) + within]
    flat = np.repeat(b_idx, lengths) * n + receivers
    np.add.at(hits, flat, 1)
    np.add.at(senders, flat, np.repeat(u_idx, lengths))
    return flat


def _np_decay_pairs(
    alive: np.ndarray,
    steps: np.ndarray,
    budget: int,
    rows: np.ndarray,
    cols: np.ndarray,
    coins: np.ndarray,
) -> np.ndarray:
    """One masked Decay opportunity over an active pair list.

    Pair semantics match :meth:`~repro.vector.decay.BatchDecay.transmit`
    exactly — transmit first, flip after — restricted to the given
    (replication, station) pairs.  Mutates ``alive``/``steps`` in place
    at the pair positions and returns the per-pair transmit mask.
    """
    session = alive[rows, cols]
    transmitting = session & (steps[rows, cols] < budget)
    steps[rows, cols] += transmitting
    died = transmitting & (coins < 0.5)
    if died.any():
        alive[rows[died], cols[died]] = False
    return transmitting


# ----------------------------------------------------------------------
# numba kernels (compiled lazily; bit-identical to the numpy ones)
# ----------------------------------------------------------------------

_NUMBA_KERNELS: Optional[dict] = None


def _build_numba_kernels() -> dict:
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is not None:
        return _NUMBA_KERNELS
    import numba

    @numba.njit(cache=True)
    def csr_counts(b_idx, u_idx, indptr, indices, B, n):
        counts = np.zeros((B, n), dtype=np.float32)
        senders = np.zeros((B, n), dtype=np.float32)
        for r in range(b_idx.size):
            b = b_idx[r]
            u = u_idx[r]
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                counts[b, v] += np.float32(1.0)
                senders[b, v] += np.float32(u)
        return counts, senders

    @numba.njit(cache=True)
    def scatter_into(b_idx, u_idx, indptr, indices, hits, senders, n):
        total = 0
        for r in range(u_idx.size):
            u = u_idx[r]
            total += indptr[u + 1] - indptr[u]
        touched = np.empty(total, dtype=np.int64)
        t = 0
        for r in range(b_idx.size):
            base = b_idx[r] * n
            u = u_idx[r]
            for j in range(indptr[u], indptr[u + 1]):
                f = base + indices[j]
                hits[f] += 1
                senders[f] += u
                touched[t] = f
                t += 1
        return touched

    @numba.njit(cache=True)
    def decay_pairs(alive, steps, budget, rows, cols, coins):
        out = np.empty(rows.size, dtype=np.bool_)
        for r in range(rows.size):
            b = rows[r]
            v = cols[r]
            transmitting = alive[b, v] and steps[b, v] < budget
            if transmitting:
                steps[b, v] += 1
                if coins[r] < 0.5:
                    alive[b, v] = False
            out[r] = transmitting
        return out

    _NUMBA_KERNELS = {
        "csr_counts": csr_counts,
        "scatter_into": scatter_into,
        "decay_pairs": decay_pairs,
    }
    return _NUMBA_KERNELS


# ----------------------------------------------------------------------
# the backend object
# ----------------------------------------------------------------------


class KernelBackend:
    """A resolved set of array kernels (one per inner loop).

    ``requested`` is the knob value (part of task identity); ``name`` is
    what actually runs after environment resolution.  ``decay_pairs``
    may be ``None`` — :class:`~repro.vector.decay.BatchDecay` then uses
    its own NumPy formulation, which keeps the Decay step overridable by
    harness subclasses regardless of backend.
    """

    def __init__(
        self,
        requested: str,
        name: str,
        csr_counts: Callable,
        scatter_into: Callable,
        decay_pairs: Optional[Callable],
    ):
        self.requested = requested
        self.name = name
        self.csr_counts = csr_counts
        self.scatter_into = scatter_into
        self.decay_pairs = decay_pairs


def resolve_backend(backend: str = "auto") -> KernelBackend:
    """Resolve a backend knob to runnable kernels for this environment.

    ``numba`` (explicit or via ``auto``) falls back to numpy when the
    wheel is missing — results are bit-identical either way, so the
    fallback is silent and only the resolved :attr:`KernelBackend.name`
    records it.  ``cupy`` is a stub and always raises.
    """
    validate_backend(backend)
    if backend == "cupy":
        raise ConfigurationError(
            "the cupy backend is a stub: GPU kernels are not implemented "
            "yet (and cupy is typically not installed); use --backend "
            "numpy, numba or auto"
        )
    use_numba = backend in ("numba", "auto") and numba_available()
    if use_numba:
        kernels = _build_numba_kernels()
        return KernelBackend(
            requested=backend,
            name="numba",
            csr_counts=kernels["csr_counts"],
            scatter_into=kernels["scatter_into"],
            decay_pairs=kernels["decay_pairs"],
        )
    return KernelBackend(
        requested=backend,
        name="numpy",
        csr_counts=_np_csr_counts,
        scatter_into=_np_scatter_into,
        decay_pairs=None,
    )
