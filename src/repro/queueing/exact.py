"""Exact expected completion times for the §4.2 tandem models.

The move dynamics of models 2/3 form a finite absorbing Markov chain over
partitions (level loads + reservoir): each non-empty level independently
advances one message with probability µ per step, and the reservoir
releases one with probability λ.  For the small (k, D) used in tests and
benchmarks the chain is tiny, so the expected absorption time solves
exactly from the fundamental-matrix equation

    (I − Q)·h = 1

where Q is the transient-to-transient transition matrix.  This gives a
third, simulation-free leg for experiment E4: Monte-Carlo tandems and the
radio protocol are both checked against linear algebra.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.queueing.moves import is_empty, move

State = Tuple[int, ...]

#: Safety cap on the enumerated state space.
MAX_STATES = 200_000


def reachable_states(initial: Sequence[int]) -> List[State]:
    """All states reachable from ``initial`` under single-step moves.

    Moves only shift mass toward the root, so reachability is finite;
    states are enumerated breadth-first over all subsets of firing
    positions.
    """
    start = tuple(int(x) for x in initial)
    if any(x < 0 for x in start):
        raise ConfigurationError("loads must be non-negative")
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for successor, _prob in _successors(state, mu=0.5, lam=0.5):
            if successor not in seen:
                if len(seen) >= MAX_STATES:
                    raise ConfigurationError(
                        f"state space exceeds {MAX_STATES}; "
                        f"use the simulators for this size"
                    )
                seen.add(successor)
                frontier.append(successor)
    return sorted(seen)


def _successors(
    state: State, mu: float, lam: float
) -> List[Tuple[State, float]]:
    """Successor states with probabilities (aggregated)."""
    dimension = len(state)
    active = [i for i in range(dimension) if state[i] > 0]
    out: Dict[State, float] = {}
    # Each active position fires independently: enumerate firing subsets.
    for size in range(len(active) + 1):
        for subset in combinations(active, size):
            probability = 1.0
            for position in active:
                rate = lam if position == dimension - 1 else mu
                probability *= rate if position in subset else (1.0 - rate)
            if probability == 0.0:
                continue
            vector = tuple(
                1 if i in subset else 0 for i in range(dimension)
            )
            successor = move(state, vector)
            out[successor] = out.get(successor, 0.0) + probability
    return list(out.items())


def expected_completion_exact(
    initial: Sequence[int], mu: float, lam: float = 0.0
) -> float:
    """Exact E[T] for the tandem started at ``initial``.

    ``initial`` is ``(a_1, …, a_D, reservoir)``; position D+1 drains at
    rate λ (0 for model 2), the others at rate µ.  Absorption = empty.
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"µ must be in (0,1], got {mu}")
    if not 0.0 <= lam <= 1.0:
        raise ConfigurationError(f"λ must be in [0,1], got {lam}")
    start = tuple(int(x) for x in initial)
    if is_empty(start):
        return 0.0
    if start[-1] > 0 and lam == 0.0:
        raise ConfigurationError(
            "reservoir is loaded but λ = 0: completion time is infinite"
        )
    states = reachable_states(start)
    transient = [s for s in states if not is_empty(s)]
    index = {state: i for i, state in enumerate(transient)}
    size = len(transient)
    q = np.zeros((size, size))
    for state in transient:
        i = index[state]
        for successor, probability in _successors(state, mu, lam):
            if not is_empty(successor):
                q[i, index[successor]] += probability
    h = np.linalg.solve(np.eye(size) - q, np.ones(size))
    return float(h[index[start]])


def completion_time_distribution(
    initial: Sequence[int],
    mu: float,
    lam: float,
    t_max: int,
) -> List[float]:
    """``[P(T = 0), …, P(T = t_max)]`` for the tandem's completion time.

    Computed by evolving the transient distribution: the mass absorbed at
    step t is exactly P(T = t).  The returned list sums to
    ``P(T ≤ t_max)`` (< 1 if the horizon truncates the tail).
    """
    if t_max < 0:
        raise ConfigurationError(f"t_max must be >= 0, got {t_max}")
    start = tuple(int(x) for x in initial)
    if is_empty(start):
        return [1.0] + [0.0] * t_max
    if start[-1] > 0 and lam == 0.0:
        raise ConfigurationError(
            "reservoir is loaded but λ = 0: completion never happens"
        )
    distribution: Dict[State, float] = {start: 1.0}
    pmf = [0.0]
    for _t in range(1, t_max + 1):
        next_distribution: Dict[State, float] = {}
        absorbed = 0.0
        for state, probability in distribution.items():
            for successor, transition in _successors(state, mu, lam):
                mass = probability * transition
                if is_empty(successor):
                    absorbed += mass
                else:
                    next_distribution[successor] = (
                        next_distribution.get(successor, 0.0) + mass
                    )
        pmf.append(absorbed)
        distribution = next_distribution
        if len(distribution) > MAX_STATES:
            raise ConfigurationError(
                f"state space exceeds {MAX_STATES}"
            )
    return pmf


def expected_completion_model2_exact(
    levels: Sequence[int], mu: float
) -> float:
    """Exact E[T] for model 2 (pre-placed messages, no arrivals)."""
    return expected_completion_exact(tuple(levels) + (0,), mu, lam=0.0)


def expected_completion_model3_exact(
    k: int, depth: int, mu: float, lam: float
) -> float:
    """Exact E[T] for model 3 (empty start, k Bernoulli arrivals)."""
    if k < 0 or depth < 1:
        raise ConfigurationError("need k >= 0 and depth >= 1")
    return expected_completion_exact((0,) * depth + (k,), mu, lam)
