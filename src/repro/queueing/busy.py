"""Busy-period structure of the Bernoulli server.

A complement to the stationary-law results of §4.3: the server's time
axis decomposes into i.i.d. *idle periods* (waiting for an arrival:
Geometric(λ), mean 1/λ) and *busy periods* (from an arrival into an
empty queue until the queue next empties).

For the late-arrival Geo/Geo/1 queue the busy period is the hitting time
of a skip-free-downward random walk with per-step increments
−1 w.p. µ(1−λ), +1 w.p. λ(1−µ), 0 otherwise; hence

    E[B] = 1 / (µ − λ)

and the busy fraction E[B] / (E[B] + E[I]) = λ/µ = ρ recovers the
utilization — a consistency check tying the cycle view to `p_0 = 1−ρ`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.queueing.analysis import _check_rates
from repro.queueing.bernoulli import BernoulliServer


def mean_busy_period(lam: float, mu: float) -> float:
    """``E[B] = 1/(µ−λ)`` steps."""
    _check_rates(lam, mu)
    return 1.0 / (mu - lam)


def mean_idle_period(lam: float) -> float:
    """``E[I] = 1/λ`` steps (waiting for a Bernoulli(λ) arrival)."""
    if not 0.0 < lam < 1.0:
        raise ConfigurationError(f"λ must be in (0,1), got {lam}")
    return 1.0 / lam


def busy_fraction(lam: float, mu: float) -> float:
    """``E[B]/(E[B]+E[I]) = λ/µ`` — the utilization, from the cycle view."""
    _check_rates(lam, mu)
    b = mean_busy_period(lam, mu)
    i = mean_idle_period(lam)
    return b / (b + i)


@dataclass
class BusyPeriodObservation:
    """Measured busy/idle cycles from one long run."""

    busy_lengths: List[int] = field(default_factory=list)
    idle_lengths: List[int] = field(default_factory=list)

    @property
    def mean_busy(self) -> float:
        if not self.busy_lengths:
            return float("nan")
        return sum(self.busy_lengths) / len(self.busy_lengths)

    @property
    def mean_idle(self) -> float:
        if not self.idle_lengths:
            return float("nan")
        return sum(self.idle_lengths) / len(self.idle_lengths)

    @property
    def busy_fraction(self) -> float:
        busy = sum(self.busy_lengths)
        idle = sum(self.idle_lengths)
        if busy + idle == 0:
            return 0.0
        return busy / (busy + idle)


def observe_busy_periods(
    lam: float,
    mu: float,
    steps: int,
    rng: random.Random,
) -> BusyPeriodObservation:
    """Run one server and segment its timeline into busy/idle periods.

    A step is *busy* if the pre-arrival queue is non-empty.  Only
    complete periods are recorded (the trailing partial one is dropped).
    """
    _check_rates(lam, mu)
    if steps < 1:
        raise ConfigurationError("need at least one step")
    server = BernoulliServer(mu, rng)
    observation = BusyPeriodObservation()
    current_length = 0
    currently_busy = False
    for _ in range(steps):
        busy_now = server.queue > 0
        if busy_now == currently_busy:
            current_length += 1
        else:
            if current_length > 0:
                if currently_busy:
                    observation.busy_lengths.append(current_length)
                else:
                    observation.idle_lengths.append(current_length)
            currently_busy = busy_now
            current_length = 1
        server.step(arrival=rng.random() < lam)
    return observation
