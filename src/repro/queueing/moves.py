"""The move-vector calculus of §4.4–§4.7 (Lemmas 4.5–4.15).

The paper's upper-bound proof reduces the radio network (model 1) to a
steady-state tandem queue (model 4) through a chain of couplings expressed
in a small combinatorial calculus:

* a **partition** ``a = (a_1, …, a_{D+1})`` records how many messages sit
  at each level (index D+1 is the arrival reservoir; level 0 — the root —
  absorbs and is not recorded);
* a **move vector** ``m`` moves ``min(a_i, m_i)`` messages from level i to
  level i−1, simultaneously at all levels;
* ``a ⪯ b`` ("a precedes b") iff some move sequence turns b into a, i.e.
  a is *further along* than b.

This module implements the calculus executably so the lemmas become
testable properties:

* Lemma 4.5 — any move vector equals a sequence of singletons applied in
  ascending level order (:func:`singleton_decomposition`).
* Lemma 4.7 — ⪯ is preserved by applying the same move vector.
* Lemma 4.8/4.9 — completion time is monotone w.r.t. ⪯ (pathwise and in
  expectation).
* Lemma 4.12/4.13 — domination of move vectors/sequences only helps.
* The ⪯ order itself has a clean characterization by suffix sums
  (:func:`precedes`), cross-checked against an explicit constructive
  witness (:func:`move_sequence_witness`).

Note on the paper's definition: it states ``δ_{D+1} = m_{D+1}`` without a
clamp; we clamp at every index (``δ_i = min(a_i, m_i)``), which keeps
partitions non-negative and agrees with the paper wherever the reservoir
is non-empty (the only case its proofs exercise).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

Partition = Tuple[int, ...]
MoveVector = Tuple[int, ...]


def _validate(vector: Sequence[int], name: str) -> Tuple[int, ...]:
    out = tuple(int(x) for x in vector)
    if any(x < 0 for x in out):
        raise ConfigurationError(f"{name} must be non-negative, got {out}")
    if not out:
        raise ConfigurationError(f"{name} must have at least one level")
    return out


def move(a: Sequence[int], m: Sequence[int]) -> Partition:
    """One application of a move vector: ``a' = Move(a, m)``.

    ``δ_i = min(a_i, m_i)`` messages leave level i toward level i−1;
    level 1's departures leave the system (reach the root).
    """
    a = _validate(a, "partition")
    m = _validate(m, "move vector")
    if len(a) != len(m):
        raise ConfigurationError(
            f"dimension mismatch: partition {len(a)}, move {len(m)}"
        )
    delta = [min(ai, mi) for ai, mi in zip(a, m)]
    out = list(a)
    for i in range(len(a)):
        out[i] -= delta[i]
        if i + 1 < len(a):
            out[i] += delta[i + 1]
    return tuple(out)


def move_star(
    a: Sequence[int], moves: Iterable[Sequence[int]], steps: Optional[int] = None
) -> Partition:
    """``Move*(a, M, t)``: apply the first ``steps`` moves of the sequence."""
    state = _validate(a, "partition")
    for index, m in enumerate(moves):
        if steps is not None and index >= steps:
            break
        state = move(state, m)
    return state


def singleton(dimension: int, index: int) -> MoveVector:
    """``e_index``: the singleton moving one message out of 1-based level."""
    if not 1 <= index <= dimension:
        raise ConfigurationError(
            f"singleton index {index} out of range 1..{dimension}"
        )
    return tuple(1 if i == index - 1 else 0 for i in range(dimension))


def singleton_decomposition(m: Sequence[int]) -> List[MoveVector]:
    """Lemma 4.5: the singleton sequence equivalent to move vector ``m``.

    Singletons are emitted in ascending level order (level 1 first) —
    "lexicographically nonincreasing" in the paper's vector order — which
    is exactly the order that makes the sequential application agree with
    the simultaneous one: moving the lower level first ensures a message
    cannot ride two hops on one move vector.
    """
    m = _validate(m, "move vector")
    out: List[MoveVector] = []
    for index, count in enumerate(m, start=1):
        out.extend(singleton(len(m), index) for _ in range(count))
    return out


def dominates(m: Sequence[int], m_prime: Sequence[int]) -> bool:
    """Whether ``m`` dominates ``m'`` (componentwise ≥, §4.7)."""
    m = _validate(m, "move vector")
    m_prime = _validate(m_prime, "move vector")
    if len(m) != len(m_prime):
        raise ConfigurationError("dimension mismatch")
    return all(x >= y for x, y in zip(m, m_prime))


def suffix_sums(a: Sequence[int]) -> Tuple[int, ...]:
    """``(Σ_{j≥1} a_j, Σ_{j≥2} a_j, …, a_{D+1})``."""
    a = _validate(a, "partition")
    out = []
    total = 0
    for value in reversed(a):
        total += value
        out.append(total)
    return tuple(reversed(out))


def precedes(a: Sequence[int], b: Sequence[int]) -> bool:
    """The partial order ``a ⪯ b``: a reachable from b by moves.

    Characterization: every suffix sum of ``a`` is at most the matching
    suffix sum of ``b``.  (Moves only push mass toward the root and out of
    the system, so suffix sums are non-increasing along any move; and when
    the inequalities hold, :func:`move_sequence_witness` constructs an
    explicit schedule.)
    """
    a = _validate(a, "partition")
    b = _validate(b, "partition")
    if len(a) != len(b):
        raise ConfigurationError("dimension mismatch")
    return all(x <= y for x, y in zip(suffix_sums(a), suffix_sums(b)))


def move_sequence_witness(
    b: Sequence[int], a: Sequence[int]
) -> Optional[List[MoveVector]]:
    """An explicit move sequence turning ``b`` into ``a`` (or None).

    Construction: let ``c_i = suffix_i(b) − suffix_i(a)`` be the number of
    messages that must cross the (i−1, i) boundary; schedule the bulk
    moves from the highest level downward, each as repeated singletons.
    """
    b = _validate(b, "partition")
    a = _validate(a, "partition")
    if len(a) != len(b):
        raise ConfigurationError("dimension mismatch")
    if not precedes(a, b):
        return None
    crossings = [
        sb - sa for sb, sa in zip(suffix_sums(b), suffix_sums(a))
    ]
    sequence: List[MoveVector] = []
    for index in range(len(b), 0, -1):  # highest level first
        count = crossings[index - 1]
        sequence.extend(singleton(len(b), index) for _ in range(count))
    return sequence


def is_empty(a: Sequence[int]) -> bool:
    return all(x == 0 for x in a)


def completion_time(
    a: Sequence[int], moves: Iterable[Sequence[int]], limit: int = 10**7
) -> int:
    """``T(a, M)``: moves needed to empty the partition (§4.5).

    Raises :class:`ConfigurationError` if the sequence is exhausted or the
    ``limit`` is hit before the partition empties (completion time may be
    infinite for some sequences, as the paper notes).
    """
    state = _validate(a, "partition")
    if is_empty(state):
        return 0
    for step, m in enumerate(moves, start=1):
        if step > limit:
            break
        state = move(state, m)
        if is_empty(state):
            return step
    raise ConfigurationError(
        f"move sequence exhausted before completion (state {state})"
    )


def random_move_vector(
    dimension: int, mu: float, lam: float, rng: random.Random
) -> MoveVector:
    """One stochastic move vector of the tandem model (§4.5).

    ``P(m_i = 1) = µ`` for the D servers (levels 1..D) and
    ``P(m_{D+1} = 1) = λ`` for arrivals out of the reservoir.
    """
    if dimension < 1:
        raise ConfigurationError("need dimension >= 1")
    if not (0.0 <= mu <= 1.0 and 0.0 <= lam <= 1.0):
        raise ConfigurationError(f"mu={mu}, lam={lam} must be in [0,1]")
    parts = [1 if rng.random() < mu else 0 for _ in range(dimension - 1)]
    parts.append(1 if rng.random() < lam else 0)
    return tuple(parts)


def random_move_sequence(
    dimension: int,
    mu: float,
    lam: float,
    rng: random.Random,
    length: int,
) -> List[MoveVector]:
    """A finite prefix of the model's stochastic move sequence."""
    return [
        random_move_vector(dimension, mu, lam, rng) for _ in range(length)
    ]
