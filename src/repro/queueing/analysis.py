"""Closed-form queueing results used by §4.3 (Geo/Geo/1 and tandems).

A *Bernoulli server* (discrete-time Geo/Geo/1, late-arrival convention:
service acts on the pre-arrival queue, arrivals join afterwards — exactly
the radio chain, where a message entering a level in phase t can first
leave it in phase t+1) with arrival rate λ < service rate µ has, following
Burke (1956) and Hsu–Burke (1976) as cited by the paper:

* stationary queue-length distribution::

      p_0 = 1 − λ/µ
      p_1 = λ·p_0 / ((1 − λ)·µ)
      p_j = p_1 · r^(j−1),   r = λ(1−µ) / (µ(1−λ))

* expected queue length ``N̄ = Σ j·p_j = λ(1−λ)/(µ−λ)``;
* by Little's result, expected time in the queue ``E(T) = N̄/λ =
  (1−λ)/(µ−λ)``;
* the departure process converges to a Bernoulli process with parameter λ
  (Hsu–Burke) — hence in a *tandem* of D such servers every server sees a
  Bernoulli(λ) input and Theorem 4.3 follows:
  ``E[completion of k messages] = k/λ + D·(1−λ)/(µ−λ)`` phases.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import ConfigurationError


def _check_rates(lam: float, mu: float) -> None:
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"service rate must be in (0,1], got {mu}")
    if not 0.0 < lam < 1.0:
        raise ConfigurationError(f"arrival rate must be in (0,1), got {lam}")
    if lam >= mu:
        raise ConfigurationError(
            f"stability requires λ < µ, got λ={lam} >= µ={mu}"
        )


def geometric_ratio(lam: float, mu: float) -> float:
    """The tail ratio r = λ(1−µ)/(µ(1−λ)) of the stationary distribution."""
    _check_rates(lam, mu)
    return lam * (1.0 - mu) / (mu * (1.0 - lam))


def stationary_probability(j: int, lam: float, mu: float) -> float:
    """``p_j``: stationary probability of queue length j."""
    _check_rates(lam, mu)
    if j < 0:
        raise ConfigurationError(f"queue length must be >= 0, got {j}")
    if j == 0:
        return 1.0 - lam / mu
    p1 = lam * (1.0 - lam / mu) / ((1.0 - lam) * mu)
    return p1 * geometric_ratio(lam, mu) ** (j - 1)


def stationary_distribution(lam: float, mu: float, j_max: int) -> List[float]:
    """``[p_0, …, p_{j_max}]`` (truncated; sums to < 1 by the tail mass)."""
    return [stationary_probability(j, lam, mu) for j in range(j_max + 1)]


def expected_queue_length(lam: float, mu: float) -> float:
    """``N̄ = λ(1−λ)/(µ−λ)`` (the paper's Σ j·p_j)."""
    _check_rates(lam, mu)
    return lam * (1.0 - lam) / (mu - lam)


def expected_sojourn_time(lam: float, mu: float) -> float:
    """Little's result: ``E(T) = N̄/λ = (1−λ)/(µ−λ)`` phases per server."""
    _check_rates(lam, mu)
    return (1.0 - lam) / (mu - lam)


def tandem_completion_time(k: int, depth: int, lam: float, mu: float) -> float:
    """Theorem 4.3: expected phases for k messages through D servers.

    ``E(Q_k) = k/λ + D·(1−λ)/(µ−λ)`` — k interarrival gaps plus the last
    message's sojourn through the whole steady-state tandem.
    """
    _check_rates(lam, mu)
    if k < 0 or depth < 0:
        raise ConfigurationError("k and depth must be >= 0")
    return k / lam + depth * expected_sojourn_time(lam, mu)


def optimal_lambda(mu: float) -> float:
    """The λ* balancing Theorem 4.3's two terms: ``λ* = 1 − √(1 − µ)``.

    At λ*, ``1/λ = (1−λ)/(µ−λ)`` so the bound becomes ``(k + D)/λ*``
    phases; with the paper's µ = e⁻¹(1−e⁻¹) this yields the Theorem 4.4
    constant 4/λ* ≈ 32.27 slots per (k + D)·log Δ.
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"µ must be in (0,1], got {mu}")
    return 1.0 - math.sqrt(1.0 - mu)


def sample_stationary_queue_length(
    lam: float, mu: float, rng: random.Random
) -> int:
    """Draw a queue length from the stationary distribution.

    Used to initialize model 4 in steady state (§4.2: "we assume that it
    is already in steady state in the sense of Queueing Theory").
    """
    _check_rates(lam, mu)
    u = rng.random()
    cumulative = stationary_probability(0, lam, mu)
    if u < cumulative:
        return 0
    j = 1
    p = stationary_probability(1, lam, mu)
    r = geometric_ratio(lam, mu)
    while True:
        cumulative += p
        if u < cumulative or p < 1e-15:
            return j
        p *= r
        j += 1


def utilization(lam: float, mu: float) -> float:
    """Server busy fraction, λ/µ (= 1 − p_0)."""
    _check_rates(lam, mu)
    return lam / mu
