"""The four models of §4.2 and the tandem-queue simulations behind them.

The paper's reduction chain (proved by Lemmas 4.10–4.15, reproduced as
experiment E4):

* **Model 1** — the radio network itself: k messages placed on a BFS tree,
  one Decay phase per step; Theorem 4.1 guarantees each loaded level
  advances a message with probability ≥ µ.  (Simulated by
  :func:`repro.core.collection.run_collection`; the adapter
  :func:`radio_completion_phases` converts its output to phases.)
* **Model 2** — a path of D+1 nodes, all level-i messages collapsed onto
  node i, at most one message moves per node per step, with probability
  *exactly* µ; no arrivals.
* **Model 3** — same servers, but the k messages are not initially present:
  they arrive at node D as a Bernoulli(λ) stream (λ < µ); queues start
  empty.
* **Model 4** — model 3 started in steady state: each server's queue is
  initialized from the stationary Geo/Geo/1 distribution; completion is
  the time for k *additional* messages to arrive and drain (since the
  tandem is overtake-free, that is exactly the time for the whole system,
  reservoir included, to empty).

The chain E[T₁] ≤ E[T₂] ≤ E[T₃] ≤ E[T₄] makes Theorem 4.3's closed form
for model 4 an upper bound for the radio protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.queueing.analysis import (
    sample_stationary_queue_length,
    tandem_completion_time,
)
from repro.queueing.moves import (
    is_empty,
    move,
    random_move_vector,
)

DEFAULT_STEP_LIMIT = 10**7


@dataclass
class TandemRunResult:
    """Outcome of one tandem simulation."""

    steps: int  # completion time in phases
    depth: int
    delivered: int
    initial_backlog: int  # messages already in queues at t=0 (model 4)


def _run_to_empty(
    state: Tuple[int, ...],
    mu: float,
    lam: float,
    rng: random.Random,
    step_limit: int,
) -> int:
    steps = 0
    while not is_empty(state):
        steps += 1
        if steps > step_limit:
            raise ConfigurationError(
                f"tandem simulation exceeded {step_limit} steps"
            )
        state = move(state, random_move_vector(len(state), mu, lam, rng))
    return steps


def simulate_model2(
    initial_levels: Sequence[int],
    mu: float,
    rng: random.Random,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> TandemRunResult:
    """Model 2: messages pre-placed on the path, no arrivals.

    ``initial_levels[i]`` is the load of level i+1 (so a partition of
    length D); the reservoir is empty.
    """
    levels = tuple(int(x) for x in initial_levels)
    if any(x < 0 for x in levels):
        raise ConfigurationError("loads must be non-negative")
    state = levels + (0,)
    k = sum(levels)
    steps = _run_to_empty(state, mu, lam=0.0, rng=rng, step_limit=step_limit)
    return TandemRunResult(
        steps=steps, depth=len(levels), delivered=k, initial_backlog=0
    )


def simulate_model3(
    k: int,
    depth: int,
    mu: float,
    lam: float,
    rng: random.Random,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> TandemRunResult:
    """Model 3: queues start empty; k messages arrive Bernoulli(λ)."""
    if k < 0 or depth < 1:
        raise ConfigurationError("need k >= 0 and depth >= 1")
    state = (0,) * depth + (k,)
    steps = _run_to_empty(state, mu, lam, rng, step_limit)
    return TandemRunResult(
        steps=steps, depth=depth, delivered=k, initial_backlog=0
    )


def simulate_model4(
    k: int,
    depth: int,
    mu: float,
    lam: float,
    rng: random.Random,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> TandemRunResult:
    """Model 4: model 3 started from the stationary queue profile.

    Queues are initialized independently from the Geo/Geo/1 stationary
    distribution (the Hsu–Burke departure theorem makes every server's
    input Bernoulli(λ) in steady state, so each queue is marginally
    stationary).  Because the tandem is overtake-free, the completion time
    of the k tagged arrivals equals the time for the whole system to empty.
    """
    if k < 0 or depth < 1:
        raise ConfigurationError("need k >= 0 and depth >= 1")
    initial = tuple(
        sample_stationary_queue_length(lam, mu, rng) for _ in range(depth)
    )
    state = initial + (k,)
    steps = _run_to_empty(state, mu, lam, rng, step_limit)
    return TandemRunResult(
        steps=steps,
        depth=depth,
        delivered=k,
        initial_backlog=sum(initial),
    )


def mean_completion(
    simulate,
    replications: int,
    seed: int,
) -> Tuple[float, List[int]]:
    """Average ``simulate(rng)`` completion over seeded replications."""
    from repro.rng import RngFactory

    factory = RngFactory(seed)
    samples = []
    for index in range(replications):
        rng = factory.named(f"tandem-{index}")
        samples.append(simulate(rng).steps)
    return sum(samples) / max(1, len(samples)), samples


def model4_prediction(k: int, depth: int, mu: float, lam: float) -> float:
    """Theorem 4.3's closed form, re-exported next to its simulator."""
    return tandem_completion_time(k, depth, lam=lam, mu=mu)


def radio_completion_phases(slots: int, phase_length: int) -> int:
    """Convert a radio run's slot count to model-1 phases (ceil)."""
    if phase_length < 1:
        raise ConfigurationError("phase length must be >= 1")
    return -(-slots // phase_length)
