"""Discrete-time Bernoulli-server (Geo/Geo/1) simulation.

Companion to :mod:`repro.queueing.analysis`: simulates the single server
the paper's §4.3 builds on, recording everything the closed forms predict —
the stationary queue-length distribution, the mean queue length, sojourn
times (Little's law), and the departure process (Hsu–Burke: Bernoulli(λ)
in steady state).

Convention (matching the radio chain): in each time step the server first
serves the *pre-arrival* queue (success w.p. µ if non-empty), then a new
customer arrives w.p. λ — so a customer arriving in step t can depart no
earlier than step t+1, exactly like a message that enters a BFS level in
one phase and leaves it in a later phase.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.errors import ConfigurationError


class BernoulliServer:
    """One discrete-time server with geometric service.

    Drive it with :meth:`step`; composition into tandems is done by
    feeding one server's departures to the next (see
    :mod:`repro.queueing.tandem`).
    """

    def __init__(self, mu: float, rng: random.Random):
        if not 0.0 < mu <= 1.0:
            raise ConfigurationError(f"service rate must be in (0,1], got {mu}")
        self.mu = mu
        self._rng = rng
        self.queue = 0

    def step(self, arrival: bool) -> bool:
        """Advance one time step; returns whether a customer departed."""
        departed = False
        if self.queue > 0 and self._rng.random() < self.mu:
            self.queue -= 1
            departed = True
        if arrival:
            self.queue += 1
        return departed


@dataclass
class SingleServerObservation:
    """Measurements from one long single-server run."""

    steps: int
    lam: float
    mu: float
    queue_length_histogram: Dict[int, int] = field(default_factory=dict)
    departures: int = 0
    sojourn_times: List[int] = field(default_factory=list)
    interdeparture_times: List[int] = field(default_factory=list)

    def empirical_p(self, j: int) -> float:
        """Fraction of observed steps with queue length j."""
        return self.queue_length_histogram.get(j, 0) / max(1, self.steps)

    @property
    def mean_queue_length(self) -> float:
        total = sum(j * c for j, c in self.queue_length_histogram.items())
        return total / max(1, self.steps)

    @property
    def mean_sojourn_time(self) -> float:
        if not self.sojourn_times:
            return 0.0
        return sum(self.sojourn_times) / len(self.sojourn_times)

    @property
    def departure_rate(self) -> float:
        return self.departures / max(1, self.steps)

    @property
    def mean_interdeparture_time(self) -> float:
        if not self.interdeparture_times:
            return float("inf")
        return sum(self.interdeparture_times) / len(self.interdeparture_times)


def observe_single_server(
    lam: float,
    mu: float,
    steps: int,
    rng: random.Random,
    warmup: Optional[int] = None,
) -> SingleServerObservation:
    """Run one Geo/Geo/1 server and record stationary statistics.

    ``warmup`` steps (default ``steps // 10``) are run first and excluded
    from every statistic so the measurements approximate steady state.
    Sojourn times are tracked FIFO via arrival timestamps.
    """
    if not 0.0 < lam < 1.0:
        raise ConfigurationError(f"arrival rate must be in (0,1), got {lam}")
    if lam >= mu:
        raise ConfigurationError(f"stability requires λ < µ ({lam} >= {mu})")
    if steps < 1:
        raise ConfigurationError("need at least one step")
    if warmup is None:
        warmup = steps // 10
    server = BernoulliServer(mu, rng)
    arrivals_in_queue: Deque[int] = deque()
    observation = SingleServerObservation(steps=steps, lam=lam, mu=mu)
    last_departure: Optional[int] = None
    for t in range(warmup + steps):
        measuring = t >= warmup
        if measuring:
            # Queue length sampled at the start of the step (pre-service),
            # matching the stationary p_j convention.
            histogram = observation.queue_length_histogram
            histogram[server.queue] = histogram.get(server.queue, 0) + 1
        arrival = rng.random() < lam
        departed = server.step(arrival)
        if departed:
            arrived_at = arrivals_in_queue.popleft() if arrivals_in_queue else None
            if measuring:
                observation.departures += 1
                if arrived_at is not None:
                    observation.sojourn_times.append(t - arrived_at)
                if last_departure is not None:
                    observation.interdeparture_times.append(t - last_departure)
            last_departure = t
        if arrival:
            arrivals_in_queue.append(t)
    return observation


def interdeparture_histogram(
    observation: SingleServerObservation, max_gap: int
) -> Dict[int, float]:
    """Empirical distribution of interdeparture gaps, up to ``max_gap``.

    Hsu–Burke predicts geometric gaps: ``P(gap = g) = λ(1−λ)^(g−1)``.
    """
    counts: Dict[int, int] = {}
    for gap in observation.interdeparture_times:
        key = min(gap, max_gap)
        counts[key] = counts.get(key, 0) + 1
    total = max(1, len(observation.interdeparture_times))
    return {gap: count / total for gap, count in sorted(counts.items())}
