"""Round-robin TDMA convergecast baseline.

The natural *deterministic* competitor to the paper's randomized
collection protocol: time is divided into frames of n slots; station with
ID-rank i owns slot i of every frame and transmits (to its BFS parent) iff
its buffer is non-empty.  One transmitter per slot network-wide, so every
transmission is received — no acknowledgements, no coin flips.

Cost: a frame costs n slots but moves up to n messages one level each, so
k messages need ``O((k + D))`` *frames* in the worst case when they share
a path — i.e. ``O((k + D)·n)`` slots, versus the paper's
``O((k + D)·log Δ)``.  Experiment E10 sweeps n to exhibit the crossover
(TDMA wins only on tiny, dense networks where ``n < c·log Δ``).

The schedule relies only on knowledge the paper's model already grants
(n, distinct IDs, and — for rank computation — the ID set; we use the
sorted node list, which a real deployment would get from the setup
phase's ranking application §7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from repro.core.messages import DataMessage
from repro.core.tree import TreeInfo, tree_info_from_bfs_tree
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.trace import NetworkStats
from repro.radio.transmission import Transmission


class TdmaCollectionProcess(Process):
    """One station's role in round-robin TDMA convergecast."""

    def __init__(
        self,
        info: TreeInfo,
        rank: int,
        frame_length: int,
        initial_payloads=(),
    ):
        super().__init__(info.node_id)
        self.info = info
        self.rank = rank
        self.frame_length = frame_length
        self.buffer: Deque[DataMessage] = deque()
        self.delivered: List[DataMessage] = []
        self._serial = 0
        for payload in initial_payloads:
            self.submit(payload)

    def submit(self, payload: Any) -> None:
        message = DataMessage(
            msg_id=(self.info.node_id, self._serial),
            origin=self.info.node_id,
            hop_sender=self.info.node_id,
            hop_dest=self.info.parent,
            payload=payload,
        )
        self._serial += 1
        if self.info.is_root:
            self.delivered.append(message)
        else:
            self.buffer.append(message)

    def on_slot(self, slot: int):
        if self.info.is_root or not self.buffer:
            return None
        if slot % self.frame_length != self.rank:
            return None
        # Reception is guaranteed (sole transmitter in the network), so
        # the message is handed over immediately — no retransmission state.
        message = self.buffer.popleft()
        return Transmission(message, 0)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if not isinstance(payload, DataMessage):
            return
        if payload.hop_dest != self.info.node_id:
            return
        if self.info.is_root:
            self.delivered.append(payload)
        else:
            self.buffer.append(
                payload.rehop(self.info.node_id, self.info.parent)
            )

    def is_done(self) -> bool:
        return not self.buffer


@dataclass
class TdmaCollectionResult:
    slots: int
    frames: int
    delivered: List[DataMessage]
    stats: NetworkStats


def run_tdma_collection(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    max_slots: Optional[int] = None,
) -> TdmaCollectionResult:
    """Run the TDMA baseline until every message reaches the root."""
    unknown = set(sources) - set(graph.nodes)
    if unknown:
        raise ConfigurationError(f"unknown stations {sorted(unknown)!r}")
    n = graph.num_nodes
    infos = tree_info_from_bfs_tree(tree)
    ranks = {node: index for index, node in enumerate(graph.nodes)}
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, TdmaCollectionProcess] = {}
    for node in graph.nodes:
        process = TdmaCollectionProcess(
            info=infos[node],
            rank=ranks[node],
            frame_length=n,
            initial_payloads=sources.get(node, ()),
        )
        processes[node] = process
        network.attach(process)
    total = sum(len(v) for v in sources.values())
    root_process = processes[tree.root]
    if max_slots is None:
        max_slots = max(10_000, 4 * n * (total + tree.depth + 2))
    network.run(
        max_slots,
        until=lambda net: len(root_process.delivered) >= total,
    )
    return TdmaCollectionResult(
        slots=network.slot,
        frames=-(-network.slot // n),
        delivered=list(root_process.delivered),
        stats=network.stats,
    )


def tdma_reference_slots(k: int, depth: int, n: int) -> float:
    """Worst-case reference: (k + D) frames of n slots."""
    return float((k + depth) * n)
