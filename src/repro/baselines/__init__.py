"""Baseline protocols the paper is compared against (experiment E10/E12)."""

from repro.baselines.aloha import (
    AlohaSession,
    aloha_session_factory,
    aloha_success_probability,
)
from repro.baselines.naive_broadcast import (
    FloodResult,
    NaiveBroadcastResult,
    flood_whp_budget,
    naive_broadcast_reference_slots,
    staged_flood_slots,
    run_naive_broadcast,
    run_single_flood,
)
from repro.baselines.spatial_tdma import (
    SpatialTdmaResult,
    distance2_coloring,
    run_spatial_tdma_collection,
    spatial_tdma_reference_slots,
    verify_distance2_coloring,
)
from repro.baselines.sequential import (
    SequentialForwardProcess,
    SequentialResult,
    run_sequential_p2p,
    sequential_reference_slots,
)
from repro.baselines.tdma import (
    TdmaCollectionProcess,
    TdmaCollectionResult,
    run_tdma_collection,
    tdma_reference_slots,
)

__all__ = [
    "AlohaSession",
    "FloodResult",
    "NaiveBroadcastResult",
    "SequentialForwardProcess",
    "SpatialTdmaResult",
    "SequentialResult",
    "TdmaCollectionProcess",
    "TdmaCollectionResult",
    "aloha_session_factory",
    "distance2_coloring",
    "aloha_success_probability",
    "flood_whp_budget",
    "naive_broadcast_reference_slots",
    "run_naive_broadcast",
    "run_sequential_p2p",
    "run_spatial_tdma_collection",
    "run_single_flood",
    "run_tdma_collection",
    "sequential_reference_slots",
    "spatial_tdma_reference_slots",
    "staged_flood_slots",
    "tdma_reference_slots",
    "verify_distance2_coloring",
]
