"""Sequential store-and-forward baselines (the pre-paper state of the art).

§1.3 credits Chlamtac & Kutten with tree routing using "implicit
acknowledgements … conducted in the absence of conflicts, which is
achieved at the cost of increasing the time of a single point-to-point
communication to O(D)."  The defining property is *no concurrency*: one
message is in flight at a time, moving one conflict-free hop per slot
along the tree path; the next message starts only when the previous one
arrived.

k point-to-point transmissions therefore cost ``Σ path_len ≈ k·O(D)``
slots, versus the paper's pipelined ``O((k + D)·log Δ)`` — the paper wins
by ~``D/log Δ`` once k exceeds the pipeline fill (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import DataMessage
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.trace import NetworkStats
from repro.radio.transmission import Transmission


class SequentialForwardProcess(Process):
    """Forward a held message one tree hop per slot (sole transmitter)."""

    def __init__(self, node_id: NodeId, tree: BFSTree):
        super().__init__(node_id)
        self._tree = tree
        self._outgoing: Optional[DataMessage] = None
        self.delivered: List[DataMessage] = []

    def hold(self, message: DataMessage) -> None:
        """Give this station a message to forward (or deliver)."""
        if message.dest_address == self._tree.dfs_number[self.node_id]:
            self.delivered.append(message)
            return
        next_hop = self._tree.route_next_hop(
            self.node_id, message.dest_address
        )
        self._outgoing = message.rehop(self.node_id, next_hop)

    def on_slot(self, slot: int):
        if self._outgoing is None:
            return None
        message = self._outgoing
        self._outgoing = None
        return Transmission(message, 0)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        if not isinstance(payload, DataMessage):
            return
        if payload.hop_dest != self.node_id:
            return
        self.hold(payload)

    def is_done(self) -> bool:
        return self._outgoing is None


@dataclass
class SequentialResult:
    slots: int
    delivered: int
    stats: NetworkStats
    hop_total: int  # sum of path lengths (the analytic cost)


def run_sequential_p2p(
    graph: Graph,
    tree: BFSTree,
    transmissions: List[Tuple[NodeId, NodeId, Any]],
    max_slots: Optional[int] = None,
) -> SequentialResult:
    """Route the batch one message at a time over the tree.

    Each message traverses its tree path at one hop per slot with no
    possible conflict (a single transmitter exists network-wide); the next
    message is injected only after the previous one is delivered.  This is
    deliberately generous to the baseline: injection reacts instantly,
    with no coordination overhead charged.
    """
    if not tree.has_dfs_intervals:
        raise ConfigurationError("sequential baseline needs a prepared tree")
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, SequentialForwardProcess] = {}
    for node in graph.nodes:
        process = SequentialForwardProcess(node, tree)
        processes[node] = process
        network.attach(process)
    hop_total = 0
    serial = 0
    for source, dest, payload in transmissions:
        hop_total += max(0, len(tree.tree_path(source, dest)) - 1)
        message = DataMessage(
            msg_id=(source, serial),
            origin=source,
            hop_sender=source,
            hop_dest=source,
            dest_address=tree.dfs_number[dest],
            payload=payload,
        )
        serial += 1
        destination_process = processes[dest]
        before = len(destination_process.delivered)
        processes[source].hold(message)
        budget = (
            max_slots if max_slots is not None else 4 * graph.num_nodes + 16
        )
        if len(destination_process.delivered) == before:
            network.run(
                budget,
                until=lambda net: len(destination_process.delivered) > before,
            )
    return SequentialResult(
        slots=network.slot,
        delivered=sum(len(p.delivered) for p in processes.values()),
        stats=network.stats,
        hop_total=hop_total,
    )


def sequential_reference_slots(
    transmissions: List[Tuple[NodeId, NodeId, Any]], tree: BFSTree
) -> int:
    """Analytic cost of the baseline: the sum of tree-path lengths."""
    return sum(
        max(0, len(tree.tree_path(src, dst)) - 1)
        for src, dst, _payload in transmissions
    )
