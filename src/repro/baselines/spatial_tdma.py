"""Spatial-reuse TDMA: the strong deterministic convergecast baseline.

Plain round-robin TDMA (`repro.baselines.tdma`) wastes the whole network
on one transmitter per slot.  The classical improvement is a
**distance-2 coloring** schedule: stations within two hops get distinct
colors, the frame has one slot per color, and a station transmits in its
color's slot.  Then in any slot the transmitters are pairwise ≥ 3 hops
apart, so *no* station has two transmitting neighbors — every
transmission is received — and a frame of at most Δ²+1 slots moves one
message per backlogged station per frame.

This is the deterministic protocol the paper's randomized Decay actually
has to beat: frames cost O(Δ²) versus Decay's O(log Δ) phases.  Decay
wins whenever Δ² ≫ log Δ, i.e. everywhere except degree-2-ish networks —
which experiment E10a quantifies.

The coloring itself is computed centrally (greedy over the square graph)
— charitable to the baseline, standing in for an offline compiled
schedule; computing it *distributedly* in a radio network is its own
research problem, which is part of the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.baselines.tdma import TdmaCollectionProcess
from repro.core.tree import tree_info_from_bfs_tree
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.trace import NetworkStats


def distance2_coloring(graph: Graph) -> Dict[NodeId, int]:
    """Greedy coloring of the square graph (distance ≤ 2 conflicts).

    Colors stations in sorted-ID order with the smallest color unused in
    their two-hop neighborhood; uses at most Δ² + 1 colors.
    """
    colors: Dict[NodeId, int] = {}
    for node in graph.nodes:
        forbidden = set()
        for neighbor in graph.neighbors(node):
            if neighbor in colors:
                forbidden.add(colors[neighbor])
            for second in graph.neighbors(neighbor):
                if second != node and second in colors:
                    forbidden.add(colors[second])
        color = 0
        while color in forbidden:
            color += 1
        colors[node] = color
    return colors


def verify_distance2_coloring(
    graph: Graph, colors: Dict[NodeId, int]
) -> bool:
    """Whether ``colors`` is a valid distance-2 coloring of ``graph``."""
    for node in graph.nodes:
        two_hop = set(graph.neighbors(node))
        for neighbor in graph.neighbors(node):
            two_hop.update(graph.neighbors(neighbor))
        two_hop.discard(node)
        if any(colors[other] == colors[node] for other in two_hop):
            return False
    return True


@dataclass
class SpatialTdmaResult:
    slots: int
    frames: int
    frame_length: int  # number of colors
    delivered: List[Any]
    stats: NetworkStats


def run_spatial_tdma_collection(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    max_slots: Optional[int] = None,
) -> SpatialTdmaResult:
    """Deterministic convergecast on the distance-2-colored schedule.

    Reuses the TDMA process (a station owning slot ``color`` of each
    frame transmits its buffer head to its BFS parent); the coloring
    guarantees reception, so the no-ack forwarding stays correct.
    """
    unknown = set(sources) - set(graph.nodes)
    if unknown:
        raise ConfigurationError(f"unknown stations {sorted(unknown)!r}")
    colors = distance2_coloring(graph)
    frame_length = max(colors.values()) + 1 if colors else 1
    infos = tree_info_from_bfs_tree(tree)
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, TdmaCollectionProcess] = {}
    for node in graph.nodes:
        process = TdmaCollectionProcess(
            info=infos[node],
            rank=colors[node],
            frame_length=frame_length,
            initial_payloads=sources.get(node, ()),
        )
        processes[node] = process
        network.attach(process)
    total = sum(len(v) for v in sources.values())
    root_process = processes[tree.root]
    if max_slots is None:
        max_slots = max(
            10_000, 4 * frame_length * (total + tree.depth + 2)
        )
    network.run(
        max_slots,
        until=lambda net: len(root_process.delivered) >= total,
    )
    return SpatialTdmaResult(
        slots=network.slot,
        frames=-(-network.slot // frame_length),
        frame_length=frame_length,
        delivered=list(root_process.delivered),
        stats=network.stats,
    )


def spatial_tdma_reference_slots(
    k: int, depth: int, num_colors: int
) -> float:
    """Worst-case reference: (k + D) frames of ``num_colors`` slots."""
    return float((k + depth) * num_colors)
