"""Slotted-ALOHA retransmission policy — the classical alternative to Decay.

Decay's geometric back-off needs no knowledge beyond the Δ bound and wins
its 1/2 success guarantee in ``2·log Δ`` slots.  The classical slotted
ALOHA alternative transmits in every slot independently with probability
``p`` (optimally ``p = 1/m`` for m contenders, giving success probability
``m·p·(1−p)^(m−1) → 1/e`` per slot *if m is known*).  Since stations only
know Δ, fixed ``p = 1/Δ`` over-throttles small contender sets: with m ≪ Δ
the per-slot success rate is ≈ m/Δ, so a window of 2·log Δ slots succeeds
with probability ≈ 1 − (1 − m/Δ)^(2 log Δ) ≪ 1/2.

Experiment E12 plugs :class:`AlohaSession` into the transport lane (same
window length as Decay) and measures the end-to-end slowdown.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import ConfigurationError


class AlohaSession:
    """Per-phase session: transmit each opportunity w.p. ``p``.

    Implements the same interface as
    :class:`repro.core.decay.DecaySession` so it can be swapped into
    :class:`repro.core.transport.TransportLane` via ``session_factory``.
    """

    def __init__(self, probability: float, rng: random.Random):
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"transmission probability must be in (0,1], got {probability}"
            )
        self.probability = probability
        self._rng = rng
        self._killed = False

    @property
    def alive(self) -> bool:
        return not self._killed

    def should_transmit(self) -> bool:
        if self._killed:
            return False
        return self._rng.random() < self.probability

    def kill(self) -> None:
        self._killed = True


def aloha_session_factory(
    probability: float, rng: random.Random
) -> Callable[[], AlohaSession]:
    """A ``session_factory`` for TransportLane using slotted ALOHA."""
    return lambda: AlohaSession(probability, rng)


def aloha_success_probability(
    num_transmitters: int, probability: float, window: int
) -> float:
    """P[some slot in the window has exactly one transmitter].

    Closed form for a star of independent ALOHA transmitters: per slot,
    ``m·p·(1−p)^(m−1)``; over a window of w independent slots,
    ``1 − (1 − s)^w``.
    """
    if num_transmitters < 1:
        raise ConfigurationError("need at least one transmitter")
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    if not 0.0 < probability <= 1.0:
        raise ConfigurationError("probability must be in (0,1]")
    per_slot = (
        num_transmitters
        * probability
        * (1.0 - probability) ** (num_transmitters - 1)
    )
    return 1.0 - (1.0 - per_slot) ** window
