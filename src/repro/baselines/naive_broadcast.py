"""Non-pipelined broadcast baseline: one full BGI flood per message.

§6 motivates pipelining by pricing the alternative: "In principle the
message can be sent using the BFS protocol.  However, each message would
require 2·D·log Δ·log n time to reach all the nodes with probability
1−ε."  This module implements exactly that alternative — for each of the
k messages, run a complete Decay-relay flood from the root and only then
start the next message — so experiment E10 can measure the pipelining
gain (≈ min(k, D)× for k ≫ D).

The flood is the BGI broadcast skeleton: a station that knows the message
keeps re-broadcasting it with window-aligned Decay invocations
(:class:`repro.core.decay.DecayRelay`).  Per-message completion is
detected omnisciently by the driver (all stations informed), which is,
again, *generous to the baseline* — a real deployment would have to run
each flood for its full 1−ε time budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.decay import DecayRelay
from repro.core.slots import decay_budget
from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.rng import RngFactory


@dataclass
class FloodResult:
    slots: int
    informed: int


@dataclass
class NaiveBroadcastResult:
    slots: int  # total measured slots across all k sequential floods
    per_message_slots: List[int]
    messages: int
    charged_slots: int = 0  # total under the protocol's whp schedule

    @property
    def fair_slots(self) -> int:
        """What the baseline actually costs as a *protocol*.

        The measured slots use the simulator's omniscient "everyone is
        informed" detector, which no real radio deployment has; a real
        flood must run for its full 1−ε budget before the next message may
        start (§6: "each message would require 2·D·log Δ·log n time to
        reach all the nodes with probability 1−ε").  Per message we charge
        ``max(measured, whp budget)``, aggregated here.
        """
        return max(self.slots, self.charged_slots)


def run_single_flood(
    graph: Graph,
    source: NodeId,
    payload: Any,
    seed: int,
    repetitions: Optional[int] = None,
    max_slots: Optional[int] = None,
) -> FloodResult:
    """Flood one message from ``source`` to every station (BGI broadcast)."""
    if source not in graph:
        raise ConfigurationError(f"unknown source {source!r}")
    factory = RngFactory(seed)
    budget = decay_budget(graph.max_degree())
    n = graph.num_nodes
    if repetitions is None:
        # Enough invocations that a station keeps transmitting for the
        # whole flood: the message needs ≤ D ≤ n hops, each expected O(1)
        # invocations; 2·(n + log n) is a generous per-station duty.
        repetitions = 2 * (n + max(1, math.ceil(math.log2(max(2, n)))))
    network = RadioNetwork(graph, num_channels=1)
    processes: Dict[NodeId, DecayRelay] = {}
    for node in graph.nodes:
        process = DecayRelay(
            node_id=node,
            budget=budget,
            repetitions=repetitions,
            rng=factory.for_node(node),
            initial_payload=payload if node == source else None,
        )
        processes[node] = process
        network.attach(process)
    if max_slots is None:
        max_slots = max(20_000, 64 * n * budget)
    network.run(
        max_slots,
        until=lambda net: all(p.informed for p in processes.values()),
    )
    return FloodResult(
        slots=network.slot,
        informed=sum(1 for p in processes.values() if p.informed),
    )


def flood_whp_budget(depth: int, n: int, max_degree: int) -> int:
    """The slot budget one BGI flood needs for whp (ε = 1/n²) completion.

    ``(D + 2·ceil(log2 n))`` window-aligned Decay invocations of
    ``2·ceil(log2 Δ)`` slots each — the §6 price of the non-pipelined
    alternative, with the diameter charitably assumed known.
    """
    from repro.core.slots import decay_budget

    invocations = max(1, depth) + 2 * max(1, math.ceil(math.log2(max(2, n))))
    return invocations * decay_budget(max_degree)


def run_naive_broadcast(
    graph: Graph,
    root: NodeId,
    k: int,
    seed: int,
    max_slots_per_message: Optional[int] = None,
) -> NaiveBroadcastResult:
    """k sequential floods from the root; no pipelining.

    (The collection leg — sources to root — is identical in both designs,
    so the comparison isolates distribution, which is where pipelining
    acts.)  ``slots`` reports the omnisciently-detected completion times;
    ``charged_slots``/``fair_slots`` report the cost under the whp
    schedule a real deployment must run (see :func:`flood_whp_budget`).
    """
    if k < 0:
        raise ConfigurationError(f"need k >= 0, got {k}")
    from repro.graphs.properties import eccentricity

    depth = eccentricity(graph, root) if graph.num_nodes > 1 else 0
    budget_per_flood = flood_whp_budget(
        depth, graph.num_nodes, graph.max_degree()
    )
    per_message = []
    charged = 0
    for index in range(k):
        result = run_single_flood(
            graph,
            root,
            payload=("naive", index),
            seed=seed + 31 * index,
            max_slots=max_slots_per_message,
        )
        per_message.append(result.slots)
        charged += max(result.slots, budget_per_flood)
    return NaiveBroadcastResult(
        slots=sum(per_message),
        per_message_slots=per_message,
        messages=k,
        charged_slots=charged,
    )


def naive_broadcast_reference_slots(
    k: int, depth: int, max_degree: int, n: int
) -> float:
    """§6's price for the alternative: ``k × 2·D·log Δ·log n``."""
    log_n = math.log2(max(2, n))
    log_delta = math.log2(max(2, max_degree))
    return k * 2.0 * max(1, depth) * log_delta * log_n


def staged_flood_slots(depth: int, n: int, max_degree: int) -> int:
    """Deterministic schedule length of ONE staged (BFS-protocol) flood.

    This is exactly the alternative §6 prices at "2·D·log Δ·log n time …
    with probability 1−ε": the message descends stage by stage, each level
    relaying for ``2·ceil(log2 n)`` window-aligned Decay invocations of
    ``2·ceil(log2 Δ)`` slots (ε = 1/n² per hop).  The schedule is fixed a
    priori — its cost needs no simulation — and it is the natural
    apples-to-apples baseline for the pipelined distribution, whose
    superphases are the very same per-level windows.
    """
    from repro.core.slots import decay_budget

    invocations = max(1, 2 * math.ceil(math.log2(max(2, n))))
    return max(1, depth) * invocations * decay_budget(max_degree)
