"""Quick self-check: verify the paper's headline claims in ~half a minute.

``python -m repro validate`` runs a fast (reduced-replication) version of
each headline experiment and prints PASS/FAIL per claim.  It is *not* a
substitute for the full harness (``pytest benchmarks/ --benchmark-only``)
— replication counts are small — but it lets a downstream user confirm in
seconds that their installation reproduces the paper.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List

from repro.rng import RngFactory

ROOT_SEED = 987_654_321


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str


def _check_decay_property() -> CheckResult:
    from repro.core import decay_budget, success_probability_exact

    worst = 1.0
    for delta in (4, 16, 64):
        budget = decay_budget(delta)
        for m in (2, delta // 2, delta):
            worst = min(worst, float(success_probability_exact(m, budget)))
    return CheckResult(
        name="Decay property (2): P[hear] ≥ 1/2",
        passed=worst >= 0.5,
        detail=f"worst case over Δ ∈ {{4,16,64}}: {worst:.3f}",
    )


def _check_collection_bound() -> CheckResult:
    from repro.core import expected_collection_slots, run_collection
    from repro.graphs import path, reference_bfs_tree

    graph = path(12)
    tree = reference_bfs_tree(graph, 0)
    k = 8
    factory = RngFactory(ROOT_SEED)
    slots = [
        run_collection(
            graph, tree, {11: ["m"] * k}, seed=seed
        ).slots
        for seed in factory.spawn(1).replication_seeds(5)
    ]
    mean = sum(slots) / len(slots)
    bound = expected_collection_slots(
        k, tree.depth, graph.max_degree(), level_classes=3
    )
    return CheckResult(
        name="Thm 4.4: k-collection ≤ 32.27(k+D)logΔ",
        passed=mean <= bound,
        detail=f"measured {mean:.0f} slots vs bound {bound:.0f}",
    )


def _check_model_chain() -> CheckResult:
    from repro.core import LAMBDA_STAR, MU, run_collection
    from repro.graphs import path, reference_bfs_tree
    from repro.queueing import (
        model4_prediction,
        radio_completion_phases,
        simulate_model2,
        simulate_model4,
    )

    depth, k = 5, 4
    graph = path(depth + 1)
    tree = reference_bfs_tree(graph, 0)
    factory = RngFactory(ROOT_SEED)
    t1 = 0.0
    reps = 10
    for seed in factory.spawn(2).replication_seeds(reps):
        result = run_collection(graph, tree, {depth: ["m"] * k}, seed=seed)
        t1 += radio_completion_phases(
            result.slots, result.slot_structure.phase_length
        )
    t1 /= reps
    sim_reps = 200
    t2 = (
        sum(
            simulate_model2(
                (0,) * (depth - 1) + (k,), MU, random.Random(s)
            ).steps
            for s in factory.spawn(3).replication_seeds(sim_reps)
        )
        / sim_reps
    )
    t4 = (
        sum(
            simulate_model4(k, depth, MU, LAMBDA_STAR, random.Random(s)).steps
            for s in factory.spawn(4).replication_seeds(sim_reps)
        )
        / sim_reps
    )
    closed = model4_prediction(k, depth, mu=MU, lam=LAMBDA_STAR)
    ok = t1 <= t2 * 1.1 and t2 <= t4 * 1.1 and abs(t4 - closed) / closed < 0.2
    return CheckResult(
        name="§4.2 model chain: T1 ≤ T2 ≤ T4 ≈ Thm 4.3",
        passed=ok,
        detail=f"T1={t1:.1f} T2={t2:.1f} T4={t4:.1f} thm={closed:.1f}",
    )


def _check_queueing_forms() -> CheckResult:
    from repro.queueing import (
        expected_queue_length,
        expected_sojourn_time,
        observe_single_server,
    )

    lam, mu = 0.1, 0.3
    obs = observe_single_server(
        lam, mu, steps=40_000, rng=random.Random(ROOT_SEED)
    )
    n_err = abs(obs.mean_queue_length - expected_queue_length(lam, mu))
    t_err = abs(obs.mean_sojourn_time - expected_sojourn_time(lam, mu))
    ok = n_err < 0.1 and t_err < 0.8 and abs(obs.departure_rate - lam) < 0.01
    return CheckResult(
        name="Geo/Geo/1 closed forms (Burke/Hsu–Burke)",
        passed=ok,
        detail=(
            f"N̄ err {n_err:.3f}, E(T) err {t_err:.3f}, "
            f"dep rate {obs.departure_rate:.3f} ≈ λ={lam}"
        ),
    )


def _check_setup_and_services() -> CheckResult:
    from repro.core import (
        apply_preparation,
        run_broadcast,
        run_dfs_preparation,
        run_ranking,
        run_setup,
    )
    from repro.graphs import grid

    graph = grid(3, 3)
    setup = run_setup(graph, root=0, seed=ROOT_SEED)
    tree = setup.tree
    prep = run_dfs_preparation(graph, tree)
    apply_preparation(tree, prep)
    broadcast = run_broadcast(graph, tree, {4: ["x"]}, seed=ROOT_SEED)
    ranking = run_ranking(graph, tree, seed=ROOT_SEED)
    ok = (
        setup.is_true_bfs
        and broadcast.delivered_everywhere
        and ranking.ranks == {n: n + 1 for n in graph.nodes}
    )
    return CheckResult(
        name="end-to-end: setup → DFS prep → broadcast → ranking",
        passed=ok,
        detail=(
            f"setup {setup.slots} slots, broadcast {broadcast.slots}, "
            f"ranking {ranking.slots}"
        ),
    )


def _check_ack_determinism() -> CheckResult:
    from repro.core import run_collection
    from repro.graphs import layered_band, reference_bfs_tree

    graph = layered_band(3, 4)
    tree = reference_bfs_tree(graph, 0)
    sources = {n: ["a", "b"] for n in graph.nodes if n != 0}
    # strict=True raises on any Thm 3.1 violation.
    for seed in range(5):
        run_collection(graph, tree, sources, seed=seed, strict=True)
    return CheckResult(
        name="Thm 3.1: deterministic acks (no duplicates, 5 seeds)",
        passed=True,
        detail="strict mode raised no protocol errors",
    )


CHECKS: List[Callable[[], CheckResult]] = [
    _check_decay_property,
    _check_collection_bound,
    _check_model_chain,
    _check_queueing_forms,
    _check_setup_and_services,
    _check_ack_determinism,
]


def run_validation(verbose: bool = True) -> List[CheckResult]:
    """Run all quick checks; returns the results (and prints them)."""
    results = []
    for check in CHECKS:
        try:
            result = check()
        except Exception as error:  # a crash is a failure, with context
            result = CheckResult(
                name=getattr(check, "__name__", "check"),
                passed=False,
                detail=f"raised {type(error).__name__}: {error}",
            )
        results.append(result)
        if verbose:
            status = "PASS" if result.passed else "FAIL"
            print(f"[{status}] {result.name}")
            print(f"       {result.detail}")
    if verbose:
        failed = sum(1 for r in results if not r.passed)
        print(
            f"\n{len(results) - failed}/{len(results)} claims verified"
            + ("" if failed == 0 else f" — {failed} FAILED")
        )
    return results
