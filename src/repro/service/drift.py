"""Backlog-drift stability test for open-system runs.

§4's stability condition is λ < µ: below it the tandem's queues are
positive recurrent and the time-averaged backlog converges; above it
backlog grows linearly in time.  The detector turns that dichotomy into
a constant-memory test on *windowed queue lengths*:

* a streaming least-squares regression of backlog against slot (running
  sums only) gives the backlog growth rate ``slope``;
* head/tail window means (the first and last ``edge_fraction`` of the
  measured span, accumulated online because the span is known up front)
  give the level shift ``tail_mean − head_mean``.

The run is declared **unstable** when both agree: the regression
projects a material rise over the measured span *and* the tail windows
actually sit materially above the head windows.  Requiring both keeps
the test robust on stable-but-noisy queues (a lucky early sample does
not condemn the run) and on unstable ones (linear growth moves both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.service.streaming import Welford


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of the stability test over one measured span."""

    stable: bool
    slope_per_kslot: float  # backlog growth per 1000 slots
    projected_rise: float  # slope × measured span, in messages
    head_mean: float
    tail_mean: float
    mean_backlog: float
    samples: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stable": self.stable,
            "slope_per_kslot": self.slope_per_kslot,
            "projected_rise": self.projected_rise,
            "head_mean": self.head_mean,
            "tail_mean": self.tail_mean,
            "mean_backlog": self.mean_backlog,
            "samples": self.samples,
        }


class BacklogDriftDetector:
    """Streaming stability test on backlog samples over a known span.

    Parameters
    ----------
    start_slot, end_slot:
        The measured span (post-warmup): samples outside it are ignored.
    edge_fraction:
        Width of the head and tail comparison windows as a fraction of
        the span (default 0.25: first vs last quarter).
    rise_slack:
        Absolute rise (in messages) always tolerated — absorbs the
        integer-valued jitter of near-empty queues.
    rise_factor:
        Relative rise tolerated: the tail may sit up to
        ``rise_factor × max(1, head_mean)`` above the head before the
        shift counts as drift.
    """

    def __init__(
        self,
        start_slot: int,
        end_slot: int,
        edge_fraction: float = 0.25,
        rise_slack: float = 3.0,
        rise_factor: float = 0.75,
    ):
        if end_slot <= start_slot:
            raise ConfigurationError(
                f"empty drift span [{start_slot}, {end_slot})"
            )
        if not 0.0 < edge_fraction <= 0.5:
            raise ConfigurationError(
                f"edge_fraction must be in (0, 0.5], got {edge_fraction}"
            )
        self.start_slot = start_slot
        self.end_slot = end_slot
        self.rise_slack = rise_slack
        self.rise_factor = rise_factor
        span = end_slot - start_slot
        self._head_end = start_slot + edge_fraction * span
        self._tail_start = end_slot - edge_fraction * span
        self._head = Welford()
        self._tail = Welford()
        self._all = Welford()
        # Running sums for the least-squares slope of backlog vs slot;
        # x is recentred on start_slot to keep the sums well-conditioned.
        self._n = 0
        self._sx = 0.0
        self._sy = 0.0
        self._sxx = 0.0
        self._sxy = 0.0

    def observe(self, slot: int, backlog: float) -> None:
        """Record one windowed backlog sample (O(1) state)."""
        if slot < self.start_slot or slot >= self.end_slot:
            return
        x = float(slot - self.start_slot)
        self._n += 1
        self._sx += x
        self._sy += backlog
        self._sxx += x * x
        self._sxy += x * backlog
        self._all.add(backlog)
        if slot < self._head_end:
            self._head.add(backlog)
        if slot >= self._tail_start:
            self._tail.add(backlog)

    @property
    def slope(self) -> float:
        """Least-squares backlog growth per slot (0 until 2 samples)."""
        if self._n < 2:
            return 0.0
        denom = self._n * self._sxx - self._sx * self._sx
        if denom == 0.0:
            return 0.0
        return (self._n * self._sxy - self._sx * self._sy) / denom

    def verdict(self) -> DriftVerdict:
        span = self.end_slot - self.start_slot
        slope = self.slope
        projected = slope * span
        head = self._head.mean if self._head.count else 0.0
        tail = self._tail.mean if self._tail.count else 0.0
        rise = tail - head
        allowed = max(self.rise_slack, self.rise_factor * max(1.0, head))
        drifting = rise > allowed and projected > allowed
        return DriftVerdict(
            stable=not drifting,
            slope_per_kslot=slope * 1000.0,
            projected_rise=projected,
            head_mean=head,
            tail_mean=tail,
            mean_backlog=self._all.mean if self._all.count else 0.0,
            samples=self._n,
        )
