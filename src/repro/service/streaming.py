"""Compatibility shim: the streaming estimators moved to
:mod:`repro.analysis.sketches` so the scenario KPI processor can share
them.  Existing ``repro.service.streaming`` imports keep working.
"""

from repro.analysis.sketches import P2Quantile, RateWindow, Welford

__all__ = ["P2Quantile", "RateWindow", "Welford"]
