"""Open-system service mode: streaming arrivals, constant-memory KPIs.

The subsystem that runs the protocols the way §4 analyzes them — as an
open queueing system under an unbounded arrival stream — instead of as
bounded k-message runs:

* :mod:`~repro.service.streaming` — O(1) estimators (Welford moments,
  P² quantile sketches, windowed rate counters);
* :mod:`~repro.service.drift` — the backlog-drift stability test;
* :mod:`~repro.service.loop` — the service loop itself: per-slot
  arrival injection, delivery absorption, warmup truncation, no
  per-message retention;
* :mod:`~repro.service.sweep` — capacity probing, saturation sweeps
  locating the stability knee, and the `repro.queueing` tandem oracle
  comparison.

CLI: ``python -m repro service`` — runner experiments E19 (open-system
KPIs) and E20 (saturation sweep) are registered in
:mod:`repro.runner.defs`.
"""

from repro.service.drift import BacklogDriftDetector, DriftVerdict
from repro.service.loop import (
    SERVICE_DEDUP_WINDOW,
    ArrivalAdapter,
    ServiceKPIs,
    run_service,
)
from repro.service.streaming import P2Quantile, RateWindow, Welford
from repro.service.sweep import (
    OracleComparison,
    SweepPoint,
    SweepResult,
    compare_with_oracle,
    measure_capacity,
    saturation_sweep,
    sweep_rates,
)

__all__ = [
    "ArrivalAdapter",
    "BacklogDriftDetector",
    "DriftVerdict",
    "OracleComparison",
    "P2Quantile",
    "RateWindow",
    "SERVICE_DEDUP_WINDOW",
    "ServiceKPIs",
    "SweepPoint",
    "SweepResult",
    "Welford",
    "compare_with_oracle",
    "measure_capacity",
    "run_service",
    "saturation_sweep",
    "sweep_rates",
]
