"""Saturation sweeps and the tandem-queue oracle comparison.

The §4 analysis (Lemmas 4.5–4.15) models the collection pipeline as a
tandem of Bernoulli servers: stable for λ < µ with closed-form sojourn
``E(T) = D·(1−λ)/(µ−λ)`` phases and per-level queue length
``N̄ = λ(1−λ)/(µ−λ)`` (Little's law), unstable beyond the critical
rate.  This module asks the *simulated radio network* the same
questions:

* :func:`measure_capacity` saturates the pipeline and measures its
  effective aggregate service rate µ_eff (messages per phase at the
  root) — the analysis's µ is a worst-case lower bound; the measured
  pipeline serves faster, so predictions use µ_eff;
* :func:`compare_with_oracle` plugs the measured offered load and
  µ_eff into :mod:`repro.queueing.analysis` and reports
  measured/predicted ratios for sojourn time and queue length;
* :func:`saturation_sweep` walks λ upward across the predicted
  critical rate and locates the *stability knee* — the bracket
  ``(last stable λ, first unstable λ)`` — with the
  :class:`~repro.service.drift.BacklogDriftDetector` backlog-drift
  test as the instability criterion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.queueing.analysis import (
    expected_queue_length,
    expected_sojourn_time,
)
from repro.rng import derive_seed
from repro.service.loop import ServiceKPIs, run_service
from repro.workloads.arrivals import BernoulliArrivals


@dataclass(frozen=True)
class OracleComparison:
    """Measured KPIs vs the Geo/Geo/1 tandem's closed forms.

    ``lam_per_phase`` is the *aggregate* offered load (all sources) and
    ``mu_per_phase`` the measured saturation throughput µ_eff; every
    message traverses ``depth`` tandem stages.  Ratios are
    measured/predicted (NaN when λ ≥ µ_eff, where the closed forms
    diverge).
    """

    lam_per_phase: float
    mu_per_phase: float
    depth: int
    predicted_sojourn_phases: float
    measured_sojourn_phases: float
    predicted_queue_mean: float
    measured_queue_mean: float

    @property
    def sojourn_ratio(self) -> float:
        if not self.predicted_sojourn_phases > 0.0:
            return float("nan")
        return self.measured_sojourn_phases / self.predicted_sojourn_phases

    @property
    def queue_ratio(self) -> float:
        if not self.predicted_queue_mean > 0.0:
            return float("nan")
        return self.measured_queue_mean / self.predicted_queue_mean

    def to_dict(self) -> Dict[str, float]:
        return {
            "lam_per_phase": self.lam_per_phase,
            "mu_per_phase": self.mu_per_phase,
            "oracle_depth": self.depth,
            "predicted_sojourn_phases": self.predicted_sojourn_phases,
            "measured_sojourn_phases": self.measured_sojourn_phases,
            "sojourn_ratio": self.sojourn_ratio,
            "predicted_queue_mean": self.predicted_queue_mean,
            "measured_queue_mean": self.measured_queue_mean,
            "queue_ratio": self.queue_ratio,
        }


def measure_capacity(
    graph: Graph,
    tree: BFSTree,
    sources: Sequence[NodeId],
    seed: int,
    phases: int = 300,
    level_classes: int = 3,
) -> float:
    """Effective aggregate service rate µ_eff, in messages per phase.

    Saturates the pipeline (every source originates every phase, the
    densest Bernoulli stream) and measures the root's post-warmup
    delivery throughput — the standard capacity probe of an open
    system.  The result is clamped to 1.0: the root accepts at most one
    designated message per phase, so any excess is measurement jitter.
    """
    kpis = _run_cell(
        graph, tree, sources, rate=1.0, seed=derive_seed(seed, "capacity"),
        phases=phases, level_classes=level_classes, warmup_fraction=0.5,
    )
    return min(1.0, kpis.throughput_per_phase)


def compare_with_oracle(
    kpis: ServiceKPIs, capacity_per_phase: float
) -> OracleComparison:
    """Compare one run's KPIs against the tandem closed forms.

    Uses the run's measured aggregate offered load as λ and the probed
    µ_eff as µ.  Predictions: sojourn ``D·(1−λ)/(µ−λ)`` phases, total
    queued backlog ``D·λ(1−λ)/(µ−λ)`` (each of the D levels is one
    Geo/Geo/1 server seeing the aggregate stream, Hsu–Burke).
    """
    lam = kpis.offered_per_phase
    mu = min(1.0, capacity_per_phase)
    if 0.0 < lam < mu <= 1.0:
        predicted_sojourn = kpis.depth * expected_sojourn_time(lam, mu)
        predicted_queue = kpis.depth * expected_queue_length(lam, mu)
    else:
        predicted_sojourn = float("nan")
        predicted_queue = float("nan")
    return OracleComparison(
        lam_per_phase=lam,
        mu_per_phase=mu,
        depth=kpis.depth,
        predicted_sojourn_phases=predicted_sojourn,
        measured_sojourn_phases=kpis.sojourn_phases,
        predicted_queue_mean=predicted_queue,
        measured_queue_mean=kpis.queue_mean,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One λ of a saturation sweep."""

    rate_per_source: float
    rate_aggregate: float
    stable: bool
    sojourn_phases: float
    queue_mean: float
    throughput_per_phase: float
    drift_tail_mean: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate_per_source": self.rate_per_source,
            "rate_aggregate": self.rate_aggregate,
            "stable": self.stable,
            "sojourn_phases": self.sojourn_phases,
            "queue_mean": self.queue_mean,
            "throughput_per_phase": self.throughput_per_phase,
            "drift_tail_mean": self.drift_tail_mean,
        }


@dataclass(frozen=True)
class SweepResult:
    """A saturation sweep and its detected stability knee.

    The knee is the bracket ``(knee_low, knee_high)``: the largest
    per-source λ the drift test still calls stable and the smallest it
    calls unstable (NaN when the sweep never destabilized).  The
    analytic critical rate is µ_eff divided over the sources; the
    acceptance check is that the knee brackets it.
    """

    points: Tuple[SweepPoint, ...]
    capacity_per_phase: float
    sources: int
    critical_rate_per_source: float
    knee_low: float
    knee_high: float

    @property
    def knee_found(self) -> bool:
        return not math.isnan(self.knee_high)

    def knee_brackets_critical(self, tolerance: float = 0.35) -> bool:
        """Does the detected knee agree with the analytic critical λ?

        True when the bracket, widened by ``tolerance`` (a relative
        margin absorbing finite-horizon drift-test conservatism),
        contains the analytic critical rate.
        """
        if not self.knee_found:
            return False
        low = self.knee_low * (1.0 - tolerance)
        high = self.knee_high * (1.0 + tolerance)
        return low <= self.critical_rate_per_source <= high

    def to_metrics(self) -> Dict[str, Any]:
        return {
            "capacity_per_phase": self.capacity_per_phase,
            "sources": self.sources,
            "critical_rate_per_source": self.critical_rate_per_source,
            "knee_low": self.knee_low,
            "knee_high": self.knee_high,
            "knee_found": self.knee_found,
            "knee_brackets_critical": self.knee_brackets_critical(),
            "points": len(self.points),
        }


def sweep_rates(
    critical_rate: float, points: int, low: float = 0.4, high: float = 1.6
) -> List[float]:
    """Per-source rates spanning the predicted knee, clamped to (0, 1]."""
    if points < 2:
        raise ConfigurationError("a sweep needs at least 2 points")
    rates = []
    for i in range(points):
        factor = low + (high - low) * i / (points - 1)
        rates.append(min(1.0, max(1e-4, critical_rate * factor)))
    return sorted(set(rates))


def saturation_sweep(
    graph: Graph,
    tree: BFSTree,
    sources: Sequence[NodeId],
    seed: int,
    points: int = 7,
    phases_per_point: int = 600,
    capacity_phases: int = 300,
    level_classes: int = 3,
    rates: Optional[Sequence[float]] = None,
) -> SweepResult:
    """Walk λ upward and locate the stability knee.

    Each point streams Bernoulli(λ)-per-phase arrivals for
    ``phases_per_point`` phases and applies the backlog-drift test; the
    capacity probe supplies the analytic critical rate
    ``µ_eff / |sources|`` the knee is validated against.
    """
    if not sources:
        raise ConfigurationError("sweep needs at least one source")
    capacity = measure_capacity(
        graph, tree, sources, seed, phases=capacity_phases,
        level_classes=level_classes,
    )
    critical = capacity / len(sources)
    if rates is None:
        rates = sweep_rates(critical, points)
    swept: List[SweepPoint] = []
    for index, rate in enumerate(rates):
        kpis = _run_cell(
            graph, tree, sources, rate=rate,
            seed=derive_seed(seed, "sweep-point", index),
            phases=phases_per_point, level_classes=level_classes,
        )
        swept.append(
            SweepPoint(
                rate_per_source=rate,
                rate_aggregate=rate * len(sources),
                stable=kpis.stable,
                sojourn_phases=kpis.sojourn_phases,
                queue_mean=kpis.queue_mean,
                throughput_per_phase=kpis.throughput_per_phase,
                drift_tail_mean=kpis.drift.tail_mean,
            )
        )
    knee_low = float("nan")
    knee_high = float("nan")
    for point in swept:
        if point.stable:
            knee_low = point.rate_per_source
        else:
            knee_high = point.rate_per_source
            break
    return SweepResult(
        points=tuple(swept),
        capacity_per_phase=capacity,
        sources=len(sources),
        critical_rate_per_source=critical,
        knee_low=knee_low,
        knee_high=knee_high,
    )


def _run_cell(
    graph: Graph,
    tree: BFSTree,
    sources: Sequence[NodeId],
    rate: float,
    seed: int,
    phases: int,
    level_classes: int,
    warmup_fraction: float = 0.25,
) -> ServiceKPIs:
    """One open-system cell at a fixed Bernoulli per-phase rate."""
    from repro.core.slots import SlotStructure, decay_budget

    phase_length = SlotStructure(
        decay_budget(graph.max_degree()), level_classes, True
    ).phase_length
    arrivals = BernoulliArrivals(
        sources=sources,
        rate=rate,
        phase_length=phase_length,
        seed=derive_seed(seed, "arrivals"),
    )
    return run_service(
        graph,
        tree,
        arrivals,
        seed=seed,
        horizon_slots=phases * phase_length,
        warmup_fraction=warmup_fraction,
        level_classes=level_classes,
    )
