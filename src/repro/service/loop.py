"""The open-system service loop: unbounded arrivals, streaming KPIs.

Every other harness in the repo runs a *closed* experiment — k messages
in, convergecast, done.  This loop runs the collection protocol as the
§4 analysis actually models it: an open system fed by an unbounded
per-station arrival stream (Bernoulli per phase, or Poisson in
continuous time), observed in steady state over a long horizon.

Constant-memory contract
------------------------
Peak memory is independent of the horizon.  Nothing per-message is
retained:

* sojourn times feed :class:`~repro.service.streaming.Welford` moments
  and :class:`~repro.service.streaming.P2Quantile` sketches the moment
  a message is delivered, then the delivery record is dropped (the
  root's ``delivered`` list is drained and cleared every slot);
* the submit-slot map covers only *in-flight* messages — bounded by
  the queue backlog, which is itself bounded in the stable λ < µ
  regime (its observed peak is reported as ``in_flight_peak``);
* queue lengths are sampled once per phase into a
  :class:`~repro.service.drift.BacklogDriftDetector` and windowed
  :class:`~repro.service.streaming.RateWindow` counters, all O(1);
* transport-layer duplicate suppression runs with a bounded
  ``dedup_window`` instead of the closed-run unbounded set.

Warmup truncation: deliveries of messages submitted before
``warmup_slots`` are counted but excluded from the KPIs, so the
estimators measure the stationary regime, not the empty-system
transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.collection import build_collection_network
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.service.drift import BacklogDriftDetector, DriftVerdict
from repro.service.streaming import P2Quantile, RateWindow, Welford
from repro.workloads.arrivals import ArrivalProcess

#: Transport dedup-set bound used by service runs: a duplicate is a
#: retransmission after a lost ack and arrives within a couple of phases
#: of the original, so a duplicate would have to survive this many
#: fresher receptions at one station to slip through (impossible in the
#: failure-free model, where Thm 3.1 rules duplicates out entirely).
#: Kept well below any realistic horizon's message count so the bound —
#: not the horizon — sizes the dedup state.
SERVICE_DEDUP_WINDOW = 256

#: Default quantiles the sojourn sketches track.
SOJOURN_QUANTILES = (0.5, 0.9, 0.99)


class ArrivalAdapter:
    """Feeds an :class:`ArrivalProcess` into live collection processes.

    The adapter is the only place submit slots are remembered, and only
    while a message is in flight: ``note_delivered`` pops the entry and
    returns the sojourn.  Its peak size — reported for the
    constant-memory acceptance check — tracks the protocol backlog, not
    the horizon.
    """

    def __init__(self, arrivals: ArrivalProcess, processes) -> None:
        self.arrivals = arrivals
        self.processes = processes
        self._in_flight: Dict[Tuple[NodeId, int], int] = {}
        self.submitted = 0
        self.in_flight_peak = 0

    def inject(self, slot: int) -> int:
        """Submit this slot's arrivals; returns how many were injected."""
        count = 0
        for source, payload in self.arrivals.arrivals_at(slot):
            process = self.processes.get(source)
            if process is None:
                raise ConfigurationError(f"unknown source {source!r}")
            msg_id = process.submit(payload)
            self._in_flight[msg_id] = slot
            count += 1
        if count:
            self.submitted += count
            if len(self._in_flight) > self.in_flight_peak:
                self.in_flight_peak = len(self._in_flight)
        return count

    def note_delivered(self, msg_id: Tuple[NodeId, int]) -> Optional[int]:
        """Forget a delivered message; returns its submit slot."""
        return self._in_flight.pop(msg_id, None)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


@dataclass
class ServiceKPIs:
    """Streaming KPIs of one open-system service run.

    All sojourn figures are in *phases* (the §4 analysis's clock);
    throughput and offered load are per phase, aggregated over all
    sources.  ``measured_*`` fields cover the post-warmup span only.
    """

    horizon_slots: int
    warmup_slots: int
    phase_length: int
    depth: int
    submitted: int
    delivered: int
    measured_delivered: int
    offered_per_phase: float
    throughput_per_phase: float
    sojourn: Welford
    sojourn_quantiles: Dict[float, float]
    queue: Welford
    drift: DriftVerdict
    in_flight_peak: int
    final_backlog: int
    throughput_windows: RateWindow = field(repr=False)

    @property
    def sojourn_phases(self) -> float:
        return self.sojourn.mean if self.sojourn.count else float("nan")

    @property
    def queue_mean(self) -> float:
        return self.queue.mean if self.queue.count else float("nan")

    @property
    def stable(self) -> bool:
        return self.drift.stable

    def to_metrics(self) -> Dict[str, Any]:
        """Flat JSON-scalar dict (runner task results, bench summaries)."""
        out: Dict[str, Any] = {
            "horizon_slots": self.horizon_slots,
            "warmup_slots": self.warmup_slots,
            "phase_length": self.phase_length,
            "depth": self.depth,
            "submitted": self.submitted,
            "delivered": self.delivered,
            "measured_delivered": self.measured_delivered,
            "offered_per_phase": self.offered_per_phase,
            "throughput_per_phase": self.throughput_per_phase,
            "sojourn_phases": self.sojourn_phases,
            "sojourn_stddev_phases": self.sojourn.stddev,
            "queue_mean": self.queue_mean,
            "queue_stddev": self.queue.stddev,
            "stable": self.drift.stable,
            "drift_slope_per_kslot": self.drift.slope_per_kslot,
            "drift_head_mean": self.drift.head_mean,
            "drift_tail_mean": self.drift.tail_mean,
            "in_flight_peak": self.in_flight_peak,
            "final_backlog": self.final_backlog,
        }
        for p, value in sorted(self.sojourn_quantiles.items()):
            out[f"sojourn_p{int(round(p * 100))}_phases"] = value
        return out


def run_service(
    graph: Graph,
    tree: BFSTree,
    arrivals: ArrivalProcess,
    seed: int,
    horizon_slots: int,
    warmup_fraction: float = 0.25,
    level_classes: int = 3,
    quantiles: Tuple[float, ...] = SOJOURN_QUANTILES,
    sample_every_phases: int = 1,
    window_phases: int = 16,
    dedup_window: Optional[int] = SERVICE_DEDUP_WINDOW,
) -> ServiceKPIs:
    """Stream arrivals through collection for ``horizon_slots`` slots.

    Unlike :func:`repro.workloads.run_streaming_collection` this never
    drains and never retains per-message records: it is meant for
    horizons of millions of slots, and its peak memory is a function of
    the topology and the offered load, not of the horizon.
    """
    if horizon_slots < 1:
        raise ConfigurationError("horizon must be >= 1 slot")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0,1), got {warmup_fraction}"
        )
    if sample_every_phases < 1 or window_phases < 1:
        raise ConfigurationError("sampling cadence must be >= 1 phase")

    network, processes, slots = build_collection_network(
        graph, tree, sources={}, seed=seed, level_classes=level_classes,
        dedup_window=dedup_window,
    )
    root_process = processes[tree.root]
    non_root = [p for node, p in processes.items() if node != tree.root]
    phase_length = slots.phase_length
    warmup_slots = int(horizon_slots * warmup_fraction)

    adapter = ArrivalAdapter(arrivals, processes)
    sojourn = Welford()
    sketches = {p: P2Quantile(p) for p in quantiles}
    queue = Welford()
    drift = BacklogDriftDetector(warmup_slots, horizon_slots)
    throughput = RateWindow(window_phases * phase_length)
    measured_delivered = 0
    delivered = 0
    delivered_post_warmup = 0
    sample_every_slots = sample_every_phases * phase_length

    for slot in range(horizon_slots):
        adapter.inject(slot)
        network.step()
        now = network.slot
        if root_process.delivered:
            for message in root_process.delivered:
                delivered += 1
                submitted_slot = adapter.note_delivered(message.msg_id)
                if now >= warmup_slots:
                    # Throughput counts every post-warmup delivery: in an
                    # oversaturated system the messages coming out now
                    # were submitted long ago, and they are exactly the
                    # served traffic a capacity probe must measure.
                    delivered_post_warmup += 1
                    throughput.record(now)
                if submitted_slot is None or submitted_slot < warmup_slots:
                    continue  # warmup truncation for the sojourn KPIs
                measured_delivered += 1
                sojourn_phases = (now - submitted_slot) / phase_length
                sojourn.add(sojourn_phases)
                for sketch in sketches.values():
                    sketch.add(sojourn_phases)
            root_process.delivered.clear()
        if slot % sample_every_slots == 0:
            backlog = sum(p.backlog for p in non_root)
            drift.observe(slot, backlog)
            if slot >= warmup_slots:
                queue.add(backlog)

    throughput.finish(horizon_slots)
    final_backlog = sum(p.backlog for p in non_root)
    return ServiceKPIs(
        horizon_slots=horizon_slots,
        warmup_slots=warmup_slots,
        phase_length=phase_length,
        depth=tree.depth,
        submitted=adapter.submitted,
        delivered=delivered,
        measured_delivered=measured_delivered,
        offered_per_phase=adapter.submitted / max(1, horizon_slots // phase_length),
        throughput_per_phase=delivered_post_warmup * phase_length
        / max(1, horizon_slots - warmup_slots),
        sojourn=sojourn,
        sojourn_quantiles={p: s.value for p, s in sketches.items()},
        queue=queue,
        drift=drift.verdict(),
        in_flight_peak=adapter.in_flight_peak,
        final_backlog=final_backlog,
        throughput_windows=throughput,
    )
