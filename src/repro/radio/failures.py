"""Failure injection for robustness experiments.

The paper's model is failure-free: its acknowledgement determinism
(Theorem 3.1) relies on reception being symmetric and lossless apart from
collisions.  These models let tests and ablation benches explore what
happens *outside* the model — crashed stations and fading links — and
quantify how much of the protocols' correctness is load-bearing on the
model assumptions.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.graphs.graph import NodeId


class FailureModel:
    """No failures: every station is always up, every delivery succeeds."""

    def node_down(self, node: NodeId, slot: int) -> bool:
        """Whether ``node`` is crashed during ``slot``.

        A down station neither transmits nor receives, but it still exists
        in the topology (its presence cannot cause collisions while down).
        """
        return False

    def drop_delivery(
        self, sender: NodeId, receiver: NodeId, slot: int
    ) -> bool:
        """Whether a would-be successful delivery is lost to fading."""
        return False


class CrashSchedule(FailureModel):
    """Stations crash (and optionally recover) at scripted slots.

    ``outages`` maps node -> iterable of (start_slot, end_slot) half-open
    intervals during which the node is down.
    """

    def __init__(
        self, outages: Dict[NodeId, Iterable[Tuple[int, int]]]
    ):
        self._outages: Dict[NodeId, Tuple[Tuple[int, int], ...]] = {
            node: tuple(sorted(spans)) for node, spans in outages.items()
        }
        for node, spans in self._outages.items():
            for start, end in spans:
                if start >= end:
                    raise ValueError(
                        f"empty outage [{start}, {end}) for node {node!r}"
                    )

    def node_down(self, node: NodeId, slot: int) -> bool:
        for start, end in self._outages.get(node, ()):
            if start <= slot < end:
                return True
        return False


class BernoulliLinkLoss(FailureModel):
    """Each would-be delivery is independently lost with probability p."""

    def __init__(self, loss_probability: float, rng: random.Random):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss probability must be in [0,1], got {loss_probability}"
            )
        self.loss_probability = loss_probability
        self._rng = rng

    def drop_delivery(
        self, sender: NodeId, receiver: NodeId, slot: int
    ) -> bool:
        return self._rng.random() < self.loss_probability


class PermanentCrashes(FailureModel):
    """A fixed set of stations is down from a given slot onward."""

    def __init__(self, crashed: Iterable[NodeId], from_slot: int = 0):
        self.crashed: FrozenSet[NodeId] = frozenset(crashed)
        self.from_slot = from_slot

    def node_down(self, node: NodeId, slot: int) -> bool:
        return node in self.crashed and slot >= self.from_slot


class ComposedFailures(FailureModel):
    """Union of several failure models (any says down/drop => down/drop)."""

    def __init__(self, models: Iterable[FailureModel]):
        self.models = tuple(models)

    def node_down(self, node: NodeId, slot: int) -> bool:
        return any(m.node_down(node, slot) for m in self.models)

    def drop_delivery(
        self, sender: NodeId, receiver: NodeId, slot: int
    ) -> bool:
        return any(m.drop_delivery(sender, receiver, slot) for m in self.models)


def no_failures() -> Optional[FailureModel]:
    """The default failure model (None short-circuits engine checks)."""
    return None


# Richer models (churn, fading, regional outages, jamming) live in the
# repro.radio.faults package; re-exported here so callers have one import
# site for everything that plugs into RadioNetwork(failures=...).  This
# import must stay below the base classes the faults package builds on.
from repro.radio.faults import (  # noqa: E402
    AdversarialJammer,
    GilbertElliott,
    MarkovChurn,
    RegionOutage,
    subtree_outage,
)

__all__ = [
    "AdversarialJammer",
    "BernoulliLinkLoss",
    "ComposedFailures",
    "CrashSchedule",
    "FailureModel",
    "GilbertElliott",
    "MarkovChurn",
    "PermanentCrashes",
    "RegionOutage",
    "no_failures",
    "subtree_outage",
]
