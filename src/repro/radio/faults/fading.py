"""Bursty link fading: the Gilbert–Elliott two-state loss model."""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import NodeId
from repro.radio.failures import FailureModel
from repro.rng import child_rng


class GilbertElliott(FailureModel):
    """Per-link good/bad fading with state-dependent loss probabilities.

    Each *directed* link ``(sender, receiver)`` is an independent Markov
    chain over {good, bad}: a good link turns bad with per-slot probability
    ``p_bad`` and a bad one recovers with ``p_good``.  A delivery on a good
    link is lost with probability ``loss_good`` (default 0) and on a bad
    link with ``loss_bad`` (default 1) — the classic model of bursty
    erasures, as opposed to :class:`~repro.radio.failures.BernoulliLinkLoss`
    whose losses are independent across slots.

    The stationary loss rate is ``loss_bad · p_bad / (p_bad + p_good)`` (+
    the ``loss_good`` floor); the mean burst length is ``1/p_good`` slots.

    Link chains are created lazily on first query and advanced lazily to
    the queried slot, each from its own seed-derived stream, so memory and
    work scale with the links actually exercised.
    """

    def __init__(
        self,
        p_bad: float,
        p_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
    ):
        for name, p in (
            ("p_bad", p_bad),
            ("p_good", p_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {p}")
        self.p_bad = p_bad
        self.p_good = p_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.seed = seed
        # link -> (rng, currently_bad, advanced_to_slot)
        self._links: Dict[Tuple[NodeId, NodeId], Tuple[random.Random, bool, int]] = {}

    def _state(self, link: Tuple[NodeId, NodeId], slot: int) -> Tuple[random.Random, bool]:
        entry = self._links.get(link)
        if entry is None:
            rng = child_rng(self.seed, "link", link)
            bad, advanced = False, 0
        else:
            rng, bad, advanced = entry
        if slot > advanced:
            for _ in range(slot - advanced):
                if bad:
                    if self.p_good and rng.random() < self.p_good:
                        bad = False
                elif self.p_bad and rng.random() < self.p_bad:
                    bad = True
            advanced = slot
        self._links[link] = (rng, bad, advanced)
        return rng, bad

    def link_bad(self, sender: NodeId, receiver: NodeId, slot: int) -> bool:
        """Whether the directed link is in the bad state at ``slot``."""
        _, bad = self._state((sender, receiver), slot)
        return bad

    def drop_delivery(
        self, sender: NodeId, receiver: NodeId, slot: int
    ) -> bool:
        rng, bad = self._state((sender, receiver), slot)
        loss = self.loss_bad if bad else self.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return rng.random() < loss
