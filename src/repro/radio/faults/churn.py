"""Churn with recovery: independent per-station up/down Markov chains."""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import NodeId
from repro.radio.failures import FailureModel
from repro.rng import child_rng


class MarkovChurn(FailureModel):
    """Stations crash and recover as independent two-state Markov chains.

    Each eligible station is, in every slot, either *up* or *down*; an up
    station goes down with probability ``fail_rate`` at the next slot and
    a down station comes back with probability ``recover_rate`` — i.e.
    geometric up-times with mean ``1/fail_rate`` and down-times with mean
    ``1/recover_rate``.  A recovered station resumes its process with the
    state it crashed with (the engine simply stops delivering callbacks
    while it is down), which is exactly the "crash-recovery with stable
    storage" failure model.

    Parameters
    ----------
    nodes:
        The stations subject to churn; stations not listed (typically the
        root) never fail.
    fail_rate / recover_rate:
        Per-slot transition probabilities (0 disables the transition).
    seed:
        Root seed; each station's chain draws from its own derived stream
        (``derive_seed(seed, "churn", node)``) so the realization does not
        depend on the order in which the engine queries stations.
    start_down:
        Stations that begin in the down state (default: all start up).
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        fail_rate: float,
        recover_rate: float,
        seed: int,
        start_down: Iterable[NodeId] = (),
    ):
        for name, rate in (("fail_rate", fail_rate), ("recover_rate", recover_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0,1], got {rate}"
                )
        self.nodes: FrozenSet[NodeId] = frozenset(nodes)
        unknown_down = set(start_down) - self.nodes
        if unknown_down:
            raise ConfigurationError(
                f"start_down stations not subject to churn: "
                f"{sorted(map(repr, unknown_down))}"
            )
        self.fail_rate = fail_rate
        self.recover_rate = recover_rate
        self.seed = seed
        self._down: Dict[NodeId, bool] = {
            node: node in set(start_down) for node in self.nodes
        }
        self._rng: Dict[NodeId, random.Random] = {
            node: child_rng(seed, "churn", node)
            for node in self.nodes
        }
        # Slot up to which each chain has been advanced (state applies to
        # slots <= this value; queries must be non-decreasing per node,
        # which the slot-synchronous engine guarantees).
        self._advanced: Dict[NodeId, int] = {node: 0 for node in self.nodes}
        # (slot, node, went_down) transitions, for tests and reports.
        self.transitions: List[Tuple[int, NodeId, bool]] = []

    def node_down(self, node: NodeId, slot: int) -> bool:
        if node not in self.nodes:
            return False
        last = self._advanced[node]
        if slot > last:
            rng = self._rng[node]
            down = self._down[node]
            for step in range(last + 1, slot + 1):
                if down:
                    if self.recover_rate and rng.random() < self.recover_rate:
                        down = False
                        self.transitions.append((step, node, False))
                elif self.fail_rate and rng.random() < self.fail_rate:
                    down = True
                    self.transitions.append((step, node, True))
            self._down[node] = down
            self._advanced[node] = slot
        return self._down[node]

    def churn_events(self, node: Optional[NodeId] = None) -> List[Tuple[int, NodeId, bool]]:
        """Transitions seen so far: ``(slot, node, went_down)`` triples."""
        if node is None:
            return list(self.transitions)
        return [t for t in self.transitions if t[1] == node]
