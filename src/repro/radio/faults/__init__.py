"""Richer failure models for robustness experiments.

The base hierarchy (:class:`~repro.radio.failures.FailureModel` and the
scripted/Bernoulli models) lives in :mod:`repro.radio.failures`; this
package adds the stochastic and adversarial models used by the
fault-tolerance layer and the resilience harness:

* :class:`MarkovChurn` — stations crash and recover as independent
  two-state Markov chains (mean up/down times set by the rates);
* :class:`GilbertElliott` — bursty link fading: each directed link is a
  good/bad two-state chain with state-dependent loss probabilities;
* :class:`RegionOutage` — a whole set of stations goes dark for a slot
  window (models a regional power cut or a partition-inducing outage);
* :class:`AdversarialJammer` — a duty-cycled jammer that blanks every
  reception at targeted stations during its jam windows.

All stochastic models are seeded through the repo's RNG discipline
(:func:`repro.rng.derive_seed`): per-node and per-link streams are derived
from a single seed via stable keys, so results are reproducible and
independent of the order in which the engine queries the model.
"""

from repro.radio.faults.churn import MarkovChurn
from repro.radio.faults.fading import GilbertElliott
from repro.radio.faults.jammer import AdversarialJammer
from repro.radio.faults.regional import RegionOutage, subtree_outage

__all__ = [
    "AdversarialJammer",
    "GilbertElliott",
    "MarkovChurn",
    "RegionOutage",
    "subtree_outage",
]
