"""A duty-cycled adversarial jammer."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.errors import ConfigurationError
from repro.graphs.graph import NodeId
from repro.radio.failures import FailureModel


class AdversarialJammer(FailureModel):
    """Deterministic duty-cycled jamming of targeted receivers.

    During the first ``duty`` slots of every ``period``-slot window
    (starting at ``start``, optionally ending at ``end``) every would-be
    successful delivery to a targeted station is destroyed.  ``targets=None``
    jams the whole network.  The schedule is deterministic — the strongest
    adversary expressible through the engine's failure hook, since it can
    be aligned against the (publicly known) slot structure, e.g. jamming
    exactly the ack slots of one level class.

    This models an *external* interferer: the jammer is not a station, so
    it blanks receptions outright rather than creating collisions the
    protocols could detect.
    """

    def __init__(
        self,
        period: int,
        duty: int,
        targets: Optional[Iterable[NodeId]] = None,
        start: int = 0,
        end: Optional[int] = None,
        offset: int = 0,
    ):
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 0 <= duty <= period:
            raise ConfigurationError(
                f"duty must be in [0, period={period}], got {duty}"
            )
        if not 0 <= offset < period:
            raise ConfigurationError(
                f"offset must be in [0, period), got {offset}"
            )
        self.period = period
        self.duty = duty
        self.targets: Optional[FrozenSet[NodeId]] = (
            None if targets is None else frozenset(targets)
        )
        self.start = start
        self.end = end
        self.offset = offset

    def jamming(self, slot: int) -> bool:
        """Whether the jammer is transmitting during ``slot``."""
        if slot < self.start or (self.end is not None and slot >= self.end):
            return False
        return (slot - self.start + self.offset) % self.period < self.duty

    def drop_delivery(
        self, sender: NodeId, receiver: NodeId, slot: int
    ) -> bool:
        if not self.jamming(slot):
            return False
        return self.targets is None or receiver in self.targets
