"""Region and partition outages: a whole set of stations goes dark."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import NodeId
from repro.radio.failures import FailureModel


class RegionOutage(FailureModel):
    """Every station in ``region`` is down during ``[start, end)``.

    ``end=None`` makes the outage permanent — combined with a region that
    forms a vertex cut this is the deliberate-partition scenario the
    repair layer must detect and report instead of hanging.
    """

    def __init__(
        self,
        region: Iterable[NodeId],
        start: int = 0,
        end: Optional[int] = None,
    ):
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        if end is not None and end <= start:
            raise ConfigurationError(
                f"empty outage window [{start}, {end})"
            )
        self.region: FrozenSet[NodeId] = frozenset(region)
        self.start = start
        self.end = end

    def node_down(self, node: NodeId, slot: int) -> bool:
        if node not in self.region or slot < self.start:
            return False
        return self.end is None or slot < self.end


def subtree_outage(
    tree: BFSTree, node: NodeId, start: int = 0, end: Optional[int] = None
) -> RegionOutage:
    """An outage taking down ``node`` and its whole BFS subtree.

    Convenience for partition experiments: killing an interior node plus
    its subtree guarantees the rest of the network stays connected on the
    tree (side edges in the graph may still route around it).
    """
    return RegionOutage(tree.subtree(node), start=start, end=end)
