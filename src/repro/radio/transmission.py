"""Transmission intents handed from protocol processes to the engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Default channel used by single-channel protocols.
DEFAULT_CHANNEL = 0

#: Conventional channel assignment used by the multi-channel protocols:
#: the paper assumes the upward (collection) and downward (distribution)
#: traffic run "by using separate channels" (§1.4).
UP_CHANNEL = 0
DOWN_CHANNEL = 1


@dataclass(frozen=True)
class Transmission:
    """A single-slot transmission intent on one channel.

    ``payload`` is the message object broadcast to all neighbors; per the
    radio model it is delivered to a neighbor only if no other neighbor of
    that node transmits on the same channel in the same slot.
    """

    payload: Any
    channel: int = DEFAULT_CHANNEL

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError(f"channel must be >= 0, got {self.channel}")
