"""The slot-synchronous radio-network simulation engine.

Implements the model of §1.1 exactly:

* time advances in synchronous slots;
* in each slot each station either transmits or receives on each channel
  (the paper's multi-channel protocols assume one transceiver per channel);
* a listening station receives a message in a slot iff **exactly one** of
  its neighbors transmits in that slot (on that channel);
* there is no collision detection — a collision is indistinguishable from
  silence at the receiver;
* a transmitting station hears nothing on the channel it transmits on.

The engine is deliberately simple and allocation-light: per slot it asks
every *awake* process for its transmission intents, resolves receptions
channel by channel by counting transmitting neighbors, and delivers
callbacks.

Idle-aware scheduling
---------------------
The paper's own slot structure guarantees long deterministic silences: a
station at BFS level i may transmit data only in its level class's slots
(2 of every 3 slots are someone else's, §2.2), and a station with an
empty buffer transmits nothing at all.  Polling every process every slot
is therefore O(n) of wasted work per slot at scale.  A process may
declare those silences via :meth:`~repro.radio.process.Process.
quiet_until`; the engine keeps a min-heap of wake slots and skips
sleeping processes entirely — a reception (or collision callback) wakes
a process immediately, so reactive traffic is never delayed.  Processes
that do not implement the hint are polled every slot, exactly as before.
The fast path is bypassed whenever a failure model is attached (crash
schedules must be consulted per slot) or ``idle_scheduling`` is False.
"""

from __future__ import annotations

import heapq
import random
from collections import defaultdict
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro import profiling
from repro.errors import ConfigurationError, ProtocolError, SimulationTimeout
from repro.graphs.graph import Graph, NodeId
from repro.radio.failures import FailureModel
from repro.radio.process import QUIET_FOREVER, Process, SlotAction
from repro.radio.trace import (
    CollisionEvent,
    DeliverEvent,
    DropEvent,
    EventTrace,
    NetworkStats,
    TransmitEvent,
)
from repro.radio.transmission import Transmission

UntilPredicate = Callable[["RadioNetwork"], bool]


class RadioNetwork:
    """A synchronous multi-hop radio network over a fixed topology.

    Parameters
    ----------
    graph:
        The communication topology (stations = nodes, range = edges).
    num_channels:
        How many orthogonal channels exist.  Single-channel protocols use
        channel 0; the paper's concurrent collection/distribution stack
        uses 2 ("we … assume separate channels", §1.4).
    trace:
        Optional :class:`~repro.radio.trace.EventTrace` capturing every
        event.  Aggregate counters in :attr:`stats` are always collected.
    failures:
        Optional failure model (crashes / link loss) for robustness
        experiments; ``None`` is the paper's failure-free model.
    capture_effect:
        §8 remark (3)'s model variant: "in case of a conflict the
        receiver may get one of the messages."  When enabled, a collision
        delivers one of the colliding payloads chosen uniformly at random
        (seeded by ``capture_seed``) instead of nothing.  The paper notes
        its deterministic acknowledgement mechanism "is no longer valid"
        under this model — tests confirm exactly that.
    collision_detection:
        §8 remark (4)'s variant: listeners get an explicit
        ``on_collision`` callback when ≥ 2 neighbors transmit.  The
        paper's protocols never use it ("we do not know how to use it");
        it is exposed for experimentation.

    The ``idle_scheduling`` attribute (default True) enables the
    quiet-declaration fast path described in the module docstring; set it
    to False to force the legacy poll-every-process loop (used by the
    throughput benchmark to measure the fast path's win, and available as
    an escape hatch).  Either setting produces identical protocol
    outcomes for processes honouring the ``quiet_until`` contract.
    """

    def __init__(
        self,
        graph: Graph,
        num_channels: int = 1,
        trace: Optional[EventTrace] = None,
        failures: Optional[FailureModel] = None,
        capture_effect: bool = False,
        collision_detection: bool = False,
        capture_seed: int = 0,
    ):
        if num_channels < 1:
            raise ConfigurationError(
                f"need at least one channel, got {num_channels}"
            )
        self.num_channels = num_channels
        self.trace = trace
        self.failures = failures
        self.capture_effect = capture_effect
        self.collision_detection = collision_detection
        self._capture_rng = (
            random.Random(capture_seed) if capture_effect else None
        )
        self.slot = 0
        self.stats = NetworkStats()
        self.profiler = profiling.current_profile()
        self.idle_scheduling = True
        # Wake bookkeeping for the idle fast path: ``_wake`` maps each
        # station to its authoritative next wake slot; ``_wake_heap``
        # holds (wake, node) entries, lazily invalidated (an entry whose
        # wake no longer matches ``_wake`` is stale and discarded on pop).
        self._wake: Dict[NodeId, int] = {}
        self._wake_heap: List[Tuple[int, NodeId]] = []
        self._wake_valid = False
        self._processes: Dict[NodeId, Process] = {}
        self.graph = graph

    @property
    def graph(self) -> Graph:
        return self._graph

    @graph.setter
    def graph(self, graph: Graph) -> None:
        # Derived per-topology state is rebuilt exactly once per topology
        # change, never in the per-slot hot loop:
        # * the neighbor-tuple cache — the inner reception loop iterates
        #   these millions of times and must not re-derive them from the
        #   graph per slot;
        # * the full-attachment check — an O(n) set difference, re-armed
        #   so a swapped topology is re-validated before the next step;
        # * the wake heap — a swapped topology may change who can hear
        #   whom, so every station is re-polled from the next slot.
        self._graph = graph
        self._attachment_validated = False
        self._wake_valid = False
        self._neighbors: Dict[NodeId, tuple] = {
            node: graph.neighbors(node) for node in graph.nodes
        }

    # ------------------------------------------------------------------
    # Wiring processes to stations
    # ------------------------------------------------------------------

    def attach(self, process: Process) -> None:
        """Install ``process`` on its station (``process.node_id``)."""
        node = process.node_id
        if node not in self.graph:
            raise ConfigurationError(f"no station {node!r} in topology")
        self._processes[node] = process
        process._waker = lambda: self._wake_external(node)
        self._attachment_validated = False
        self._wake_valid = False

    def attach_all(self, factory: Callable[[NodeId], Process]) -> None:
        """Install ``factory(node)`` on every station of the topology."""
        for node in self.graph.nodes:
            self.attach(factory(node))

    def process(self, node: NodeId) -> Process:
        return self._processes[node]

    @property
    def processes(self) -> Mapping[NodeId, Process]:
        """A read-only live view of the station -> process map.

        Returned as a :class:`types.MappingProxyType` — not a copy — so
        hot-path callers may iterate it per slot without allocating, and
        accidental mutation raises instead of silently desynchronizing
        the engine (attachment goes through :meth:`attach`).
        """
        return MappingProxyType(self._processes)

    def _require_fully_attached(self) -> None:
        if self._attachment_validated:
            return
        missing = set(self.graph.nodes) - set(self._processes)
        if missing:
            raise ConfigurationError(
                f"stations without processes: {sorted(missing)[:5]!r}"
                + ("…" if len(missing) > 5 else "")
            )
        self._attachment_validated = True

    def _wake_external(self, node: NodeId) -> None:
        """Revoke ``node``'s quiet declaration (see ``Process.wake``)."""
        if not self._wake_valid:
            return  # heap will be rebuilt before the next step anyway
        slot = self.slot
        if self._wake.get(node, slot) > slot:
            self._wake[node] = slot
            heapq.heappush(self._wake_heap, (slot, node))

    def _rebuild_wake(self) -> None:
        """Re-arm the wake heap: every station polls at the current slot."""
        slot = self.slot
        self._wake = {node: slot for node in self._processes}
        self._wake_heap = [(slot, node) for node in self._processes]
        heapq.heapify(self._wake_heap)
        self._wake_valid = True

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize_action(action: SlotAction) -> List[Transmission]:
        if action is None:
            return []
        if isinstance(action, Transmission):
            return [action]
        return list(action)

    def step(self) -> None:
        """Advance the network by one slot."""
        self._require_fully_attached()
        slot = self.slot
        failures = self.failures
        trace = self.trace
        tracing = trace is not None
        processes = self._processes
        profiler = self.profiler
        mark = profiler.clock() if profiler is not None else 0.0

        # The fast path needs per-slot crash schedules out of the way
        # (a sleeping station must still crash on time for the stats and
        # the collision semantics), so any failure model disables it.
        use_idle = self.idle_scheduling and failures is None
        # Stations acting this slot, in deterministic wake order (polled
        # now, or woken later by a reception); None = everyone, legacy.
        awake: Optional[Dict[NodeId, None]] = None
        if use_idle:
            if not self._wake_valid:
                self._rebuild_wake()
            awake = {}
            heap = self._wake_heap
            wake = self._wake
            while heap and heap[0][0] <= slot:
                entry_wake, node = heapq.heappop(heap)
                if node in awake or wake.get(node) != entry_wake:
                    continue  # stale entry: rescheduled since it was pushed
                awake[node] = None
            poll = awake
        else:
            poll = processes

        # Phase 1: gather transmission intents.
        transmitters: List[Dict[NodeId, object]] = [
            {} for _ in range(self.num_channels)
        ]
        transmitting_nodes: List[set] = [set() for _ in range(self.num_channels)]
        down_nodes = set()
        for node in poll:
            process = processes[node]
            if failures is not None and failures.node_down(node, slot):
                down_nodes.add(node)
                self.stats.down_node_slots += 1
                continue
            action = process.on_slot(slot)
            if action is None:
                continue
            for tx in self._normalize_action(action):
                if tx.channel >= self.num_channels:
                    raise ProtocolError(
                        f"node {node!r} transmitted on channel {tx.channel} "
                        f"but the network has {self.num_channels} channel(s)"
                    )
                if node in transmitting_nodes[tx.channel]:
                    raise ProtocolError(
                        f"node {node!r} transmitted twice on channel "
                        f"{tx.channel} in slot {slot}"
                    )
                transmitters[tx.channel][node] = tx.payload
                transmitting_nodes[tx.channel].add(node)
                self.stats.channel(tx.channel).transmissions += 1
                if tracing:
                    trace.record(
                        TransmitEvent(slot, tx.channel, node, tx.payload)
                    )
        if profiler is not None:
            now = profiler.clock()
            profiler.add("scalar/intents", now - mark)
            profiler.bump("polled", len(poll))
            profiler.bump("skipped", len(processes) - len(poll))
            mark = now

        # Phase 2: resolve receptions channel by channel.
        neighbors = self._neighbors
        for channel in range(self.num_channels):
            senders = transmitters[channel]
            if not senders:
                continue
            channel_stats = self.stats.channel(channel)
            channel_stats.busy_slots += 1
            hit_count: Dict[NodeId, int] = defaultdict(int)
            last_sender: Dict[NodeId, NodeId] = {}
            for sender in senders:
                for receiver in neighbors[sender]:
                    hit_count[receiver] += 1
                    last_sender[receiver] = sender
            sending_here = transmitting_nodes[channel]
            for receiver, count in hit_count.items():
                if receiver in sending_here or receiver in down_nodes:
                    continue  # busy transmitting / crashed: hears nothing
                if count >= 2:
                    channel_stats.collisions += 1
                    colliders = None
                    if tracing or self.capture_effect:
                        colliders = tuple(
                            s for s in senders if receiver in neighbors[s]
                        )
                    if tracing:
                        assert colliders is not None
                        trace.record(
                            CollisionEvent(slot, channel, receiver, colliders)
                        )
                    if self.collision_detection:
                        processes[receiver].on_collision(slot, channel)
                        if awake is not None and receiver not in awake:
                            awake[receiver] = None
                    if self.capture_effect:
                        # §8 remark (3): the receiver captures one of the
                        # colliding messages, uniformly at random.  The
                        # captured delivery is still subject to link loss.
                        assert colliders is not None
                        assert self._capture_rng is not None
                        winner = self._capture_rng.choice(colliders)
                        if failures is not None and failures.drop_delivery(
                            winner, receiver, slot
                        ):
                            channel_stats.dropped += 1
                            if tracing:
                                trace.record(
                                    DropEvent(
                                        slot,
                                        channel,
                                        receiver,
                                        winner,
                                        senders[winner],
                                    )
                                )
                            continue
                        channel_stats.deliveries += 1
                        if tracing:
                            trace.record(
                                DeliverEvent(
                                    slot,
                                    channel,
                                    receiver,
                                    winner,
                                    senders[winner],
                                )
                            )
                        processes[receiver].on_receive(
                            slot, channel, senders[winner]
                        )
                        if awake is not None and receiver not in awake:
                            awake[receiver] = None
                    continue
                sender = last_sender[receiver]
                if failures is not None and failures.drop_delivery(
                    sender, receiver, slot
                ):
                    channel_stats.dropped += 1
                    if tracing:
                        trace.record(
                            DropEvent(
                                slot, channel, receiver, sender, senders[sender]
                            )
                        )
                    continue
                channel_stats.deliveries += 1
                if tracing:
                    trace.record(
                        DeliverEvent(
                            slot, channel, receiver, sender, senders[sender]
                        )
                    )
                processes[receiver].on_receive(
                    slot, channel, senders[sender]
                )
                if awake is not None and receiver not in awake:
                    awake[receiver] = None
        if profiler is not None:
            now = profiler.clock()
            profiler.add("scalar/reception", now - mark)
            mark = now

        # Phase 3: end-of-slot bookkeeping, then reschedule the stations
        # that acted (their quiet declarations may have changed).
        if awake is not None:
            wake = self._wake
            heap = self._wake_heap
            next_slot = slot + 1
            for node in awake:
                process = processes[node]
                process.on_slot_end(slot)
                wake_at = process.quiet_until(next_slot)
                if wake_at < next_slot:
                    wake_at = next_slot
                wake[node] = wake_at
                if wake_at < QUIET_FOREVER:
                    heapq.heappush(heap, (wake_at, node))
        else:
            for node, process in processes.items():
                if node not in down_nodes:
                    process.on_slot_end(slot)

        self.slot += 1
        self.stats.slots += 1
        if profiler is not None:
            profiler.add("scalar/slot_end", profiler.clock() - mark)
            profiler.bump("scalar_slots")

    def run(
        self,
        max_slots: int,
        until: Optional[UntilPredicate] = None,
        check_every: int = 1,
    ) -> int:
        """Run until ``until(self)`` holds or ``max_slots`` elapse.

        Returns the number of slots executed *in this call*.  Raises
        :class:`SimulationTimeout` if the predicate never held; if no
        predicate is given, simply runs ``max_slots`` slots.
        """
        if max_slots < 0:
            raise ConfigurationError(f"max_slots must be >= 0, got {max_slots}")
        if check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {check_every}"
            )
        start = self.slot
        if until is not None and until(self):
            return 0
        for executed in range(1, max_slots + 1):
            self.step()
            if (
                until is not None
                and executed % check_every == 0
                and until(self)
            ):
                return executed
        if until is None:
            return max_slots
        raise SimulationTimeout(
            f"goal not reached within {max_slots} slots "
            f"(started at slot {start})",
            slots_elapsed=max_slots,
        )

    def run_until_done(self, max_slots: int, check_every: int = 1) -> int:
        """Run until every process reports :meth:`Process.is_done`."""
        return self.run(
            max_slots,
            until=lambda net: all(
                p.is_done() for p in net._processes.values()
            ),
            check_every=check_every,
        )
