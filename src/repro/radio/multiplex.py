"""Time-division multiplexing of logical channels onto one transceiver.

§1.4: the concurrent collection and distribution subprotocols run "either
by using separate channels or by multiplexing: the odd time slots are
dedicated to the upward traffic (collection) and the even ones to the
downwards traffic.  We shall not elaborate further and assume separate
channels."

The separate-channels assumption is what :mod:`repro.core` uses; this
module supplies the elaboration the paper skips, so the whole stack also
runs on single-transceiver hardware.  :class:`TimeDivisionProcess` wraps
any multi-channel protocol process and lays its ``C`` logical channels
out round-robin over physical slots:

* physical slot ``t`` carries logical channel ``t mod C`` of logical slot
  ``t // C``;
* the wrapped process is stepped once per *logical* slot (at the first
  physical sub-slot); its transmissions are buffered and released each on
  its own sub-slot;
* receptions are translated back to (logical slot, logical channel).

Everything the inner protocol observes is exactly what it would observe
on a C-channel radio, at C× the slot cost — which is the trade §1.4
describes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, NodeId
from repro.radio.network import RadioNetwork
from repro.radio.process import Process
from repro.radio.transmission import Transmission


class TimeDivisionProcess(Process):
    """Adapter running a C-logical-channel process on one physical channel."""

    def __init__(self, inner: Process, logical_channels: int):
        if logical_channels < 1:
            raise ConfigurationError(
                f"need >= 1 logical channel, got {logical_channels}"
            )
        super().__init__(inner.node_id)
        self.inner = inner
        self.logical_channels = logical_channels
        self._pending: Dict[int, Any] = {}  # logical channel -> payload
        self._pending_logical_slot = -1

    # ------------------------------------------------------------------
    # Slot arithmetic
    # ------------------------------------------------------------------

    def _logical(self, physical_slot: int) -> int:
        return physical_slot // self.logical_channels

    def _subchannel(self, physical_slot: int) -> int:
        return physical_slot % self.logical_channels

    # ------------------------------------------------------------------
    # Engine callbacks (physical side)
    # ------------------------------------------------------------------

    def on_slot(self, slot: int):
        logical_slot = self._logical(slot)
        subchannel = self._subchannel(slot)
        if subchannel == 0:
            # Start of a logical slot: collect the inner process's intent
            # for all logical channels at once.
            self._pending = {}
            self._pending_logical_slot = logical_slot
            action = self.inner.on_slot(logical_slot)
            for tx in RadioNetwork._normalize_action(action):
                if tx.channel >= self.logical_channels:
                    raise ConfigurationError(
                        f"inner process used logical channel {tx.channel} "
                        f"but only {self.logical_channels} are multiplexed"
                    )
                if tx.channel in self._pending:
                    raise ConfigurationError(
                        f"inner process transmitted twice on logical "
                        f"channel {tx.channel}"
                    )
                self._pending[tx.channel] = tx.payload
        if (
            self._pending_logical_slot == logical_slot
            and subchannel in self._pending
        ):
            payload = self._pending.pop(subchannel)
            return Transmission(payload, 0)
        return None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        # Physical channel is always 0; the sub-slot index *is* the
        # logical channel.
        self.inner.on_receive(
            self._logical(slot), self._subchannel(slot), payload
        )

    def on_slot_end(self, slot: int) -> None:
        # The logical slot ends with its last sub-slot.
        if self._subchannel(slot) == self.logical_channels - 1:
            self.inner.on_slot_end(self._logical(slot))

    def is_done(self) -> bool:
        return self.inner.is_done()


def multiplex_network(
    graph: Graph,
    inner_factory: Callable[[NodeId], Process],
    logical_channels: int,
    trace: Optional[object] = None,
) -> RadioNetwork:
    """A single-channel network running wrapped C-channel processes.

    ``inner_factory(node)`` builds the protocol process exactly as it
    would for a C-channel radio; the returned network multiplexes it onto
    one physical channel at C× the slot cost.
    """
    network = RadioNetwork(graph, num_channels=1, trace=trace)  # type: ignore[arg-type]
    for node in graph.nodes:
        network.attach(
            TimeDivisionProcess(inner_factory(node), logical_channels)
        )
    return network


def logical_slots(network: RadioNetwork, logical_channels: int) -> int:
    """Logical slots elapsed on a multiplexed network (floor)."""
    return network.slot // logical_channels
