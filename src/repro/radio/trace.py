"""Counters and (optional) event traces for simulation runs.

Counters are always on — they are a handful of integer increments per slot
and every experiment reports them.  Full event traces are opt-in because
they allocate per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.graph import NodeId


@dataclass
class ChannelStats:
    """Per-channel aggregate counters over a whole run."""

    transmissions: int = 0
    deliveries: int = 0
    collisions: int = 0  # listener-slots with >= 2 transmitting neighbors
    busy_slots: int = 0  # slots with >= 1 transmission anywhere
    dropped: int = 0  # would-be deliveries lost to the failure model

    def as_dict(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "collisions": self.collisions,
            "busy_slots": self.busy_slots,
            "dropped": self.dropped,
        }


@dataclass
class NetworkStats:
    """Aggregate counters for a run, totals plus per-channel breakdown."""

    slots: int = 0
    per_channel: Dict[int, ChannelStats] = field(default_factory=dict)
    down_node_slots: int = 0  # node-slots spent crashed (failure injection)

    def channel(self, channel: int) -> ChannelStats:
        if channel not in self.per_channel:
            self.per_channel[channel] = ChannelStats()
        return self.per_channel[channel]

    @property
    def transmissions(self) -> int:
        return sum(c.transmissions for c in self.per_channel.values())

    @property
    def deliveries(self) -> int:
        return sum(c.deliveries for c in self.per_channel.values())

    @property
    def collisions(self) -> int:
        return sum(c.collisions for c in self.per_channel.values())

    @property
    def dropped(self) -> int:
        return sum(c.dropped for c in self.per_channel.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "slots": self.slots,
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "collisions": self.collisions,
            "dropped": self.dropped,
            "down_node_slots": self.down_node_slots,
            "per_channel": {
                ch: stats.as_dict() for ch, stats in self.per_channel.items()
            },
        }


@dataclass(frozen=True)
class TransmitEvent:
    slot: int
    channel: int
    node: NodeId
    payload: Any


@dataclass(frozen=True)
class DeliverEvent:
    slot: int
    channel: int
    receiver: NodeId
    sender: NodeId
    payload: Any


@dataclass(frozen=True)
class CollisionEvent:
    slot: int
    channel: int
    receiver: NodeId
    senders: Tuple[NodeId, ...]


@dataclass(frozen=True)
class DropEvent:
    """A delivery that would have succeeded but was lost to the failure
    model (fading, jamming, …) — collisions are :class:`CollisionEvent`."""

    slot: int
    channel: int
    receiver: NodeId
    sender: NodeId
    payload: Any


class EventTrace:
    """Opt-in event recorder.

    Pass an instance as ``trace=`` to :class:`repro.radio.RadioNetwork` to
    capture every transmission, delivery and collision.  ``max_events``
    bounds memory; exceeding it silently stops recording (counters in
    :class:`NetworkStats` remain exact).
    """

    def __init__(self, max_events: Optional[int] = None):
        self.events: List[object] = []
        self.max_events = max_events

    def record(self, event: object) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        self.events.append(event)

    def of_type(self, event_type: type) -> List[object]:
        return [e for e in self.events if isinstance(e, event_type)]

    @property
    def transmissions(self) -> List[TransmitEvent]:
        return self.of_type(TransmitEvent)  # type: ignore[return-value]

    @property
    def deliveries(self) -> List[DeliverEvent]:
        return self.of_type(DeliverEvent)  # type: ignore[return-value]

    @property
    def collisions(self) -> List[CollisionEvent]:
        return self.of_type(CollisionEvent)  # type: ignore[return-value]

    @property
    def drops(self) -> List[DropEvent]:
        return self.of_type(DropEvent)  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self.events)
