"""The per-station process interface seen by the simulation engine.

A *process* is the program running on one station.  The engine drives it
with three callbacks per slot, in this order for every station:

1. :meth:`Process.on_slot` — decide what to transmit this slot (possibly on
   several channels; the paper's model allows one transceiver per channel).
2. :meth:`Process.on_receive` — called once per channel on which *exactly
   one* neighbor transmitted and this station was listening.
3. :meth:`Process.on_slot_end` — bookkeeping after all receptions of the
   slot are in.

Faithfulness notes:

* Stations receive the *message only*: the model gives no physical-layer
  sender identification, so any sender/destination information must travel
  inside the payload (the paper appends IDs to messages explicitly, §4).
* There is no collision detection: a collision and a silent slot are both
  simply "no :meth:`on_receive` call".
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.graphs.graph import NodeId
from repro.radio.transmission import Transmission

#: What :meth:`Process.on_slot` may return: nothing (listen on all
#: channels), one transmission, or several transmissions on distinct
#: channels.
SlotAction = Union[None, Transmission, Iterable[Transmission]]


class Process:
    """Base class for station programs.

    Subclasses override the callbacks they need.  The default behaviour is
    a station that always listens and ignores everything it hears.
    """

    def __init__(self, node_id: NodeId):
        self.node_id = node_id

    def on_slot(self, slot: int) -> SlotAction:
        """Return the transmission(s) for this slot, or None to listen."""
        return None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        """Called when a message was successfully received on ``channel``."""

    def on_collision(self, slot: int, channel: int) -> None:
        """Called on a collision — ONLY in the §8-remark-(4) model variant.

        The paper's base model has no collision detection, so no protocol
        in :mod:`repro.core` implements this; it exists for experiments
        with the ``collision_detection=True`` engine option.
        """

    def on_slot_end(self, slot: int) -> None:
        """Called after all of this slot's receptions have been delivered."""

    def is_done(self) -> bool:
        """Whether this station considers its task locally complete.

        Purely observational: the engine never consults it, but experiment
        drivers commonly run ``until=lambda net: all(p.is_done() ...)``.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(node={self.node_id!r})"


class SilentProcess(Process):
    """A station that only listens, recording everything it hears.

    Useful as an experiment probe and in unit tests of the engine.
    """

    def __init__(self, node_id: NodeId):
        super().__init__(node_id)
        self.heard: list = []

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        self.heard.append((slot, channel, payload))


class ScriptedProcess(Process):
    """A station that transmits a fixed script: slot -> transmissions.

    The script maps slot numbers to a :class:`SlotAction`; unknown slots
    listen.  Used heavily by engine unit tests to build exact collision
    scenarios.
    """

    def __init__(self, node_id: NodeId, script: Optional[dict] = None):
        super().__init__(node_id)
        self.script = dict(script or {})
        self.heard: list = []

    def on_slot(self, slot: int) -> SlotAction:
        return self.script.get(slot)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        self.heard.append((slot, channel, payload))
