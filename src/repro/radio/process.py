"""The per-station process interface seen by the simulation engine.

A *process* is the program running on one station.  The engine drives it
with three callbacks per slot, in this order for every station:

1. :meth:`Process.on_slot` — decide what to transmit this slot (possibly on
   several channels; the paper's model allows one transceiver per channel).
2. :meth:`Process.on_receive` — called once per channel on which *exactly
   one* neighbor transmitted and this station was listening.
3. :meth:`Process.on_slot_end` — bookkeeping after all receptions of the
   slot are in.

Faithfulness notes:

* Stations receive the *message only*: the model gives no physical-layer
  sender identification, so any sender/destination information must travel
  inside the payload (the paper appends IDs to messages explicitly, §4).
* There is no collision detection: a collision and a silent slot are both
  simply "no :meth:`on_receive` call".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Union

from repro.graphs.graph import NodeId
from repro.radio.transmission import Transmission

#: What :meth:`Process.on_slot` may return: nothing (listen on all
#: channels), one transmission, or several transmissions on distinct
#: channels.
SlotAction = Union[None, Transmission, Iterable[Transmission]]

#: Sentinel wake slot for :meth:`Process.quiet_until`: "I will stay
#: silent until something is delivered to me."  Any value this large is
#: treated the same way; the engine never pushes it onto the wake heap.
QUIET_FOREVER = 2 ** 62


class Process:
    """Base class for station programs.

    Subclasses override the callbacks they need.  The default behaviour is
    a station that always listens and ignores everything it hears.
    """

    def __init__(self, node_id: NodeId):
        self.node_id = node_id
        # Installed by the engine on attach; see wake().
        self._waker: Optional[Callable[[], None]] = None

    def on_slot(self, slot: int) -> SlotAction:
        """Return the transmission(s) for this slot, or None to listen."""
        return None

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        """Called when a message was successfully received on ``channel``."""

    def on_collision(self, slot: int, channel: int) -> None:
        """Called on a collision — ONLY in the §8-remark-(4) model variant.

        The paper's base model has no collision detection, so no protocol
        in :mod:`repro.core` implements this; it exists for experiments
        with the ``collision_detection=True`` engine option.
        """

    def on_slot_end(self, slot: int) -> None:
        """Called after all of this slot's receptions have been delivered."""

    def quiet_until(self, slot: int) -> int:
        """Idle declaration: the first slot >= ``slot`` this process is
        *active* in — i.e. might transmit, or does per-slot work in
        :meth:`on_slot` / :meth:`on_slot_end`.

        Contract: if a process returns ``w > slot``, it promises that —
        absent any reception in between — for every slot s in
        ``[slot, w)`` its :meth:`on_slot` would return None and its
        :meth:`on_slot_end` would be a no-op.  The engine may then skip
        those callbacks entirely (it keeps a min-heap of wake slots, see
        :mod:`repro.radio.network`).  Receiving a message (or an
        ``on_collision`` in the detection variant) re-wakes the process
        for the current slot, so reactive behaviour is never delayed.
        Return :data:`QUIET_FOREVER` for "silent until spoken to".

        The default returns ``slot`` — no declaration, polled every
        slot — so subclasses are unaffected unless they opt in.  The
        paper's slot structure makes exact declarations easy: a node at
        BFS level i owns only the class ``i mod 3`` data slots (§2.2),
        so at least 2 of every 3 slot-pairs are declarable silence.

        If *external* events can change what this process would do —
        e.g. an application submitting a message mid-run (§1.4's
        reactive model) — the mutating entry point must call
        :meth:`wake` to revoke the outstanding declaration.
        """
        return slot

    def wake(self) -> None:
        """Revoke an outstanding :meth:`quiet_until` declaration.

        Must be called by any entry point that mutates this process from
        *outside* the engine's callbacks (application-level submission,
        test harness pokes) while a run is in progress; otherwise the
        engine may keep honouring a now-stale quiet declaration.  A no-op
        when not attached to an idle-scheduling engine.
        """
        if self._waker is not None:
            self._waker()

    def is_done(self) -> bool:
        """Whether this station considers its task locally complete.

        Purely observational: the engine never consults it, but experiment
        drivers commonly run ``until=lambda net: all(p.is_done() ...)``.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(node={self.node_id!r})"


class SilentProcess(Process):
    """A station that only listens, recording everything it hears.

    Useful as an experiment probe and in unit tests of the engine.
    """

    def __init__(self, node_id: NodeId):
        super().__init__(node_id)
        self.heard: list = []

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        self.heard.append((slot, channel, payload))


class ScriptedProcess(Process):
    """A station that transmits a fixed script: slot -> transmissions.

    The script maps slot numbers to a :class:`SlotAction`; unknown slots
    listen.  Used heavily by engine unit tests to build exact collision
    scenarios.
    """

    def __init__(self, node_id: NodeId, script: Optional[dict] = None):
        super().__init__(node_id)
        self.script = dict(script or {})
        self.heard: list = []

    def on_slot(self, slot: int) -> SlotAction:
        return self.script.get(slot)

    def on_receive(self, slot: int, channel: int, payload: Any) -> None:
        self.heard.append((slot, channel, payload))
