"""Slot-synchronous multi-hop radio-network simulator (the model of §1.1)."""

from repro.radio.failures import (
    AdversarialJammer,
    BernoulliLinkLoss,
    ComposedFailures,
    CrashSchedule,
    FailureModel,
    GilbertElliott,
    MarkovChurn,
    PermanentCrashes,
    RegionOutage,
    subtree_outage,
)
from repro.radio.multiplex import (
    TimeDivisionProcess,
    logical_slots,
    multiplex_network,
)
from repro.radio.network import RadioNetwork
from repro.radio.oracle import (
    audit_collection_trace,
    check_ack_determinism,
    check_exactly_once,
    check_level_classes,
    check_slot_discipline,
)
from repro.radio.process import Process, ScriptedProcess, SilentProcess
from repro.radio.trace import (
    ChannelStats,
    CollisionEvent,
    DeliverEvent,
    DropEvent,
    EventTrace,
    NetworkStats,
    TransmitEvent,
)
from repro.radio.transmission import (
    DEFAULT_CHANNEL,
    DOWN_CHANNEL,
    UP_CHANNEL,
    Transmission,
)

__all__ = [
    "AdversarialJammer",
    "BernoulliLinkLoss",
    "ChannelStats",
    "CollisionEvent",
    "ComposedFailures",
    "CrashSchedule",
    "DEFAULT_CHANNEL",
    "DOWN_CHANNEL",
    "DeliverEvent",
    "DropEvent",
    "EventTrace",
    "FailureModel",
    "GilbertElliott",
    "MarkovChurn",
    "NetworkStats",
    "PermanentCrashes",
    "RegionOutage",
    "Process",
    "RadioNetwork",
    "ScriptedProcess",
    "SilentProcess",
    "TimeDivisionProcess",
    "TransmitEvent",
    "audit_collection_trace",
    "check_ack_determinism",
    "check_exactly_once",
    "check_level_classes",
    "check_slot_discipline",
    "Transmission",
    "UP_CHANNEL",
    "logical_slots",
    "multiplex_network",
    "subtree_outage",
]
