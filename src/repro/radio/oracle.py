"""Omniscient trace verification: protocol invariants checked globally.

The simulator can capture a full :class:`~repro.radio.trace.EventTrace`;
this module turns the paper's correctness statements into *checkers* over
such traces, so any run — unit test, benchmark, or a user's custom
protocol — can be audited after the fact:

* :func:`check_ack_determinism` — Theorem 3.1, in its strongest
  observable form: for every successful delivery of a designated data
  message at slot t, the matching acknowledgement is delivered back to
  the transmitter at slot t+1.
* :func:`check_exactly_once` — no designated data message is delivered
  to the same receiver twice (the corollary strict-mode transport
  enforces online).
* :func:`check_slot_discipline` — on an acked channel, data payloads
  travel only in DATA slots and acks only in ACK slots of the given
  :class:`~repro.core.slots.SlotStructure`.
* :func:`check_level_classes` — §2.2: every data transmission happens in
  its transmitter's level-class slots.

Each checker returns a list of violation strings (empty = invariant
holds), so callers can assert emptiness or report.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.messages import AckMessage, DataMessage
from repro.core.slots import SlotKind, SlotStructure
from repro.graphs.graph import NodeId
from repro.radio.trace import DeliverEvent, EventTrace, TransmitEvent


def _designated_data_deliveries(
    trace: EventTrace, channel: Optional[int]
) -> List[DeliverEvent]:
    out = []
    for event in trace.deliveries:
        if channel is not None and event.channel != channel:
            continue
        if isinstance(event.payload, DataMessage) and (
            event.payload.hop_dest == event.receiver
        ):
            out.append(event)
    return out


def check_ack_determinism(
    trace: EventTrace, channel: Optional[int] = None
) -> List[str]:
    """Theorem 3.1 over a whole trace.

    For each designated data delivery (u → v at slot t), require an
    AckMessage with the same msg_id delivered to u at slot t+1.
    """
    ack_deliveries = {
        (event.slot, event.receiver, event.payload.msg_id)
        for event in trace.deliveries
        if isinstance(event.payload, AckMessage)
        and (channel is None or event.channel == channel)
    }
    violations = []
    for event in _designated_data_deliveries(trace, channel):
        key = (event.slot + 1, event.sender, event.payload.msg_id)
        if key not in ack_deliveries:
            violations.append(
                f"message {event.payload.msg_id} received by "
                f"{event.receiver!r} at slot {event.slot} was never "
                f"acked back to {event.sender!r}"
            )
    return violations


def check_exactly_once(
    trace: EventTrace, channel: Optional[int] = None
) -> List[str]:
    """No (receiver, msg_id) designated delivery occurs twice."""
    seen: Dict[tuple, int] = {}
    violations = []
    for event in _designated_data_deliveries(trace, channel):
        key = (event.receiver, event.payload.msg_id)
        if key in seen:
            violations.append(
                f"message {event.payload.msg_id} delivered to "
                f"{event.receiver!r} again at slot {event.slot} "
                f"(first at slot {seen[key]})"
            )
        else:
            seen[key] = event.slot
    return violations


def check_slot_discipline(
    trace: EventTrace,
    slots: SlotStructure,
    channel: int,
) -> List[str]:
    """Data only in DATA slots, acks only in ACK slots, on ``channel``."""
    violations = []
    for event in trace.transmissions:
        if event.channel != channel:
            continue
        kind = slots.decode(event.slot).kind
        if isinstance(event.payload, DataMessage) and kind is not SlotKind.DATA:
            violations.append(
                f"station {event.node!r} sent data in an "
                f"{kind.value} slot ({event.slot})"
            )
        if isinstance(event.payload, AckMessage) and kind is not SlotKind.ACK:
            violations.append(
                f"station {event.node!r} sent an ack in a "
                f"{kind.value} slot ({event.slot})"
            )
    return violations


def check_level_classes(
    trace: EventTrace,
    slots: SlotStructure,
    levels: Mapping[NodeId, int],
    channel: int,
) -> List[str]:
    """§2.2: data transmissions only in the transmitter's class slots."""
    violations = []
    for event in trace.transmissions:
        if event.channel != channel:
            continue
        if not isinstance(event.payload, DataMessage):
            continue
        level = levels.get(event.node)
        if level is None:
            violations.append(f"unknown level for station {event.node!r}")
            continue
        if not slots.is_data_slot_for(event.slot, level):
            violations.append(
                f"station {event.node!r} (level {level}) transmitted data "
                f"in slot {event.slot}, outside its class"
            )
    return violations


def audit_collection_trace(
    trace: EventTrace,
    slots: SlotStructure,
    levels: Mapping[NodeId, int],
    channel: int = 0,
) -> List[str]:
    """All four checks, concatenated — the full §2–§4 discipline."""
    return (
        check_ack_determinism(trace, channel)
        + check_exactly_once(trace, channel)
        + check_slot_discipline(trace, slots, channel)
        + check_level_classes(trace, slots, levels, channel)
    )
