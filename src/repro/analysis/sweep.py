"""Parameter sweeps and seeded replication for experiments.

An experiment in this repo is: a topology family point × a workload ×
replications over independent seeds, summarized into one table row.  This
module provides the scaffolding so each bench file only declares *what*
varies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    balanced_tree,
    caterpillar,
    grid,
    layered_band,
    path,
    random_geometric,
    random_tree,
    star,
)
from repro.rng import RngFactory


@dataclass(frozen=True)
class TopologyPoint:
    """One topology configuration in a sweep, with a human-readable name."""

    name: str
    build: Callable[[random.Random], Graph]

    def make(self, seed: int) -> Graph:
        return self.build(random.Random(seed))


def standard_topologies(scale: int = 1) -> List[TopologyPoint]:
    """The default sweep: families spanning the (D, Δ) plane.

    ``scale`` multiplies sizes (1 = quick test scale, 2-4 = bench scale).
    """
    if scale < 1:
        raise ConfigurationError("scale must be >= 1")
    s = scale
    return [
        TopologyPoint(f"path-{16 * s}", lambda r, n=16 * s: path(n)),
        TopologyPoint(f"star-{16 * s}", lambda r, n=16 * s: star(n)),
        TopologyPoint(
            f"grid-{4 * s}x{4 * s}", lambda r, a=4 * s: grid(a, a)
        ),
        TopologyPoint(
            f"tree-b3-d{2 + (s > 1)}",
            lambda r, d=2 + (1 if s > 1 else 0): balanced_tree(3, d),
        ),
        TopologyPoint(
            f"caterpillar-{8 * s}x3",
            lambda r, sp=8 * s: caterpillar(sp, 3),
        ),
        TopologyPoint(
            f"rgg-{24 * s}",
            lambda r, n=24 * s: random_geometric(n, radius=0.3, rng=r),
        ),
        TopologyPoint(
            f"rtree-{24 * s}",
            lambda r, n=24 * s: random_tree(n, rng=r),
        ),
        TopologyPoint(
            f"band-{6 * s}x4",
            lambda r, layers=6 * s: layered_band(layers, 4),
        ),
    ]


@dataclass
class ReplicatedMeasurement:
    """All replications of one measurement plus its summary."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def summary(self) -> Summary:
        return summarize(self.samples)

    @property
    def mean(self) -> float:
        return self.summary.mean


def replicated(
    measure: Callable[[int], float],
    replications: int,
    seed: int,
    label: str = "measure",
) -> ReplicatedMeasurement:
    """Run ``measure(seed_i)`` over independent derived seeds."""
    if replications < 1:
        raise ConfigurationError("need at least one replication")
    factory = RngFactory(seed)
    out = ReplicatedMeasurement()
    for rep_seed in factory.replication_seeds(replications):
        out.add(float(measure(rep_seed)))
    return out


def sweep(
    points: Sequence[TopologyPoint],
    measure: Callable[[Graph, int], float],
    replications: int,
    seed: int,
) -> Dict[str, ReplicatedMeasurement]:
    """Measure over each topology point with seeded replications.

    The topology itself is re-sampled per replication for randomized
    families, so the variance covers both topology and protocol coins.
    """
    results: Dict[str, ReplicatedMeasurement] = {}
    factory = RngFactory(seed)
    for index, point in enumerate(points):
        sub = factory.spawn(index)
        measurement = ReplicatedMeasurement()
        for rep, rep_seed in enumerate(
            sub.replication_seeds(replications)
        ):
            graph = point.make(rep_seed)
            measurement.add(float(measure(graph, rep_seed)))
        results[point.name] = measurement
    return results
