"""Parameter sweeps and seeded replication for experiments.

An experiment in this repo is: a topology family point × a workload ×
replications over independent seeds, summarized into one table row.  This
module provides the scaffolding so each bench file only declares *what*
varies.

Both :func:`sweep` and :func:`replicated` execute through the parallel
runner (:mod:`repro.runner`): ``workers=0`` (the default) runs inline
exactly as before, ``workers=N`` shards the grid over N processes, and
``cache_dir`` replays previously computed cells from disk.  Seeds are
derived before dispatch, so every gear returns bit-identical samples.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.stats import Summary, summarize
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    balanced_tree,
    caterpillar,
    grid,
    layered_band,
    path,
    random_geometric,
    random_tree,
    star,
)
from repro.rng import RngFactory


@dataclass(frozen=True)
class TopologyPoint:
    """One topology configuration in a sweep, with a human-readable name."""

    name: str
    build: Callable[[random.Random], Graph]

    def make(self, seed: int) -> Graph:
        return self.build(random.Random(seed))


def standard_topologies(scale: int = 1) -> List[TopologyPoint]:
    """The default sweep: families spanning the (D, Δ) plane.

    ``scale`` multiplies sizes (1 = quick test scale, 2-4 = bench scale).
    """
    if scale < 1:
        raise ConfigurationError("scale must be >= 1")
    s = scale
    return [
        TopologyPoint(f"path-{16 * s}", lambda r, n=16 * s: path(n)),
        TopologyPoint(f"star-{16 * s}", lambda r, n=16 * s: star(n)),
        TopologyPoint(
            f"grid-{4 * s}x{4 * s}", lambda r, a=4 * s: grid(a, a)
        ),
        TopologyPoint(
            f"tree-b3-d{2 + (s > 1)}",
            lambda r, d=2 + (1 if s > 1 else 0): balanced_tree(3, d),
        ),
        TopologyPoint(
            f"caterpillar-{8 * s}x3",
            lambda r, sp=8 * s: caterpillar(sp, 3),
        ),
        TopologyPoint(
            f"rgg-{24 * s}",
            lambda r, n=24 * s: random_geometric(n, radius=0.3, rng=r),
        ),
        TopologyPoint(
            f"rtree-{24 * s}",
            lambda r, n=24 * s: random_tree(n, rng=r),
        ),
        TopologyPoint(
            f"band-{6 * s}x4",
            lambda r, layers=6 * s: layered_band(layers, 4),
        ),
    ]


@dataclass
class ReplicatedMeasurement:
    """All replications of one measurement plus its summary."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def summary(self) -> Summary:
        return summarize(self.samples)

    @property
    def mean(self) -> float:
        return self.summary.mean


def _measure_name(measure: Callable) -> str:
    """A stable identity for a measure callable, used in cache keys.

    Without it, two sweeps measuring different things over the same
    topologies and seed would collide in the result cache.
    """
    module = getattr(measure, "__module__", "?")
    qualname = getattr(
        measure, "__qualname__", type(measure).__qualname__
    )
    return f"{module}.{qualname}"


class _SeedMeasureTask:
    """Picklable runner task for :func:`replicated`."""

    def __init__(self, measure: Callable[[int], float]):
        self.measure = measure

    def __call__(self, spec) -> Dict[str, float]:
        return {"value": float(self.measure(spec.seed))}


class _SweepTask:
    """Picklable runner task for :func:`sweep` (rebuilds topology by name)."""

    def __init__(
        self,
        builds: Dict[str, Callable[[random.Random], Graph]],
        measure: Callable[[Graph, int], float],
    ):
        self.builds = builds
        self.measure = measure

    def __call__(self, spec) -> Dict[str, float]:
        build = self.builds[spec.params["topology"]]
        graph = build(random.Random(spec.seed))
        return {"value": float(self.measure(graph, spec.seed))}


def replicated(
    measure: Callable[[int], float],
    replications: int,
    seed: int,
    label: str = "measure",
    workers: int = 0,
    cache_dir: Union[str, os.PathLike, None] = None,
) -> ReplicatedMeasurement:
    """Run ``measure(seed_i)`` over independent derived seeds.

    With ``workers > 0`` the replications shard over a process pool
    (``measure`` must then be picklable); ``cache_dir`` replays stored
    samples.  Seeds and the returned sample order are identical in
    every configuration.
    """
    if replications < 1:
        raise ConfigurationError("need at least one replication")
    from repro.runner import TaskSpec, run_tasks

    factory = RngFactory(seed)
    tasks = [
        TaskSpec(
            exp_id="replicated",
            case=(
                ("label", label),
                ("measure", _measure_name(measure)),
            ),
            replicate=rep,
            seed=rep_seed,
        )
        for rep, rep_seed in enumerate(
            factory.replication_seeds(replications)
        )
    ]
    report = run_tasks(
        tasks,
        _SeedMeasureTask(measure),
        workers=workers,
        cache=cache_dir,
    )
    out = ReplicatedMeasurement()
    for outcome in report.outcomes:
        out.add(float(outcome.metrics["value"]))
    return out


def sweep(
    points: Sequence[TopologyPoint],
    measure: Callable[[Graph, int], float],
    replications: int,
    seed: int,
    workers: int = 0,
    cache_dir: Union[str, os.PathLike, None] = None,
) -> Dict[str, ReplicatedMeasurement]:
    """Measure over each topology point with seeded replications.

    The topology itself is re-sampled per replication for randomized
    families, so the variance covers both topology and protocol coins.

    The sweep executes through :func:`repro.runner.run_tasks`:
    ``workers=0`` runs inline, ``workers=N`` shards the grid over N
    processes (``measure`` and each point's ``build`` must then be
    picklable — top-level functions, not lambdas), and ``cache_dir``
    makes re-runs replay from disk.  Seed derivation is fixed per
    ``(point index, replication)``, so all gears agree sample for
    sample with the historical serial implementation.
    """
    from repro.runner import TaskSpec, run_tasks

    factory = RngFactory(seed)
    tasks = []
    builds: Dict[str, Callable[[random.Random], Graph]] = {}
    for index, point in enumerate(points):
        builds[point.name] = point.build
        sub = factory.spawn(index)
        for rep, rep_seed in enumerate(
            sub.replication_seeds(replications)
        ):
            tasks.append(
                TaskSpec(
                    exp_id="sweep",
                    case=(
                        ("measure", _measure_name(measure)),
                        ("topology", point.name),
                    ),
                    replicate=rep,
                    seed=rep_seed,
                )
            )
    report = run_tasks(
        tasks,
        _SweepTask(builds, measure),
        workers=workers,
        cache=cache_dir,
    )
    results: Dict[str, ReplicatedMeasurement] = {}
    for outcome in report.outcomes:
        name = outcome.spec.params["topology"]
        results.setdefault(name, ReplicatedMeasurement()).add(
            float(outcome.metrics["value"])
        )
    return results
