"""The resilience harness: collection/broadcast under parameterized faults.

Quantifies exactly how load-bearing the paper's failure-free model is:
each :class:`FaultScenario` names a failure model builder; the harness
runs self-healing collection (:mod:`repro.core.repair`) under it and
reports delivery ratio, completion-time inflation versus the failure-free
baseline, repair count, and partition-detection accuracy — the numbers
behind the "Beyond the model" sections of the docs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.repair import (
    RepairPolicy,
    ResilientCollectionResult,
    run_resilient_collection,
)
from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId
from repro.radio.failures import (
    AdversarialJammer,
    FailureModel,
    GilbertElliott,
    MarkovChurn,
    RegionOutage,
)

#: A scenario builder: (graph, tree, seed) -> failure model (None = no faults).
ScenarioBuilder = Callable[[Graph, BFSTree, int], Optional[FailureModel]]


@dataclass(frozen=True)
class FaultScenario:
    """A named, parameterized fault injection recipe."""

    name: str
    description: str
    build: ScenarioBuilder


@dataclass
class ResilienceReport:
    """One scenario's outcome next to the failure-free baseline."""

    scenario: str
    result: ResilientCollectionResult
    baseline_slots: int

    @property
    def slots(self) -> int:
        return self.result.slots

    @property
    def slowdown(self) -> float:
        """Completion-time inflation vs. the failure-free run."""
        if self.baseline_slots == 0:
            return 1.0
        return self.result.slots / self.baseline_slots

    @property
    def delivery_ratio(self) -> float:
        return self.result.delivery_ratio

    @property
    def reachable_delivery_ratio(self) -> float:
        return self.result.reachable_delivery_ratio

    @property
    def repairs(self) -> int:
        return len(self.result.repairs)


def _interior_nodes(tree: BFSTree) -> List[NodeId]:
    """Non-root stations with BFS children (crashing one hurts a subtree)."""
    return [
        node
        for node in tree.nodes
        if node != tree.root and tree.children[node]
    ]


def standard_scenarios(
    churn_fail: float = 0.002,
    churn_recover: float = 0.01,
    fade_p_bad: float = 0.02,
    fade_p_good: float = 0.2,
    jam_period: int = 24,
    jam_duty: int = 6,
) -> List[FaultScenario]:
    """The default scenario battery (plus the implicit 'none' baseline).

    * ``churn`` — every non-root interior station churns (Markov up/down);
    * ``fading`` — Gilbert–Elliott bursty loss on every link;
    * ``jammer`` — a duty-cycled wideband jammer over the whole network;
    * ``blackout`` — the busiest interior station and its subtree go dark
      for a window mid-run, then recover;
    * ``partition`` — one interior station crashes forever at slot 0,
      severing its subtree wherever the graph offers no detour.
    """

    def churn(graph: Graph, tree: BFSTree, seed: int):
        interior = _interior_nodes(tree)
        if not interior:
            return None
        return MarkovChurn(
            interior, fail_rate=churn_fail, recover_rate=churn_recover,
            seed=seed,
        )

    def fading(graph: Graph, tree: BFSTree, seed: int):
        return GilbertElliott(
            p_bad=fade_p_bad, p_good=fade_p_good, seed=seed
        )

    def jammer(graph: Graph, tree: BFSTree, seed: int):
        return AdversarialJammer(period=jam_period, duty=jam_duty)

    def blackout(graph: Graph, tree: BFSTree, seed: int):
        interior = _interior_nodes(tree)
        if not interior:
            return None
        victim = max(interior, key=lambda v: (tree.subtree_size(v), v))
        span = tuple(tree.subtree(victim))
        window = 40 * len(span)
        return RegionOutage(span, start=window, end=2 * window)

    def partition(graph: Graph, tree: BFSTree, seed: int):
        interior = _interior_nodes(tree)
        if not interior:
            return None
        victim = max(interior, key=lambda v: (tree.subtree_size(v), v))
        return RegionOutage([victim], start=0, end=None)

    return [
        FaultScenario("churn", "Markov churn on interior stations", churn),
        FaultScenario("fading", "Gilbert-Elliott bursty link loss", fading),
        FaultScenario("jammer", "duty-cycled wideband jammer", jammer),
        FaultScenario("blackout", "transient subtree outage", blackout),
        FaultScenario("partition", "permanent crash of a cut station", partition),
    ]


def evaluate_scenario(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    scenario: FaultScenario,
    seed: int,
    policy: Optional[RepairPolicy] = None,
    max_slots: Optional[int] = None,
    down_grace_slots: Optional[int] = 2_000,
    baseline_slots: Optional[int] = None,
) -> ResilienceReport:
    """Run one scenario and score it against the failure-free baseline.

    The baseline runs the *same* resilient stack with no failure model, so
    the slowdown isolates the cost of the faults (and repairs) rather than
    the cost of the hardening machinery.  Pass ``baseline_slots`` to reuse
    a baseline across scenarios.
    """
    if baseline_slots is None:
        baseline = run_resilient_collection(
            graph, tree, sources, seed, failures=None, policy=policy,
            max_slots=max_slots,
        )
        baseline_slots = baseline.slots
    result = run_resilient_collection(
        graph,
        tree,
        sources,
        seed,
        failures=scenario.build(graph, tree, seed),
        policy=policy,
        max_slots=max_slots,
        down_grace_slots=down_grace_slots,
    )
    return ResilienceReport(
        scenario=scenario.name, result=result, baseline_slots=baseline_slots
    )


def run_resilience_suite(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    policy: Optional[RepairPolicy] = None,
    max_slots: Optional[int] = None,
    down_grace_slots: Optional[int] = 2_000,
) -> List[ResilienceReport]:
    """Evaluate a battery of scenarios against one shared baseline."""
    if not sources:
        raise ConfigurationError("resilience suite needs at least one source")
    scenarios = list(
        standard_scenarios() if scenarios is None else scenarios
    )
    baseline = run_resilient_collection(
        graph, tree, sources, seed, failures=None, policy=policy,
        max_slots=max_slots,
    )
    return [
        evaluate_scenario(
            graph,
            tree,
            sources,
            scenario,
            seed,
            policy=policy,
            max_slots=max_slots,
            down_grace_slots=down_grace_slots,
            baseline_slots=baseline.slots,
        )
        for scenario in scenarios
    ]


def default_sources(tree: BFSTree, k: int = 4) -> Dict[NodeId, List[Any]]:
    """The harness's standard traffic shape: deep burst + mid injection."""
    deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
    mid = min(
        (v for v in tree.nodes if 0 < tree.level[v] < tree.depth),
        default=deepest,
    )
    sources: Dict[NodeId, List[Any]] = {
        deepest: [f"m{i}" for i in range(k)]
    }
    sources.setdefault(mid, []).extend(["n0", "n1"])
    return sources


def scenario_metrics(
    scenario: str,
    seed: int,
    layers: int = 6,
    width: int = 3,
    k: int = 4,
    down_grace_slots: Optional[int] = 2_000,
) -> Dict[str, float]:
    """One pure resilience task for the parallel runner (experiment E16).

    Runs self-healing collection on a ``layered_band(layers, width)``
    topology twice with the same seed — failure-free baseline, then the
    named scenario — and returns the headline numbers as a flat metrics
    dict.  Being a pure function of its arguments, it shards and caches
    cleanly; :mod:`repro.runner.defs` registers it under ``E16``.
    """
    by_name = {s.name: s for s in standard_scenarios()}
    if scenario not in by_name:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; known: {sorted(by_name)}"
        )
    from repro.graphs import layered_band, reference_bfs_tree

    graph = layered_band(layers, width)
    tree = reference_bfs_tree(graph, 0)
    sources = default_sources(tree, k)
    baseline = run_resilient_collection(
        graph, tree, sources, seed, failures=None
    )
    report = evaluate_scenario(
        graph,
        tree,
        sources,
        by_name[scenario],
        seed,
        down_grace_slots=down_grace_slots,
        baseline_slots=baseline.slots,
    )
    result = report.result
    return {
        "slots": result.slots,
        "baseline_slots": baseline.slots,
        "slowdown": report.slowdown,
        "delivered": result.messages_delivered,
        "expected": result.expected,
        "delivery_ratio": report.delivery_ratio,
        "reachable_delivery_ratio": report.reachable_delivery_ratio,
        "repairs": report.repairs,
        "declared_partitioned": len(result.declared_partitioned),
        "partition_precision": result.partition_precision,
        "partition_recall": result.partition_recall,
        "timed_out": int(result.timed_out),
    }


def resilience_table(reports: Sequence[ResilienceReport]) -> str:
    """Render the suite's headline numbers as one ASCII table."""
    from repro.analysis.tables import format_table

    rows = []
    for report in reports:
        result = report.result
        rows.append(
            [
                report.scenario,
                f"{result.messages_delivered}/{result.expected}",
                f"{report.delivery_ratio:.2f}",
                f"{report.reachable_delivery_ratio:.2f}",
                f"{report.slowdown:.2f}x",
                report.repairs,
                len(result.declared_partitioned),
                f"{result.partition_precision:.2f}/{result.partition_recall:.2f}",
                "yes" if result.timed_out else "no",
            ]
        )
    return format_table(
        [
            "scenario",
            "delivered",
            "ratio",
            "reachable",
            "slowdown",
            "repairs",
            "declared",
            "part P/R",
            "timeout",
        ],
        rows,
        title="Resilience: collection under injected faults",
    )
