"""Pipeline introspection: level-occupancy timelines and congestion profiles.

Two observability tools used by examples and the §8-remark-(5) analysis:

* :func:`record_collection_timeline` samples, once per Decay phase, how
  many buffered messages sit at each BFS level — the state vector of the
  §4.2 "model 1" — and :func:`render_timeline` draws it as an ASCII
  heatmap (levels × phases), making the pipeline visibly drain toward
  the root.
* :func:`congestion_profile` quantifies remark (5): "Our protocols route
  messages through a spanning tree causing congestion at the root."  It
  aggregates per-station transmission counts by BFS level; the
  level-1 stations (the root's children) carry the entire traffic volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.errors import ConfigurationError
from repro.graphs.bfs_tree import BFSTree
from repro.graphs.graph import Graph, NodeId

#: Heatmap glyphs, lightest to heaviest occupancy.
_GLYPHS = " .:-=+*#%@"


@dataclass
class Timeline:
    """Occupancy matrix: ``occupancy[phase][level]`` buffered messages."""

    occupancy: List[List[int]]
    phase_length: int

    @property
    def phases(self) -> int:
        return len(self.occupancy)

    @property
    def levels(self) -> int:
        return len(self.occupancy[0]) if self.occupancy else 0

    def level_series(self, level: int) -> List[int]:
        """Occupancy of one level across phases."""
        return [row[level] for row in self.occupancy]

    def total_series(self) -> List[int]:
        """Total in-flight messages per phase (monotone non-increasing
        for a batch workload)."""
        return [sum(row) for row in self.occupancy]


def record_collection_timeline(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
    max_phases: int = 20_000,
    level_classes: int = 3,
) -> Timeline:
    """Run collection, sampling per-level backlog at each phase boundary."""
    from repro.core.collection import build_collection_network

    network, processes, slots = build_collection_network(
        graph, tree, sources, seed, level_classes=level_classes
    )
    depth = tree.depth
    by_level: Dict[int, List[NodeId]] = {}
    for node in tree.nodes:
        by_level.setdefault(tree.level[node], []).append(node)

    def snapshot() -> List[int]:
        return [
            sum(processes[v].backlog for v in by_level.get(level, ()))
            for level in range(depth + 1)
        ]

    occupancy = [snapshot()]
    for _phase in range(max_phases):
        if sum(occupancy[-1]) == 0:
            break
        for _ in range(slots.phase_length):
            network.step()
        occupancy.append(snapshot())
    else:
        raise ConfigurationError(
            f"collection did not drain within {max_phases} phases"
        )
    return Timeline(occupancy=occupancy, phase_length=slots.phase_length)


def render_timeline(timeline: Timeline, max_width: int = 100) -> str:
    """ASCII heatmap: one row per BFS level, one column per phase.

    Darker glyphs = more buffered messages.  Long runs are decimated to
    ``max_width`` columns.
    """
    if timeline.phases == 0:
        return "(empty timeline)"
    stride = max(1, -(-timeline.phases // max_width))
    columns = list(range(0, timeline.phases, stride))
    peak = max(
        (v for row in timeline.occupancy for v in row), default=0
    )
    lines = [
        f"level occupancy over {timeline.phases - 1} phases "
        f"(column = {stride} phase{'s' if stride > 1 else ''}, "
        f"peak = {peak})"
    ]
    for level in range(timeline.levels):
        series = timeline.level_series(level)
        cells = []
        for start in columns:
            value = max(series[start : start + stride])
            if peak == 0:
                cells.append(_GLYPHS[0])
            else:
                index = min(
                    len(_GLYPHS) - 1,
                    (value * (len(_GLYPHS) - 1) + peak - 1) // peak,
                )
                cells.append(_GLYPHS[index])
        lines.append(f"L{level:>2} |{''.join(cells)}|")
    return "\n".join(lines)


@dataclass
class CongestionProfile:
    """Traffic load aggregated by BFS level (remark 5).

    Two views of load:

    * ``*_transmissions`` — raw radio transmissions (includes Decay
      retries, so contended stations inflate);
    * ``*_handled`` — distinct *messages* a station carried: designated
      receptions it acknowledged plus messages it originated.  This is
      the routing-load measure the remark is about: for collection,
      handled(v) equals the number of sources in v's subtree.
    """

    per_level_transmissions: Dict[int, int]
    per_node_transmissions: Dict[NodeId, int]
    per_node_handled: Dict[NodeId, int]
    per_level_handled: Dict[int, int]

    @property
    def busiest_level(self) -> int:
        return max(
            self.per_level_transmissions,
            key=lambda level: self.per_level_transmissions[level],
        )

    def load_share(self, level: int) -> float:
        total = sum(self.per_level_transmissions.values())
        if total == 0:
            return 0.0
        return self.per_level_transmissions.get(level, 0) / total


def congestion_profile(
    graph: Graph,
    tree: BFSTree,
    sources: Dict[NodeId, List[Any]],
    seed: int,
) -> CongestionProfile:
    """Measure the per-level data-transmission load of one collection run.

    §8 remark (5) observes that tree routing concentrates traffic near
    the root; in collection, level-1 stations must forward *every*
    message, so their share of transmissions approaches 1 as D grows.
    """
    from repro.core.collection import build_collection_network

    network, processes, _slots = build_collection_network(
        graph, tree, sources, seed
    )
    total = sum(len(v) for v in sources.values())
    root_process = processes[tree.root]
    network.run(
        2_000_000,
        until=lambda net: len(root_process.delivered) >= total
        and all(p.is_done() for p in processes.values()),
        check_every=4,
    )
    per_node = {
        node: process.lane.data_transmissions
        for node, process in processes.items()
    }
    per_node_handled = {
        node: process.lane.ack_transmissions + len(sources.get(node, ()))
        for node, process in processes.items()
    }
    per_level: Dict[int, int] = {}
    per_level_handled: Dict[int, int] = {}
    for node in per_node:
        level = tree.level[node]
        per_level[level] = per_level.get(level, 0) + per_node[node]
        per_level_handled[level] = (
            per_level_handled.get(level, 0) + per_node_handled[node]
        )
    return CongestionProfile(
        per_level_transmissions=per_level,
        per_node_transmissions=per_node,
        per_node_handled=per_node_handled,
        per_level_handled=per_level_handled,
    )
