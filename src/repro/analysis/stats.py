"""Statistics utilities for experiment harnesses.

Kept dependency-light (plain Python + math); SciPy is only used by tests
for cross-validation, never by the library itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Mean with a normal-approximation confidence interval."""

    mean: float
    stddev: float
    count: int
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci_half_width:.2f} (n={self.count})"


def summarize(samples: Sequence[float], z: float = 1.96) -> Summary:
    """Mean, sample stddev and a z-interval for the mean."""
    if not samples:
        raise ConfigurationError("cannot summarize an empty sample")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    else:
        variance = 0.0
    stddev = math.sqrt(variance)
    half = z * stddev / math.sqrt(n)
    return Summary(
        mean=mean,
        stddev=stddev,
        count=n,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def quantile(samples: Sequence[float], p: float) -> float:
    """Exact p-quantile by sorted linear interpolation.

    Uses the inclusive midpoint convention (numpy's default
    ``linear``): the p-quantile of n samples sits at rank
    ``p·(n−1)`` of the sorted data, interpolating between the two
    nearest order statistics.  This is the ground truth the streaming
    :class:`repro.service.streaming.P2Quantile` sketch is validated
    against.
    """
    if not samples:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"quantile must be in [0,1], got {p}")
    ordered = sorted(float(v) for v in samples)
    rank = p * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ≈ slope·x + intercept``."""
    if len(xs) != len(ys):
        raise ConfigurationError("x/y length mismatch")
    if len(xs) < 2:
        raise ConfigurationError("need at least two points to fit a line")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ConfigurationError("degenerate fit: all x equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x

def r_squared(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of determination of the linear fit."""
    slope, intercept = linear_fit(xs, ys)
    mean_y = sum(ys) / len(ys)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def scaling_exponent(sizes: Sequence[float], costs: Sequence[float]) -> float:
    """Fit ``cost ≈ c·size^α`` and return α (log–log slope).

    Experiments use this to check measured growth against the paper's
    orders: e.g. collection slots vs k should fit α ≈ 1 at fixed D, Δ.
    """
    if any(s <= 0 for s in sizes) or any(c <= 0 for c in costs):
        raise ConfigurationError("scaling fit requires positive data")
    slope, _intercept = linear_fit(
        [math.log(s) for s in sizes], [math.log(c) for c in costs]
    )
    return slope


def geometric_pmf(p: float, k: int) -> float:
    """P[Geom(p) = k] for k ≥ 1 (support on {1, 2, …})."""
    if not 0.0 < p <= 1.0:
        raise ConfigurationError(f"p must be in (0,1], got {p}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return p * (1.0 - p) ** (k - 1)


def total_variation_distance(
    p: Sequence[float], q: Sequence[float]
) -> float:
    """½·Σ|p_i − q_i| over the common support (padded with zeros)."""
    length = max(len(p), len(q))
    padded_p = list(p) + [0.0] * (length - len(p))
    padded_q = list(q) + [0.0] * (length - len(q))
    return 0.5 * sum(abs(a - b) for a, b in zip(padded_p, padded_q))


@dataclass(frozen=True)
class KSResult:
    """Two-sample Kolmogorov–Smirnov outcome."""

    statistic: float  # sup |F1 - F2|
    pvalue: float  # asymptotic two-sided p-value
    n1: int
    n2: int

    def rejects(self, alpha: float = 0.01) -> bool:
        return self.pvalue < alpha


def _ks_pvalue(lam: float) -> float:
    """Asymptotic Kolmogorov Q(λ) = 2·Σ (−1)^{j−1}·exp(−2 j² λ²)."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def ks_2sample(
    sample1: Sequence[float], sample2: Sequence[float]
) -> KSResult:
    """Two-sample KS test: are the samples from one distribution?

    Exact D statistic over the pooled support; asymptotic two-sided
    p-value via the Kolmogorov distribution with the standard
    small-sample correction ``λ = (√n_e + 0.12 + 0.11/√n_e)·D``
    (Numerical Recipes §14.3).  The vector-engine equivalence harness
    uses this to compare scalar vs vector completion-slot distributions;
    ties (both samples are integer slot counts) are handled by stepping
    both empirical CDFs through the pooled sorted values.
    """
    if not sample1 or not sample2:
        raise ConfigurationError("KS test requires two non-empty samples")
    xs = sorted(float(v) for v in sample1)
    ys = sorted(float(v) for v in sample2)
    n1, n2 = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n1 and j < n2:
        value = min(xs[i], ys[j])
        while i < n1 and xs[i] <= value:
            i += 1
        while j < n2 and ys[j] <= value:
            j += 1
        d = max(d, abs(i / n1 - j / n2))
    effective = n1 * n2 / (n1 + n2)
    root = math.sqrt(effective)
    lam = (root + 0.12 + 0.11 / root) * d
    return KSResult(statistic=d, pvalue=_ks_pvalue(lam), n1=n1, n2=n2)


def replicate(fn, seeds: Sequence[int]) -> List[float]:
    """Run ``fn(seed)`` for each seed, collecting float results."""
    return [float(fn(seed)) for seed in seeds]
