"""The experiment registry: DESIGN.md §3 as data.

Each entry ties one experiment ID to the paper claim it reproduces, the
bench file that regenerates its table, and the modules under test — so
the index stays checkable: tests assert every registered bench file
exists and every bench file is registered.

``python -m repro experiments`` prints this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Experiment:
    """One experiment of the reproduction harness."""

    exp_id: str
    claim: str  # the paper statement being reproduced
    paper_ref: str  # where in the paper the claim lives
    bench_file: str  # under benchmarks/
    modules: Tuple[str, ...]  # primary modules under test


REGISTRY: List[Experiment] = [
    Experiment(
        "E0",
        "infrastructure: simulator slot throughput and its scaling",
        "(not a paper claim)",
        "bench_engine.py",
        ("repro.radio.network",),
    ),
    Experiment(
        "E1",
        "Decay delivers some message to a contended receiver w.p. ≥ 1/2",
        "§1.4 property (2)",
        "bench_decay.py",
        ("repro.core.decay", "repro.radio"),
    ),
    Experiment(
        "E2",
        "per-phase level-advance probability ≥ µ = e⁻¹(1−e⁻¹)",
        "Theorem 4.1",
        "bench_theorem41.py",
        ("repro.core.collection",),
    ),
    Experiment(
        "E3",
        "k-collection completes in ≤ 32.27·(k+D)·log Δ expected slots",
        "Theorem 4.4",
        "bench_collection.py",
        ("repro.core.collection",),
    ),
    Experiment(
        "E4",
        "E[T₁] ≤ E[T₂] ≤ E[T₃] ≤ E[T₄] = k/λ + D(1−λ)/(µ−λ)",
        "§4.2, Lemmas 4.10/4.11, Theorems 4.3/4.15",
        "bench_model_chain.py",
        ("repro.queueing.tandem", "repro.queueing.exact"),
    ),
    Experiment(
        "E5",
        "Geo/Geo/1 stationary law, Little's result, Bernoulli departures",
        "§4.3 (Burke, Hsu–Burke)",
        "bench_queueing.py",
        ("repro.queueing.analysis", "repro.queueing.bernoulli"),
    ),
    Experiment(
        "E6",
        "setup phase lasts expected O((n + D·log n)·log Δ) slots",
        "§2",
        "bench_setup.py",
        ("repro.core.bfs", "repro.core.leader"),
    ),
    Experiment(
        "E7",
        "k point-to-point in O((k+D)·log Δ); O(log Δ)/message throughput",
        "§5.4",
        "bench_p2p.py",
        ("repro.core.point_to_point",),
    ),
    Experiment(
        "E8",
        "k broadcasts in O((k+D)·log Δ·log n)",
        "§6",
        "bench_broadcast.py",
        ("repro.core.broadcast",),
    ),
    Experiment(
        "E9",
        "ranking in O(n·log n·log Δ)",
        "§7",
        "bench_ranking.py",
        ("repro.core.ranking",),
    ),
    Experiment(
        "E10",
        "pipelining beats TDMA / sequential forwarding / per-message floods",
        "§1.3, §6 (vs [7], [8])",
        "bench_baselines.py",
        ("repro.baselines",),
    ),
    Experiment(
        "E11",
        "level multiplexing: correctness device at ×3 slot cost",
        "§2.2",
        "bench_ablation_multiplex.py",
        ("repro.core.slots",),
    ),
    Experiment(
        "E12",
        "Decay budget 2·log Δ is the knee; Decay vs fixed-p ALOHA regimes",
        "§1.4 (ablation)",
        "bench_ablation_decay.py",
        ("repro.core.decay", "repro.baselines.aloha"),
    ),
    Experiment(
        "E13",
        "every received message is acknowledged with certainty",
        "Theorem 3.1",
        "bench_ack.py",
        ("repro.core.transport",),
    ),
    Experiment(
        "E14",
        "tree routing congests the root's neighborhood",
        "§8 remark (5)",
        "bench_congestion.py",
        ("repro.analysis.timeline",),
    ),
    Experiment(
        "E15",
        "bounded sojourn below the service rate; blow-up at the knee",
        "§4.3 (stability, live)",
        "bench_saturation.py",
        ("repro.workloads",),
    ),
    Experiment(
        "E16",
        "self-healing collection under churn, fading, jamming, partition",
        "beyond the model (§1.1 relaxed)",
        "bench_resilience.py",
        ("repro.core.repair", "repro.analysis.resilience"),
    ),
    Experiment(
        "E17",
        "vector lockstep engine ≥ 10× scalar replications/sec, "
        "distributionally equivalent (invariants + KS)",
        "(not a paper claim)",
        "bench_vector.py",
        ("repro.vector", "repro.runner"),
    ),
    Experiment(
        "E18",
        "sparse CSR reception ≥ 5× dense at n = 10⁴ unit-disk, "
        "bit-identical trajectories",
        "(not a paper claim)",
        "bench_scale.py",
        ("repro.vector.engine", "repro.graphs.generators"),
    ),
    Experiment(
        "E19",
        "open-system KPIs in constant memory track the tandem oracle",
        "§4 (Geo/Geo/1 tandem, open system)",
        "bench_service.py",
        ("repro.service", "repro.workloads"),
    ),
    Experiment(
        "E20",
        "the measured stability knee brackets the analytic critical λ",
        "§4.3 (stability threshold)",
        "bench_service.py",
        ("repro.service.sweep", "repro.queueing"),
    ),
    Experiment(
        "E21",
        "declarative scenario specs dispatch within 5% of direct "
        "registry invocation, with cache-identical registry twins",
        "(not a paper claim)",
        "bench_scenario.py",
        ("repro.scenario", "repro.kpi"),
    ),
]


def by_id(exp_id: str) -> Experiment:
    """Look up one experiment; raises KeyError with the known IDs."""
    for experiment in REGISTRY:
        if experiment.exp_id == exp_id:
            return experiment
    raise KeyError(
        f"unknown experiment {exp_id!r}; known: "
        f"{[e.exp_id for e in REGISTRY]}"
    )


def registry_table() -> str:
    """The registry rendered as an ASCII table (for the CLI)."""
    from repro.analysis.tables import format_table

    return format_table(
        ["id", "paper", "claim", "bench"],
        [
            [e.exp_id, e.paper_ref, e.claim, e.bench_file]
            for e in REGISTRY
        ],
        title="Experiments (regenerate: pytest benchmarks/ --benchmark-only -s)",
    )
