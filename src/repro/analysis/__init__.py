"""Experiment scaffolding: statistics, sweeps, table rendering."""

from repro.analysis.experiments import Experiment, REGISTRY, by_id, registry_table
from repro.analysis.sketches import P2Quantile, RateWindow, Welford
from repro.analysis.stats import (
    Summary,
    geometric_pmf,
    linear_fit,
    quantile,
    r_squared,
    replicate,
    scaling_exponent,
    summarize,
    total_variation_distance,
)
from repro.analysis.sweep import (
    ReplicatedMeasurement,
    TopologyPoint,
    replicated,
    standard_topologies,
    sweep,
)
from repro.analysis.resilience import (
    FaultScenario,
    ResilienceReport,
    default_sources,
    evaluate_scenario,
    resilience_table,
    run_resilience_suite,
    scenario_metrics,
    standard_scenarios,
)
from repro.analysis.tables import format_table, print_table
from repro.analysis.timeline import (
    CongestionProfile,
    Timeline,
    congestion_profile,
    record_collection_timeline,
    render_timeline,
)

__all__ = [
    "CongestionProfile",
    "Experiment",
    "FaultScenario",
    "P2Quantile",
    "REGISTRY",
    "RateWindow",
    "Welford",
    "ReplicatedMeasurement",
    "ResilienceReport",
    "Summary",
    "TopologyPoint",
    "Timeline",
    "congestion_profile",
    "default_sources",
    "evaluate_scenario",
    "format_table",
    "geometric_pmf",
    "linear_fit",
    "print_table",
    "quantile",
    "r_squared",
    "record_collection_timeline",
    "render_timeline",
    "replicate",
    "replicated",
    "resilience_table",
    "run_resilience_suite",
    "scaling_exponent",
    "scenario_metrics",
    "standard_scenarios",
    "standard_topologies",
    "by_id",
    "registry_table",
    "summarize",
    "sweep",
    "total_variation_distance",
]
