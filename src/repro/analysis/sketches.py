"""Constant-memory streaming estimators (shared sketches).

Born in the open-system service loop — a long-horizon run must never
retain per-message state — and now shared by every consumer that
computes KPIs online (the service loop, the scenario KPI processor):

* :class:`Welford` — numerically stable running mean/variance
  (Welford 1962), O(1) state.
* :class:`P2Quantile` — the P² dynamic quantile sketch of Jain &
  Chlamtac (CACM 1985): five markers tracking the p-quantile of an
  unbounded stream with piecewise-parabolic height adjustment, O(1)
  state, no samples stored.
* :class:`RateWindow` — event counts bucketed into fixed slot windows,
  keeping only the running aggregate (count, window tally, extrema).

SciPy/NumPy are deliberately not used here: the estimators run inside
the per-slot hot loop and must stay import-light; tests cross-validate
them against numpy and exact quantiles.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import ConfigurationError


class Welford:
    """Running mean and variance (Welford's online algorithm)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (n−1 denominator); 0 for fewer than 2 values."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
        }


class P2Quantile:
    """P² single-quantile sketch (Jain & Chlamtac 1985).

    Tracks the ``p``-quantile of a stream with five markers whose
    heights are nudged toward their ideal positions by a piecewise
    parabolic (hence P²) interpolation — constant memory, one pass,
    no retained samples.  Exact until the fifth observation.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments",
                 "_initial", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"quantile must be in (0,1), got {p}")
        self.p = p
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ]
            return

        q = self._heights
        n = self._positions
        # Locate the cell and bump the extreme markers.
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate of the p-quantile (NaN on an empty stream)."""
        if not self.count:
            return float("nan")
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            rank = self.p * (len(ordered) - 1)
            low = int(rank)
            high = min(low + 1, len(ordered) - 1)
            return ordered[low] + (rank - low) * (ordered[high] - ordered[low])
        return self._heights[2]


class RateWindow:
    """Event counts bucketed into fixed windows of ``window_slots`` slots.

    Keeps only O(1) state: the current window's tally plus aggregates of
    completed windows (count, sum, extrema, Welford moments) — the
    streaming form of a windowed-throughput series.
    """

    __slots__ = ("window_slots", "_window_index", "_tally", "windows",
                 "moments", "min_rate", "max_rate")

    def __init__(self, window_slots: int):
        if window_slots < 1:
            raise ConfigurationError("window must be >= 1 slot")
        self.window_slots = window_slots
        self._window_index = 0
        self._tally = 0.0
        self.windows = 0
        self.moments = Welford()
        self.min_rate = math.inf
        self.max_rate = -math.inf

    def record(self, slot: int, amount: float = 1.0) -> None:
        index = slot // self.window_slots
        while index > self._window_index:
            self._close_window()
        self._tally += amount

    def _close_window(self) -> None:
        rate = self._tally / self.window_slots
        self.windows += 1
        self.moments.add(rate)
        self.min_rate = min(self.min_rate, rate)
        self.max_rate = max(self.max_rate, rate)
        self._tally = 0.0
        self._window_index += 1

    def finish(self, horizon_slot: int) -> None:
        """Close every window up to (excluding) ``horizon_slot``'s window."""
        final = horizon_slot // self.window_slots
        while final > self._window_index:
            self._close_window()

    @property
    def mean_rate(self) -> float:
        """Mean per-slot rate over completed windows."""
        if not self.windows:
            return float("nan")
        return self.moments.mean
