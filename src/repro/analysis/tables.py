"""ASCII table rendering for the experiment harnesses.

Every benchmark prints its result as one of these tables so the console
output of ``pytest benchmarks/ --benchmark-only`` *is* the reproduced
"table" for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a rule under the header."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        if len(cells) != len(headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells, header has {len(headers)}"
            )
        materialized.append(cells)
    widths = [
        max(len(row[col]) for row in materialized)
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(materialized[0], widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> None:
    """Print a table (flushed, so it survives pytest capture ordering)."""
    print()
    print(format_table(headers, rows, title=title), flush=True)
