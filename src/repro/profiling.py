"""Lightweight slot-loop profiling: per-phase wall-clock accumulators.

Perf work on the simulation engines needs a measurement the optimizer
can trust *before* cutting: where do the slot loops actually spend their
time — polling processes, resolving receptions, end-of-slot bookkeeping,
the vector kernels?  This module provides that as a near-zero-overhead
accumulator:

* :class:`SlotLoopProfile` — named ``perf_counter`` buckets (seconds +
  sample counts) plus plain event counters;
* :func:`profiled` — a context manager installing one profile as the
  *ambient* profile of the process.  Engines pick it up at construction
  time (``profiling.current_profile()``) and, when one is active, wrap
  each phase of their slot loop in a pair of clock reads.  With no
  ambient profile the hot loops pay a single ``is None`` check per
  phase — nothing else.

The ambient-profile design is what lets ``python -m repro profile
<EXP_ID>`` measure a whole registered experiment without threading a
profiler argument through every task function: the CLI runs the
experiment inline (workers=0, no cache) under :func:`profiled` and every
network built inside attributes its slot loop to the same profile.

Profiles are process-local: sharded (``workers >= 1``) runs construct
their networks in worker processes where no ambient profile is active,
so profiling is an inline-gear tool by design.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class SlotLoopProfile:
    """Accumulated per-phase timings and counters for the slot loops.

    ``add(phase, seconds)`` accumulates one timed section; ``bump``
    counts events (slots stepped, processes polled/skipped, …).  The
    :meth:`report` dict is JSON-safe and stable-ordered, ready for the
    ``profile`` CLI and for committing alongside benchmark results.
    """

    #: The clock all sections use; exposed so engines call
    #: ``profiler.clock()`` without importing :mod:`time` logic twice.
    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.samples: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate one timed section of ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.samples[phase] = self.samples.get(phase, 0) + 1

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a plain event counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> Dict[str, Any]:
        """A JSON-safe phase breakdown, largest phase first."""
        total = self.total_seconds
        phases = [
            {
                "phase": phase,
                "seconds": round(self.seconds[phase], 6),
                "share": round(self.seconds[phase] / total, 4)
                if total > 0
                else 0.0,
                "samples": self.samples[phase],
            }
            for phase in sorted(
                self.seconds, key=self.seconds.get, reverse=True
            )
        ]
        return {
            "total_seconds": round(total, 6),
            "phases": phases,
            "counters": dict(sorted(self.counters.items())),
        }

    def summary(self) -> str:
        return json.dumps(self.report(), indent=2)


_ACTIVE: Optional[SlotLoopProfile] = None


def current_profile() -> Optional[SlotLoopProfile]:
    """The ambient profile engines should report to (None = disabled)."""
    return _ACTIVE


@contextmanager
def profiled(
    profile: Optional[SlotLoopProfile] = None,
) -> Iterator[SlotLoopProfile]:
    """Install ``profile`` (or a fresh one) as the ambient profile.

    Every engine constructed inside the ``with`` block accumulates its
    slot-loop phases into the yielded profile; the previous ambient
    profile (usually None) is restored on exit.
    """
    global _ACTIVE
    if profile is None:
        profile = SlotLoopProfile()
    previous = _ACTIVE
    _ACTIVE = profile
    try:
        yield profile
    finally:
        _ACTIVE = previous
