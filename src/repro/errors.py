"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class TopologyError(ReproError):
    """A graph/topology violates an assumption (e.g. not connected)."""


class ProtocolError(ReproError):
    """A protocol reached a state that the paper's model rules out.

    Raising (rather than silently continuing) turns model violations into
    test failures: for instance, a node transmitting twice on the same
    channel in one slot, or an acknowledgement arriving for a message that
    was never sent.
    """


class SimulationTimeout(ReproError):
    """A simulation did not reach its goal within the allotted slots.

    The paper's protocols are Las-Vegas: always correct, with random running
    time.  A timeout therefore signals either an unlucky run with too small
    a slot budget or a genuine bug; the message includes enough context to
    tell which.
    """

    def __init__(self, message: str, slots_elapsed: int | None = None):
        super().__init__(message)
        self.slots_elapsed = slots_elapsed
