"""repro — a reproduction of Bar-Yehuda, Israeli & Itai,
"Multiple Communication in Multi-Hop Radio Networks" (PODC 1989).

The package provides:

* :mod:`repro.radio` — a slot-accurate simulator of the paper's
  synchronous multi-hop radio model (no collision detection, reception iff
  exactly one transmitting neighbor);
* :mod:`repro.graphs` — topology generators and the BFS-tree substrate;
* :mod:`repro.core` — the paper's protocols: Decay, the Las-Vegas setup
  phase (leader election + distributed BFS + token-DFS preparation),
  deterministic acknowledgements, collection, point-to-point transmission,
  pipelined broadcast, and the ranking application;
* :mod:`repro.queueing` — the queueing-theoretic analysis apparatus of §4
  (Bernoulli servers, tandem queues, the model 1–4 reduction chain and the
  move-vector calculus behind it);
* :mod:`repro.baselines` — the comparison protocols (TDMA convergecast,
  sequential store-and-forward routing, non-pipelined broadcast, ALOHA);
* :mod:`repro.vector` — the NumPy lockstep batch engine: B replications
  of a grid cell simulated simultaneously, with an equivalence harness
  (exact invariants + KS test) tying it to the scalar reference;
* :mod:`repro.analysis` — replication, statistics and table harnesses for
  the experiments indexed in DESIGN.md / EXPERIMENTS.md.

Quickstart::

    from repro.graphs import random_geometric, reference_bfs_tree
    from repro.core import run_collection
    import random

    graph = random_geometric(60, radius=0.25, rng=random.Random(7))
    tree = reference_bfs_tree(graph, root=0)
    result = run_collection(
        graph, tree, sources={5: ["hello"], 17: ["world"]}, seed=42
    )
    print(result.slots, [m.payload for m in result.delivered])
"""

__version__ = "1.8.0"

from repro import core, graphs, radio
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationTimeout,
    TopologyError,
)
from repro.rng import RngFactory

__all__ = [
    "ConfigurationError",
    "ProtocolError",
    "ReproError",
    "RngFactory",
    "SimulationTimeout",
    "TopologyError",
    "core",
    "graphs",
    "radio",
    "__version__",
]
