"""Crash-consistent file publication: same-directory temp + ``os.replace``.

``os.replace`` is only atomic *within one filesystem*.  A temp file
created in the system tmpdir may live on a different mount than its
destination (tmpfs vs. the NFS share a fleet queue lives on), which
turns the "atomic publish" into a cross-device copy that can tear under
a crash — exactly the failure the rename was supposed to exclude.  Every
durable write in the runner therefore stages its temp file *next to* the
destination and renames within the directory.

These helpers are the one code path for that pattern: the result cache,
the run manifest, bench summaries, fleet task/quarantine files and the
chaos plan all publish through here.  A reader never observes a partial
file: it sees either the old content, the new content, or (for a first
write) no file at all.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union


def fsync_dir(path: Union[os.PathLike, str]) -> None:
    """fsync a *directory*, making its entry table durable.

    A rename (or create) is only guaranteed to survive a power cut once
    the containing directory has itself been flushed; fsyncing the file
    alone pins the bytes but not the name.  Used at the runner's
    crash-consistency commit points (journal appends, cache ``put``,
    lease claims) — and a no-op on platforms whose directories cannot be
    opened for fsync.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[os.PathLike, str],
    text: str,
    *,
    fsync: bool = False,
) -> None:
    """Atomically publish ``text`` at ``path``.

    The temp file is created in ``path``'s own directory (never the
    system tmpdir) so the final ``os.replace`` is a same-filesystem
    rename.  ``fsync`` additionally flushes the file to stable storage
    before the rename *and* the directory after it — worth paying for
    records that must survive a machine (not just process) crash, which
    is what the kill -9 chaos verdicts promise.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".tmp-{target.name}-"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        if fsync:
            fsync_dir(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: Union[os.PathLike, str],
    payload: Any,
    *,
    indent: int = None,
    fsync: bool = False,
) -> None:
    """Atomically publish ``payload`` as sorted-key JSON at ``path``."""
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if indent is not None:
        text += "\n"
    atomic_write_text(path, text, fsync=fsync)
