"""Run telemetry: JSONL task records, a run manifest, live progress.

A run directory holds up to three files:

``manifest.json``
    Written at run start and finalized at run end: experiment id, package
    version, interpreter, worker count, grid size, and (on finish) how
    many tasks executed vs. replayed from cache, the total wall time and
    the failure taxonomy (timeouts, retries, quarantined, pool rebuilds,
    corrupt cache entries).  An interrupted run (Ctrl-C) finalizes with
    ``status: "interrupted"`` instead of being left as ``"running"``.
``telemetry.jsonl``
    One JSON line per finished task, in completion order: the full task
    spec, its metrics, wall time, whether it was a cache hit, and the
    completion sequence number.  Machine-readable by design — every
    downstream table in this repo is an aggregation of these lines.
``quarantine.jsonl``
    One JSON line per quarantined task: spec, content key, failure
    category (``error`` / ``crash`` / ``timeout``), attempt count, and
    the last error detail.  Only written when the executor gives up on
    a task.

All JSONL writes are line-buffered and flushed per record, so a crashed
run loses at most the line being written; :func:`read_telemetry`
tolerates that torn final line when re-reading a run post-mortem.

:class:`Progress` renders a live ``done/total`` line with tasks/sec and
an ETA to stderr; it is off by default so tests and pipelines stay quiet.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple

from repro.analysis.stats import summarize
from repro.runner.atomicio import atomic_write_json


def median(samples: Sequence[float]) -> float:
    """The sample median (mean of the middle pair for even n)."""
    if not samples:
        raise ValueError("cannot take the median of an empty sample")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class Progress:
    """A single-line live progress meter (tasks/sec + ETA)."""

    def __init__(
        self,
        total: int,
        enabled: bool = True,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.1,
    ) -> None:
        self.total = total
        self.done = 0
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._started = time.perf_counter()
        self._last_render = 0.0
        self._dirty = False

    def update(self, count: int = 1) -> None:
        self.done += count
        self._dirty = True
        now = time.perf_counter()
        if self.enabled and now - self._last_render >= self.min_interval:
            self._render(now)

    def _render(self, now: float) -> None:
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        if self.done and rate > 0:
            remaining = (self.total - self.done) / rate
            eta = f"ETA {remaining:4.0f}s"
        else:
            eta = "ETA   --"
        self.stream.write(
            f"\r[{self.done}/{self.total}] {rate:6.1f} tasks/s  {eta} "
        )
        self.stream.flush()
        self._last_render = now
        self._dirty = False

    def finish(self) -> None:
        if self.enabled:
            if self._dirty:
                self._render(time.perf_counter())
            self.stream.write("\n")
            self.stream.flush()


class RunTelemetry:
    """Writer for one run's manifest + per-task JSONL records."""

    def __init__(self, run_dir: os.PathLike) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.run_dir / "manifest.json"
        self.tasks_path = self.run_dir / "telemetry.jsonl"
        self.quarantine_path = self.run_dir / "quarantine.jsonl"
        self._tasks_handle: Optional[TextIO] = None
        self._quarantine_handle: Optional[TextIO] = None
        self._manifest: Dict[str, Any] = {}
        self._sequence = 0
        self._quarantined = 0
        self._started = time.perf_counter()

    # -- lifecycle -----------------------------------------------------

    def start(
        self,
        exp_id: str,
        version: str,
        total_tasks: int,
        workers: int,
        options: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self._manifest = {
            "exp_id": exp_id,
            "version": version,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "workers": workers,
            "total_tasks": total_tasks,
            "options": dict(options or {}),
            "started_unix": time.time(),
            "status": "running",
        }
        self._write_manifest()
        # Truncate any previous run's records: a run directory describes
        # exactly one run (resumability lives in the result cache and the
        # sweep checkpoint).  Line buffering keeps every completed record
        # on disk even through a hard kill.
        self._tasks_handle = self.tasks_path.open(
            "w", encoding="utf-8", buffering=1
        )
        try:
            self.quarantine_path.unlink()
        except OSError:
            pass

    def record_task(
        self,
        spec_record: Mapping[str, Any],
        metrics: Mapping[str, Any],
        wall_time: float,
        cached: bool,
        key: str,
    ) -> None:
        if self._tasks_handle is None:
            raise RuntimeError("RunTelemetry.start() was never called")
        line = {
            "sequence": self._sequence,
            "spec": dict(spec_record),
            "metrics": dict(metrics),
            "wall_time": wall_time,
            "cached": cached,
            "key": key,
        }
        self._tasks_handle.write(json.dumps(line, sort_keys=True) + "\n")
        self._tasks_handle.flush()
        self._sequence += 1

    def record_quarantine(self, record: Mapping[str, Any]) -> None:
        """Append one quarantined-task record to ``quarantine.jsonl``."""
        if self._quarantine_handle is None:
            self._quarantine_handle = self.quarantine_path.open(
                "a", encoding="utf-8", buffering=1
            )
        self._quarantine_handle.write(
            json.dumps(dict(record), sort_keys=True) + "\n"
        )
        self._quarantine_handle.flush()
        self._quarantined += 1

    def finish(
        self,
        executed: int,
        cache_hits: int,
        failures: Optional[Mapping[str, Any]] = None,
        status: str = "finished",
    ) -> None:
        if self._tasks_handle is not None:
            self._tasks_handle.close()
            self._tasks_handle = None
        if self._quarantine_handle is not None:
            self._quarantine_handle.close()
            self._quarantine_handle = None
        self._manifest.update(
            {
                "status": status,
                "executed": executed,
                "cache_hits": cache_hits,
                "recorded_tasks": self._sequence,
                "quarantined": self._quarantined,
                "wall_time": time.perf_counter() - self._started,
                "finished_unix": time.time(),
            }
        )
        if failures is not None:
            self._manifest["failures"] = dict(failures)
        self._write_manifest()

    def interrupt(
        self,
        executed: int,
        cache_hits: int,
        failures: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Finalize an interrupted run: Ctrl-C is a pause, not corruption.

        Flushes and closes both JSONL streams and stamps the manifest
        ``status: "interrupted"`` with whatever counts were reached, so
        a resumed run (same cache / checkpoint) picks up cleanly.
        """
        self.finish(
            executed, cache_hits, failures=failures, status="interrupted"
        )

    def _write_manifest(self) -> None:
        # Same-directory temp + os.replace (never the system tmpdir):
        # the rename must not cross filesystems when the run dir is on
        # shared/NFS storage.
        atomic_write_json(self.manifest_path, self._manifest, indent=2)


def _read_jsonl(path: Path, strict: bool = True) -> List[Dict[str, Any]]:
    """Parse a JSONL file, tolerating a truncated *final* line.

    A crash (OOM-kill, power loss) can tear the line being appended;
    every earlier line was flushed whole.  With ``strict`` (the default,
    right for single-writer files) a corrupt interior line raises — that
    is damage, not interruption.  ``strict=False`` skips corrupt
    interior lines instead: a stream a killed host was appending to can
    carry its torn line anywhere once merged with others.
    """
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines) - 1 or not strict:
                continue
            raise ValueError(
                f"corrupt record at {path}:{number + 1}"
            ) from None
    return records


def read_telemetry(
    run_dir: os.PathLike, strict: bool = True
) -> List[Dict[str, Any]]:
    """Parse a run's ``telemetry.jsonl`` back into records."""
    return _read_jsonl(Path(run_dir) / "telemetry.jsonl", strict=strict)


def merge_task_records(
    records: Sequence[Mapping[str, Any]],
) -> Tuple[List[Dict[str, Any]], int]:
    """Deduplicate task records from interleaved multi-writer streams.

    Fleet hosts journal independently, and a task can legitimately be
    recorded twice — a lease reclaimed mid-commit, or a cache hit
    replayed for a dead host's committed task.  Resolution is
    last-write-wins by content ``key`` (records without a key are kept
    verbatim), preserving first-appearance order.  Returns the merged
    records and the number of duplicates folded away — surfaced as
    ``duplicates_merged`` in reports.
    """
    merged: Dict[Any, Dict[str, Any]] = {}
    keyless: List[Dict[str, Any]] = []
    duplicates = 0
    for record in records:
        key = record.get("key")
        if key is None:
            keyless.append(dict(record))
            continue
        if key in merged:
            duplicates += 1
        merged[key] = dict(record)
    return list(merged.values()) + keyless, duplicates


def read_quarantine(run_dir: os.PathLike) -> List[Dict[str, Any]]:
    """Parse a run's ``quarantine.jsonl`` (empty if nothing quarantined)."""
    path = Path(run_dir) / "quarantine.jsonl"
    if not path.exists():
        return []
    return _read_jsonl(path)


def bench_summary(report) -> Dict[str, Any]:
    """The machine-readable ``BENCH_<EXP_ID>.json`` payload for a run.

    Per grid case and per metric: median, mean, the 95% normal CI, and
    the replicate count; plus run-level wall time and cache statistics —
    the repo's perf-trajectory record.
    """
    cases: List[Dict[str, Any]] = []
    for case_label, outcomes in report.grouped().items():
        metrics_summary: Dict[str, Any] = {}
        names = sorted({m for o in outcomes for m in o.metrics})
        for name in names:
            samples = [
                float(o.metrics[name])
                for o in outcomes
                if name in o.metrics
                and isinstance(o.metrics[name], (int, float))
                and not isinstance(o.metrics[name], bool)
                and math.isfinite(float(o.metrics[name]))
            ]
            if not samples:
                continue
            stats = summarize(samples)
            metrics_summary[name] = {
                "median": median(samples),
                "mean": stats.mean,
                "ci95_low": stats.ci_low,
                "ci95_high": stats.ci_high,
                "n": stats.count,
            }
        cases.append(
            {
                "case": dict(outcomes[0].spec.case),
                "label": case_label,
                "replicates": len(outcomes),
                "metrics": metrics_summary,
                "task_wall_time": sum(o.wall_time for o in outcomes),
            }
        )
    return {
        "exp_id": report.exp_id,
        "version": report.version,
        "workers": report.workers,
        "tasks": len(report.outcomes),
        "executed": report.executed,
        "cache_hits": report.cache_hits,
        "wall_time": report.wall_time,
        "cases": cases,
    }


def write_bench_summary(report, path: os.PathLike) -> Dict[str, Any]:
    """Write :func:`bench_summary` to ``path`` and return the payload."""
    payload = bench_summary(report)
    atomic_write_json(path, payload, indent=2)
    return payload
