"""The parallel experiment runner.

An experiment is a grid of pure ``(topology × workload × seed)`` tasks
(:mod:`repro.runner.task`); the executor (:mod:`repro.runner.executor`)
runs a grid inline (``workers=0``) or sharded over a process pool, with
a content-addressed on-disk result cache (:mod:`repro.runner.cache`)
making interrupted sweeps resumable and repeat runs near-free, and run
telemetry (:mod:`repro.runner.telemetry`) recording per-task JSONL,
a run manifest, and live progress.

Each task selects its simulation ``engine``: ``"scalar"`` (the
reference slot loop) or ``"vector"`` (the NumPy lockstep batch of
:mod:`repro.vector`, evaluating every seed of a grid cell in one call).
The engine is part of the task identity and hence the cache key.

The CLI front end is ``python -m repro run <EXP_ID> --workers N
[--engine vector]``; runnable experiments are registered in
:mod:`repro.runner.defs`.
"""

from repro.runner.cache import ResultCache
from repro.runner.executor import (
    RunReport,
    TaskExecutionError,
    TaskOutcome,
    run_experiment,
    run_tasks,
)
from repro.runner.registry import (
    ExperimentDef,
    get_experiment,
    register,
    registered_ids,
    run_registered_batch,
    run_registered_task,
)
from repro.runner.task import TaskSpec, task_grid
from repro.runner.telemetry import (
    Progress,
    RunTelemetry,
    bench_summary,
    median,
    read_telemetry,
    write_bench_summary,
)

__all__ = [
    "ExperimentDef",
    "Progress",
    "ResultCache",
    "RunReport",
    "RunTelemetry",
    "TaskExecutionError",
    "TaskOutcome",
    "TaskSpec",
    "bench_summary",
    "get_experiment",
    "median",
    "read_telemetry",
    "register",
    "registered_ids",
    "run_experiment",
    "run_registered_batch",
    "run_registered_task",
    "run_tasks",
    "task_grid",
    "write_bench_summary",
]
