"""The parallel experiment runner.

An experiment is a grid of pure ``(topology × workload × seed)`` tasks
(:mod:`repro.runner.task`); the executor (:mod:`repro.runner.executor`)
runs a grid inline (``workers=0``) or sharded over a process pool, with
a content-addressed on-disk result cache (:mod:`repro.runner.cache`)
making interrupted sweeps resumable and repeat runs near-free, and run
telemetry (:mod:`repro.runner.telemetry`) recording per-task JSONL,
a run manifest, and live progress.

Each task selects its simulation ``engine``: ``"scalar"`` (the
reference slot loop) or ``"vector"`` (the NumPy lockstep batch of
:mod:`repro.vector`, evaluating every seed of a grid cell in one call).
The engine is part of the task identity and hence the cache key.

Execution is fault tolerant: a :mod:`~repro.runner.policy.FaultPolicy`
sets per-task watchdog timeouts, bounded retries with deterministic
backoff, and quarantine of tasks that keep failing (crashed workers are
recovered by rebuilding the pool and bisecting the affected chunks); a
:mod:`~repro.runner.checkpoint.SweepCheckpoint` journal makes an
interrupted sweep resume from completed-task state.  The chaos harness
(:mod:`repro.runner.chaos`) proves all of this on a real grid with
injected crashes, hangs, flaky tasks and corrupt cache entries.

Beyond one machine, the fleet backend (:mod:`repro.runner.fleet`)
drains a shared queue directory from workers on any number of hosts,
coordinated only by atomic lease files (:mod:`repro.runner.lease`) and
the shared result cache; ``run_fleet_chaos`` SIGKILLs an entire worker
host mid-sweep and verifies the survivors converge bit-for-bit to a
single-process control.

Without a shared filesystem, the TCP coordinator backend
(:mod:`repro.runner.coord` serving, :mod:`repro.runner.client` on the
worker side, :mod:`repro.runner.wire` for the frame codec) moves the
same claim → execute → commit protocol onto length-prefixed JSON
frames: one coordinator process holds the queue, persisted through an
append-only fsynced journal so a SIGKILL loses nothing, and workers
anywhere with a TCP route drain it; ``run_coord_chaos`` proves it
under frame-level network faults, a partitioned worker and a
coordinator kill-and-restart.

The CLI front ends are ``python -m repro run <EXP_ID> --workers N
[--engine vector]``, ``python -m repro fleet submit|worker|status``
and ``python -m repro coord serve|submit|worker|status``; runnable
experiments are registered in :mod:`repro.runner.defs`.
"""

from repro.runner.atomicio import atomic_write_json, atomic_write_text

from repro.runner.cache import ResultCache
from repro.runner.chaos import (
    ChaosReport,
    ChaosVerdict,
    run_chaos,
    run_coord_chaos,
    run_fleet_chaos,
)
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.client import (
    CoordClient,
    CoordinatorUnreachable,
    CoordWorker,
    Outbox,
)
from repro.runner.coord import (
    CoordServer,
    coord_report,
    coord_status,
    submit_tasks,
)
from repro.runner.executor import (
    RunReport,
    TaskExecutionError,
    TaskOutcome,
    run_experiment,
    run_tasks,
)
from repro.runner.fleet import (
    FleetQueue,
    FleetStatus,
    FleetWorker,
    WorkerReport,
    fleet_report,
    fleet_status,
)
from repro.runner.lease import LeaseDir, LeaseObserver, LeaseRecord
from repro.runner.policy import FaultPolicy, QuarantineRecord
from repro.runner.registry import (
    ExperimentDef,
    get_experiment,
    register,
    registered_ids,
    run_registered_batch,
    run_registered_task,
)
from repro.runner.task import TaskSpec, task_grid
from repro.runner.telemetry import (
    Progress,
    RunTelemetry,
    bench_summary,
    median,
    merge_task_records,
    read_quarantine,
    read_telemetry,
    write_bench_summary,
)

__all__ = [
    "ChaosReport",
    "ChaosVerdict",
    "CoordClient",
    "CoordServer",
    "CoordWorker",
    "CoordinatorUnreachable",
    "ExperimentDef",
    "FaultPolicy",
    "Outbox",
    "FleetQueue",
    "FleetStatus",
    "FleetWorker",
    "LeaseDir",
    "LeaseObserver",
    "LeaseRecord",
    "Progress",
    "QuarantineRecord",
    "ResultCache",
    "RunReport",
    "RunTelemetry",
    "SweepCheckpoint",
    "TaskExecutionError",
    "TaskOutcome",
    "TaskSpec",
    "WorkerReport",
    "atomic_write_json",
    "atomic_write_text",
    "bench_summary",
    "coord_report",
    "coord_status",
    "fleet_report",
    "fleet_status",
    "get_experiment",
    "median",
    "merge_task_records",
    "read_quarantine",
    "read_telemetry",
    "register",
    "registered_ids",
    "run_chaos",
    "run_coord_chaos",
    "run_experiment",
    "run_fleet_chaos",
    "submit_tasks",
    "run_registered_batch",
    "run_registered_task",
    "run_tasks",
    "task_grid",
    "write_bench_summary",
]
