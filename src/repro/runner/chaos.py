"""Chaos harness: prove the executor's fault tolerance on a real sweep.

``run_chaos`` runs the E3 quick grid twice with the same seeds — once
clean (the control), once with faults injected — and checks that the
chaotic run converges to the control bit for bit:

* ~10% of the tasks **crash their worker process** on first attempt
  (``os._exit``), exercising ``BrokenProcessPool`` recovery, bisection
  and retry;
* one task **hangs** (sleeps far past the watchdog budget), exercising
  timeout expiry, pool rebuild and quarantine;
* one task raises a **transient exception** on first attempt,
  exercising in-band retry with backoff;
* two pre-seeded **cache entries are corrupted** (one torn file, one
  tampered payload with a stale integrity digest), exercising the
  cache's corrupt-entry detection and re-execution.

Verdicts (all must pass): the control run is clean; the hang — and only
the hang — is quarantined, as a timeout; both corrupt entries are
detected; every surviving metric is byte-identical per content key to
the control; the run recorded at least one pool rebuild and one retry;
and a final clean replay over the warm chaos cache executes exactly the
hang task and replays everything else from cache, again matching the
control exactly.

Fault injection travels to worker processes via the ``REPRO_CHAOS_DIR``
environment variable (inherited at pool fork): it names a directory
holding ``plan.json`` (which task labels misbehave, and how) and the
marker files that make crash/flaky injections first-attempt-only.  The
task function itself stays pure — :func:`chaos_run_task` is the
registered E3 task wrapped with the injection preamble.

Fleet mode
----------
``run_fleet_chaos`` does the same for the multi-host fleet runner
(:mod:`repro.runner.fleet`): it submits the E3 quick grid to a shared
queue directory, launches several worker *subprocesses* (each its own
fleet host), then

* **SIGKILLs an entire worker host** mid-sweep, while it holds a lease —
  no cleanup, no goodbye, the way a machine loss looks to the others;
* **corrupts one in-flight lease file** with garbage bytes (lease
  ownership is the file's existence, not its content — reclaim must
  survive an unreadable record);
* runs one surviving host with a **skewed clock** (its lease stamps are
  45 s wrong), which must not matter because staleness is judged by
  mtime *movement* against the observer's own monotonic clock.

Verdicts: the survivors drain the queue completely (every task done
exactly once, the dead host's leases reclaimed within a TTL, none
lost, none double-counted), the merged fleet report is bit-for-bit
identical per content key to a single-process clean control, and a
final clean replay over the fleet's shared cache executes zero tasks.

Coordinator mode
----------------
``run_coord_chaos`` proves the TCP coordinator backend
(:mod:`repro.runner.coord` / :mod:`repro.runner.client`) under *network*
faults on top of process death.  Workers reach the coordinator only
through an in-process fault proxy that drops, duplicates, delays and
truncates whole wire frames (and injects garbage bytes between them) on
a deterministic schedule; one worker rides a second proxy that
blackholes it entirely for a window mid-run.  The coordinator itself is
SIGKILLed mid-lease and restarted, recovering from its journal.

Verdicts: the drain completes with every task *executed exactly once*
(counted from the journal's fresh-outcome lines — lease grants are
journaled before they are answered, so not even the coordinator kill
can double-execute), every fault type provably fired, the merged
report matches the clean control bit for bit, and a warm replay over
the coordinator's result cache executes zero tasks.

CLI front end: ``python -m repro chaos [--quick] [--fleet] [--coord]``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.rng import child_rng
from repro.runner.cache import ResultCache
from repro.runner.executor import RunReport, run_tasks
from repro.runner.policy import FaultPolicy
from repro.runner.registry import get_experiment, run_registered_task
from repro.runner.task import TaskSpec
from repro.runner.telemetry import RunTelemetry

#: Environment variable pointing workers at the fault-injection plan.
ENV_VAR = "REPRO_CHAOS_DIR"


# ----------------------------------------------------------------------
# Fault injection (runs inside worker processes)
# ----------------------------------------------------------------------


def _first_attempt(chaos_dir: Path, kind: str, label: str) -> bool:
    """Atomically claim the first attempt of a one-shot injection."""
    marker_dir = chaos_dir / "markers"
    marker_dir.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(f"{kind}:{label}".encode()).hexdigest()[:24]
    marker = marker_dir / f"{kind}-{digest}"
    try:
        marker.touch(exist_ok=False)
    except FileExistsError:
        return False
    return True


def _inject(spec: TaskSpec, chaos_dir: Path) -> None:
    """Apply the planned fault for ``spec``, if any, before it runs."""
    try:
        plan = json.loads((chaos_dir / "plan.json").read_text("utf-8"))
    except (OSError, json.JSONDecodeError):
        return
    label = spec.label()
    if label in plan.get("hang", ()):
        # Sleep in slices, far past any sane watchdog budget; the
        # executor's deadline fires long before this drains.
        deadline = time.monotonic() + float(plan.get("hang_seconds", 120.0))
        while time.monotonic() < deadline:
            time.sleep(0.1)
        return
    if label in plan.get("crash", ()) and _first_attempt(
        chaos_dir, "crash", label
    ):
        # Die the way a segfault or OOM kill does: no exception, no
        # cleanup, the pool just loses the process.
        os._exit(17)
    if label in plan.get("flaky", ()) and _first_attempt(
        chaos_dir, "flaky", label
    ):
        raise RuntimeError(f"injected transient failure for {label}")


def chaos_run_task(spec: TaskSpec) -> Dict[str, Any]:
    """The registered task function, preceded by planned fault injection.

    Top-level and picklable, so it ships to pool workers like any other
    task function.  With ``REPRO_CHAOS_DIR`` unset this is exactly the
    registered run — the control and replay runs use the same entry
    point as the chaotic one.
    """
    chaos_dir = os.environ.get(ENV_VAR)
    if chaos_dir:
        _inject(spec, Path(chaos_dir))
    return dict(run_registered_task(spec.exp_id, spec))


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosVerdict:
    """One pass/fail check of the chaos run."""

    name: str
    passed: bool
    detail: str


@dataclass
class ChaosReport:
    """Everything the chaos harness measured, plus its verdicts."""

    seed: int
    workers: int
    tasks: int
    plan: Dict[str, Any]
    verdicts: List[ChaosVerdict] = field(default_factory=list)
    control_failures: Dict[str, Any] = field(default_factory=dict)
    chaos_failures: Dict[str, Any] = field(default_factory=dict)
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    control_wall: float = 0.0
    chaos_wall: float = 0.0

    @property
    def ok(self) -> bool:
        return all(verdict.passed for verdict in self.verdicts)

    def summary(self) -> str:
        if self.plan.get("mode") == "coord":
            faults = self.plan.get("faults", {})
            lines = [
                f"coord chaos: E3 quick grid, {self.tasks} tasks, "
                f"seed {self.seed}, {self.workers} workers over TCP",
                f"plan: coordinator SIGKILL + journal restart, partition "
                f"{self.plan.get('partition_host')} for "
                f"{self.plan.get('partition', 0):g}s, frame faults "
                f"(drop {faults.get('drop', 0)}, dup {faults.get('dup', 0)}, "
                f"delay {faults.get('delay', 0)}, "
                f"truncate {faults.get('truncate', 0)}, "
                f"garbage {faults.get('garbage', 0)}), "
                f"ttl {self.plan.get('ttl', 0):g}s",
            ]
        elif self.plan.get("mode") == "fleet":
            lines = [
                f"fleet chaos: E3 quick grid, {self.tasks} tasks, "
                f"seed {self.seed}, {self.workers} worker hosts",
                f"plan: SIGKILL {self.plan.get('victim')}, "
                f"skew {self.plan.get('skew_host')} by "
                f"{self.plan.get('skew', 0):g}s, corrupt lease "
                f"{str(self.plan.get('corrupt_lease'))[:12]}, "
                f"ttl {self.plan.get('ttl', 0):g}s",
            ]
        else:
            lines = [
                f"chaos: E3 quick grid, {self.tasks} tasks, "
                f"seed {self.seed}, {self.workers} workers",
                f"plan: {len(self.plan.get('crash', []))} crash, "
                f"{len(self.plan.get('hang', []))} hang, "
                f"{len(self.plan.get('flaky', []))} flaky, "
                f"{self.plan.get('corrupt_entries', 0)} corrupt cache "
                "entries",
            ]
        lines.append(
            f"wall: control {self.control_wall:.1f}s, "
            f"chaos {self.chaos_wall:.1f}s",
        )
        for verdict in self.verdicts:
            status = "PASS" if verdict.passed else "FAIL"
            lines.append(f"[{status}] {verdict.name}: {verdict.detail}")
        lines.append("chaos verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "workers": self.workers,
            "tasks": self.tasks,
            "plan": self.plan,
            "ok": self.ok,
            "verdicts": [
                {"name": v.name, "passed": v.passed, "detail": v.detail}
                for v in self.verdicts
            ],
            "control_failures": self.control_failures,
            "chaos_failures": self.chaos_failures,
            "quarantined": self.quarantined,
            "control_wall": self.control_wall,
            "chaos_wall": self.chaos_wall,
        }


def _canonical(metrics: Dict[str, Any]) -> str:
    return json.dumps(metrics, sort_keys=True, separators=(",", ":"))


def run_chaos(
    *,
    seed: int = 7,
    workers: int = 2,
    replications: Optional[int] = None,
    quick: bool = False,
    timeout: Optional[float] = None,
    base_dir: Optional[os.PathLike] = None,
    keep: bool = False,
    progress: bool = False,
    preseed_count: int = 4,
    corrupt_count: int = 2,
    crash_fraction: float = 0.10,
    flaky_count: int = 1,
    hang_count: int = 1,
    hang_seconds: float = 120.0,
) -> ChaosReport:
    """Run the chaos scenario end to end and return its verdicts.

    ``quick`` shrinks the grid and the watchdog budget for CI smoke use.
    ``base_dir`` pins the working directory (caches, run telemetry, the
    injection plan); by default a temporary directory is used and
    removed unless ``keep`` is set.  The fault mix is tunable so tests
    can run miniature scenarios.
    """
    if workers < 1:
        raise ConfigurationError(
            "the chaos harness needs workers >= 1: crash injection "
            "kills the executing process"
        )
    if corrupt_count > preseed_count:
        raise ConfigurationError(
            f"cannot corrupt {corrupt_count} of {preseed_count} "
            "pre-seeded entries"
        )
    if replications is None:
        replications = 6 if quick else 10
    if timeout is None:
        timeout = 3.0 if quick else 6.0

    import repro

    version = repro.__version__
    defn = get_experiment("E3")
    tasks = defn.tasks(seed, replications, quick=True)
    labels = [spec.label() for spec in tasks]
    keys = [spec.key(version) for spec in tasks]
    total = len(tasks)

    base = (
        Path(base_dir)
        if base_dir is not None
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    )
    base.mkdir(parents=True, exist_ok=True)
    cleanup = base_dir is None and not keep
    try:
        return _run_scenario(
            base=base,
            tasks=tasks,
            labels=labels,
            keys=keys,
            total=total,
            seed=seed,
            workers=workers,
            timeout=timeout,
            progress=progress,
            preseed_count=min(preseed_count, total),
            corrupt_count=corrupt_count,
            crash_fraction=crash_fraction,
            flaky_count=flaky_count,
            hang_count=hang_count,
            hang_seconds=hang_seconds,
        )
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)


def _run_scenario(
    *,
    base: Path,
    tasks: List[TaskSpec],
    labels: List[str],
    keys: List[str],
    total: int,
    seed: int,
    workers: int,
    timeout: float,
    progress: bool,
    preseed_count: int,
    corrupt_count: int,
    crash_fraction: float,
    flaky_count: int,
    hang_count: int,
    hang_seconds: float,
) -> ChaosReport:
    # -- 1. control: the same tasks, same entry point, no faults -------
    control_cache = ResultCache(base / "control-cache")
    control = run_tasks(
        tasks,
        chaos_run_task,
        workers=workers,
        cache=control_cache,
        telemetry=RunTelemetry(base / "control-run"),
        progress=progress,
    )
    control_by_key = {o.key: _canonical(dict(o.metrics)) for o in control.outcomes}

    # -- 2. pre-seed the chaos cache, then corrupt part of it ----------
    chaos_cache = ResultCache(base / "chaos-cache")
    ordered = sorted(range(total), key=lambda i: labels[i])
    preseed = ordered[:preseed_count]
    for index in preseed:
        record = control_cache.get(keys[index])
        if record is not None:
            chaos_cache.put(keys[index], record)
    for position, index in enumerate(preseed[:corrupt_count]):
        path = chaos_cache._path(keys[index])
        if position % 2 == 0:
            # A torn write: the file stops mid-JSON.
            path.write_text("{\"spec\": {\"exp", encoding="utf-8")
        else:
            # Valid JSON, tampered payload, stale digest — only the
            # integrity check can catch this one.
            stored = json.loads(path.read_text("utf-8"))
            stored["wall_time"] = float(stored.get("wall_time", 0.0)) + 1.0
            path.write_text(
                json.dumps(stored, sort_keys=True), encoding="utf-8"
            )

    # -- 3. plan the fault mix over the non-preseeded tasks ------------
    eligible = [labels[i] for i in ordered[preseed_count:]]
    crash_count = max(1, round(crash_fraction * total)) if crash_fraction else 0
    need = hang_count + crash_count + flaky_count
    if len(eligible) < need:
        raise ConfigurationError(
            f"grid too small for the fault mix: {len(eligible)} eligible "
            f"tasks, {need} faults planned"
        )
    picks = list(eligible)
    child_rng(seed, "chaos-plan").shuffle(picks)
    hang = picks[:hang_count]
    crash = picks[hang_count:hang_count + crash_count]
    flaky = picks[
        hang_count + crash_count:hang_count + crash_count + flaky_count
    ]
    plan = {
        "hang": hang,
        "hang_seconds": hang_seconds,
        "crash": crash,
        "flaky": flaky,
    }
    inject_dir = base / "inject"
    inject_dir.mkdir(parents=True, exist_ok=True)
    (inject_dir / "plan.json").write_text(
        json.dumps(plan, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    report = ChaosReport(
        seed=seed,
        workers=workers,
        tasks=total,
        plan={**plan, "corrupt_entries": corrupt_count},
    )
    report.control_failures = control.failure_summary()
    report.control_wall = control.wall_time
    control_clean = (
        not control.quarantined
        and control.executed == total
        and control.retries == 0
        and control.pool_rebuilds == 0
    )
    report.verdicts.append(
        ChaosVerdict(
            "control_clean",
            control_clean,
            f"executed {control.executed}/{total}, "
            f"{len(control.quarantined)} quarantined, "
            f"{control.retries} retries, "
            f"{control.pool_rebuilds} pool rebuilds",
        )
    )

    # -- 4. the chaotic run --------------------------------------------
    saved = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(inject_dir)
    try:
        chaotic = run_tasks(
            tasks,
            chaos_run_task,
            workers=workers,
            cache=chaos_cache,
            telemetry=RunTelemetry(base / "chaos-run"),
            checkpoint=base / "chaos-checkpoint.jsonl",
            progress=progress,
            policy=FaultPolicy(timeout=timeout, max_retries=2, seed=seed),
        )
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved

    report.chaos_failures = chaotic.failure_summary()
    report.chaos_wall = chaotic.wall_time
    report.quarantined = [q.to_record() for q in chaotic.quarantined]

    quarantined_labels = sorted(q.label for q in chaotic.quarantined)
    hang_ok = quarantined_labels == sorted(hang) and all(
        q.category == "timeout" for q in chaotic.quarantined
    )
    report.verdicts.append(
        ChaosVerdict(
            "hang_quarantined",
            hang_ok,
            f"quarantined {quarantined_labels} "
            f"(want {sorted(hang)} as timeout)",
        )
    )
    report.verdicts.append(
        ChaosVerdict(
            "corrupt_detected",
            chaotic.corrupt_cache_entries == corrupt_count,
            f"{chaotic.corrupt_cache_entries} corrupt cache entries "
            f"detected (want {corrupt_count})",
        )
    )
    expect_rebuild = bool(crash) or bool(hang)
    expect_retry = bool(flaky)
    recovery_ok = (
        (chaotic.pool_rebuilds >= 1 or not expect_rebuild)
        and (chaotic.retries >= 1 or not expect_retry)
    )
    report.verdicts.append(
        ChaosVerdict(
            "recovery",
            recovery_ok,
            f"{chaotic.pool_rebuilds} pool rebuilds, "
            f"{chaotic.retries} retries, {chaotic.timeouts} timeouts",
        )
    )

    hang_keys = {keys[i] for i in range(total) if labels[i] in hang}
    mismatches = [
        key
        for key, outcome in (
            (o.key, o) for o in chaotic.outcomes
        )
        if control_by_key.get(key) != _canonical(dict(outcome.metrics))
    ]
    expected_outcomes = total - len(hang_keys)
    report.verdicts.append(
        ChaosVerdict(
            "results_match",
            not mismatches and len(chaotic.outcomes) == expected_outcomes,
            f"{len(chaotic.outcomes)}/{expected_outcomes} surviving "
            f"outcomes, {len(mismatches)} metric mismatches vs control",
        )
    )

    # -- 5. clean replay over the warm chaos cache ---------------------
    replay = run_tasks(
        tasks,
        chaos_run_task,
        workers=0,
        cache=chaos_cache,
        telemetry=RunTelemetry(base / "replay-run"),
        progress=progress,
    )
    replay_mismatches = [
        o.key
        for o in replay.outcomes
        if control_by_key.get(o.key) != _canonical(dict(o.metrics))
    ]
    replay_ok = (
        replay.executed == len(hang_keys)
        and replay.cache_hits == total - len(hang_keys)
        and len(replay.outcomes) == total
        and not replay_mismatches
        and not replay.quarantined
    )
    report.verdicts.append(
        ChaosVerdict(
            "replay",
            replay_ok,
            f"executed {replay.executed} (want {len(hang_keys)}), "
            f"{replay.cache_hits} cache hits "
            f"(want {total - len(hang_keys)}), "
            f"{len(replay_mismatches)} mismatches vs control",
        )
    )
    return report


# ----------------------------------------------------------------------
# Fleet chaos: kill a whole worker host mid-sweep
# ----------------------------------------------------------------------


def _wait_stopped(pid: int, budget: float = 0.25) -> None:
    """Wait until a SIGSTOPped process is actually in state T."""
    deadline = time.monotonic() + budget
    stat = Path(f"/proc/{pid}/stat")
    while time.monotonic() < deadline:
        try:
            # Field 3 of /proc/<pid>/stat, after the parenthesized comm.
            state = stat.read_text().rsplit(")", 1)[1].split()[0]
        except (OSError, IndexError):
            return  # no procfs (or the process died): fall through
        if state in ("T", "t", "Z"):
            return
        time.sleep(0.005)


def _leases_held_by(queue, host: str) -> List[str]:
    leases = queue.leases()
    held = []
    for key in leases.keys():
        record = leases.read(key)
        if record is not None and record.host == host:
            held.append(key)
    return held


def _journal_outcome_count(queue, host: str) -> int:
    path = queue.journal_path(host)
    try:
        text = path.read_text("utf-8")
    except OSError:
        return 0
    return text.count('"kind": "outcome"')


def run_fleet_chaos(
    *,
    seed: int = 7,
    workers: int = 3,
    replications: Optional[int] = None,
    quick: bool = False,
    base_dir: Optional[os.PathLike] = None,
    keep: bool = False,
    progress: bool = False,
    ttl: float = 1.5,
    throttle: float = 0.15,
    skew: float = 45.0,
    poll: float = 0.1,
    drain_timeout: float = 240.0,
) -> ChaosReport:
    """Kill a whole fleet host mid-sweep; verify exact convergence.

    Launches ``workers`` fleet worker subprocesses against one shared
    queue directory, SIGKILLs the first (``host0``) while it holds a
    task lease, corrupts one of its in-flight lease files, and runs the
    last host with a wall clock skewed by ``skew`` seconds.  The
    survivors must drain the queue to the *bit-identical* result table
    of a single-process clean control: every task completed exactly
    once, no duplicates in the merged report beyond those folded away
    and counted, every orphaned lease reclaimed.

    ``throttle`` stretches task execution so the kill window is
    reliable; ``ttl`` is the lease expiry (short here so reclamation is
    observable in a smoke run, 30 s in production).
    """
    if workers < 2:
        raise ConfigurationError(
            "fleet chaos needs >= 2 worker hosts: one is killed "
            "mid-sweep and the rest must finish the job"
        )
    if replications is None:
        replications = 6 if quick else 10

    import repro

    version = repro.__version__
    defn = get_experiment("E3")
    tasks = defn.tasks(seed, replications, quick=True)
    keys = [spec.key(version) for spec in tasks]
    total = len(tasks)

    base = (
        Path(base_dir)
        if base_dir is not None
        else Path(tempfile.mkdtemp(prefix="repro-fleet-chaos-"))
    )
    base.mkdir(parents=True, exist_ok=True)
    cleanup = base_dir is None and not keep
    try:
        return _run_fleet_scenario(
            base=base,
            tasks=tasks,
            keys=keys,
            total=total,
            seed=seed,
            workers=workers,
            progress=progress,
            ttl=ttl,
            throttle=throttle,
            skew=skew,
            poll=poll,
            drain_timeout=drain_timeout,
        )
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)


def _run_fleet_scenario(
    *,
    base: Path,
    tasks: List[TaskSpec],
    keys: List[str],
    total: int,
    seed: int,
    workers: int,
    progress: bool,
    ttl: float,
    throttle: float,
    skew: float,
    poll: float,
    drain_timeout: float,
) -> ChaosReport:
    from repro.runner.fleet import FleetQueue, fleet_report, fleet_status

    import repro

    version = repro.__version__

    # -- 1. control: the same grid, single process, no faults ----------
    control = run_tasks(
        tasks,
        chaos_run_task,
        workers=0,
        cache=ResultCache(base / "control-cache"),
        telemetry=RunTelemetry(base / "control-run"),
        progress=progress,
    )
    control_by_key = {
        o.key: _canonical(dict(o.metrics)) for o in control.outcomes
    }

    # -- 2. submit the grid to a shared queue directory ----------------
    queue = FleetQueue(base / "queue")
    queue.submit(tasks, version=version, options={"seed": seed})

    # -- 3. launch the worker hosts ------------------------------------
    hosts = [f"host{i}" for i in range(workers)]
    victim, skew_host = hosts[0], hosts[-1]
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(src_root), env.get("PYTHONPATH", ""))
        if part
    )
    env.pop(ENV_VAR, None)  # fleet hosts run the clean task function
    procs: List[subprocess.Popen] = []
    log_handles = []
    started = time.monotonic()
    for host in hosts:
        cmd = [
            sys.executable, "-m", "repro", "fleet", "worker",
            str(queue.root),
            "--host", host,
            "--ttl", f"{ttl:g}",
            "--poll", f"{poll:g}",
            "--throttle", f"{throttle:g}",
        ]
        if host == skew_host and skew:
            cmd += ["--skew", f"{skew:g}"]
        log = (base / f"{host}.log").open("w", encoding="utf-8")
        log_handles.append(log)
        procs.append(
            subprocess.Popen(
                cmd, env=env, cwd=str(base),
                stdout=log, stderr=subprocess.STDOUT,
            )
        )

    report = ChaosReport(
        seed=seed,
        workers=workers,
        tasks=total,
        plan={
            "mode": "fleet",
            "hosts": hosts,
            "victim": victim,
            "skew_host": skew_host,
            "skew": skew,
            "ttl": ttl,
            "throttle": throttle,
            "corrupt_lease": None,
        },
    )
    report.control_failures = control.failure_summary()
    report.control_wall = control.wall_time
    report.verdicts.append(
        ChaosVerdict(
            "control_clean",
            control.executed == total and not control.quarantined,
            f"executed {control.executed}/{total}, "
            f"{len(control.quarantined)} quarantined",
        )
    )

    killed = False
    corrupted: Optional[str] = None
    survivor_rcs: List[int] = []
    try:
        # -- 4. SIGKILL the victim while it holds a lease --------------
        # A naive "saw a lease, pull the trigger" races: if this process
        # is descheduled between sighting and ``os.kill`` (three worker
        # interpreters are busy importing NumPy), the kill can land after
        # the victim retired the task file but before it released the
        # lease, leaving a *moot* lease that is reaped, not reclaimed.
        # So freeze the victim with SIGSTOP first, inspect its state at
        # rest, and only SIGKILL when the lease is provably mid-task
        # (task file still pending).  Otherwise SIGCONT and retry.
        victim_proc = procs[0]
        kill_deadline = time.monotonic() + drain_timeout / 2
        while time.monotonic() < kill_deadline:
            if victim_proc.poll() is not None:
                break  # drained its share before we could pull the plug
            warmed = (
                _journal_outcome_count(queue, victim) >= 1
                or time.monotonic() - started > 1.0
            )
            if not warmed:
                time.sleep(0.02)
                continue
            try:
                os.kill(victim_proc.pid, signal.SIGSTOP)
            except ProcessLookupError:
                break
            _wait_stopped(victim_proc.pid)
            held = {
                key
                for key in _leases_held_by(queue, victim)
                if queue.task_path(key).exists()
            }
            if held and victim_proc.poll() is None:
                os.kill(victim_proc.pid, signal.SIGKILL)
                killed = True
                break
            try:
                os.kill(victim_proc.pid, signal.SIGCONT)
            except ProcessLookupError:
                break
            time.sleep(0.02)
        if not killed and victim_proc.poll() is None:
            os.kill(victim_proc.pid, signal.SIGKILL)
            killed = True
        victim_proc.wait()

        # -- 5. corrupt one in-flight lease ----------------------------
        # Prefer one of the dead host's orphans: its reclaim must also
        # survive an unreadable record (ownership is the file, not the
        # bytes inside it).
        leases = queue.leases()
        candidates = _leases_held_by(queue, victim) or list(leases.keys())
        if candidates:
            corrupted = candidates[0]
            leases.path(corrupted).write_bytes(b"\x00\xffgarbage{{{not json")
            report.plan["corrupt_lease"] = corrupted

        # -- 6. let the survivors drain the queue ----------------------
        drain_deadline = time.monotonic() + drain_timeout
        for proc in procs[1:]:
            budget = max(1.0, drain_deadline - time.monotonic())
            try:
                survivor_rcs.append(proc.wait(timeout=budget))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                survivor_rcs.append(-9)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        for log in log_handles:
            log.close()
    report.chaos_wall = time.monotonic() - started

    # -- 7. verdicts over the merged state -----------------------------
    status = fleet_status(queue)
    merged = fleet_report(queue)
    report.chaos_failures = merged.failure_summary()
    report.quarantined = [q.to_record() for q in merged.quarantined]

    leftover_leases = list(queue.leases().keys())
    merged_keys = [o.key for o in merged.outcomes]
    complete_ok = (
        status.pending == 0
        and not leftover_leases
        and not merged.quarantined
        and len(merged_keys) == total
        and set(merged_keys) == set(keys)
        and all(rc == 0 for rc in survivor_rcs)
    )
    report.verdicts.append(
        ChaosVerdict(
            "fleet_complete",
            complete_ok,
            f"{len(merged_keys)}/{total} tasks done "
            f"({len(set(merged_keys))} distinct), {status.pending} "
            f"pending, {len(leftover_leases)} leftover leases, "
            f"{len(merged.quarantined)} quarantined, survivor exit "
            f"codes {survivor_rcs}",
        )
    )

    mismatches = [
        o.key
        for o in merged.outcomes
        if control_by_key.get(o.key) != _canonical(dict(o.metrics))
    ]
    report.verdicts.append(
        ChaosVerdict(
            "results_match",
            not mismatches and len(merged_keys) == len(set(merged_keys)),
            f"{len(mismatches)} metric mismatches vs control, "
            f"{len(merged_keys) - len(set(merged_keys))} double-counted "
            "tasks in the merged report",
        )
    )

    recovery_ok = (
        killed
        and merged.lease_reclaims >= 1
        and merged.host_failures >= 1
        and merged.hosts_seen >= 2
    )
    report.verdicts.append(
        ChaosVerdict(
            "host_recovery",
            recovery_ok,
            f"victim killed: {killed}; {merged.lease_reclaims} lease "
            f"reclaims, {merged.host_failures} host failures, "
            f"{merged.hosts_seen} hosts journaled, "
            f"{merged.duplicates_merged} duplicates merged",
        )
    )

    # -- 8. clean replay over the fleet's shared cache -----------------
    replay = run_tasks(
        tasks,
        chaos_run_task,
        workers=0,
        cache=queue.cache(),
        telemetry=RunTelemetry(base / "replay-run"),
        progress=progress,
    )
    replay_mismatches = [
        o.key
        for o in replay.outcomes
        if control_by_key.get(o.key) != _canonical(dict(o.metrics))
    ]
    replay_ok = (
        replay.executed == 0
        and replay.cache_hits == total
        and not replay_mismatches
        and not replay.quarantined
    )
    report.verdicts.append(
        ChaosVerdict(
            "replay",
            replay_ok,
            f"executed {replay.executed} (want 0), {replay.cache_hits} "
            f"cache hits (want {total}), {len(replay_mismatches)} "
            "mismatches vs control",
        )
    )
    return report


# ----------------------------------------------------------------------
# Coordinator chaos: network faults + coordinator SIGKILL over TCP
# ----------------------------------------------------------------------


def _free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _drain_frames(buf: bytearray):
    """Yield complete raw wire frames from ``buf`` (consumed in place).

    Endpoints emit aligned frames, so the buffer always starts at a
    frame boundary; if it ever does not (it cannot, from this repo's
    codec), the bytes pass through untouched rather than stalling.
    """
    from repro.runner.wire import HEADER_SIZE, MAGIC

    while True:
        if len(buf) < HEADER_SIZE:
            return
        if not buf.startswith(MAGIC):
            passthrough = bytes(buf)
            del buf[:]
            yield passthrough
            return
        length = int.from_bytes(buf[len(MAGIC):HEADER_SIZE], "big")
        end = HEADER_SIZE + length
        if len(buf) < end:
            return
        frame = bytes(buf[:end])
        del buf[:end]
        yield frame


class _FaultSchedule:
    """Deterministic per-frame fault decisions, shared across pumps.

    Frame ``i`` (a global counter over both directions and every
    connection) gets the fault at ``i mod period`` in the cycle table —
    so given enough traffic every fault type provably fires, and the
    verdict can demand it.
    """

    CYCLE = {3: "drop", 7: "dup", 10: "delay", 13: "truncate", 15: "garbage"}

    def __init__(self, period: int = 17) -> None:
        self.period = period
        self._lock = threading.Lock()
        self._index = 0
        self.counts: Dict[str, int] = {
            "forward": 0, "drop": 0, "dup": 0, "delay": 0,
            "truncate": 0, "garbage": 0,
        }

    def next_action(self) -> str:
        with self._lock:
            index = self._index
            self._index += 1
            action = self.CYCLE.get(index % self.period, "forward")
            self.counts[action] += 1
        return action


class _FaultProxy:
    """A TCP proxy that mangles wire frames between workers and coord.

    Thread-per-connection, two pump threads per connection.  With a
    ``schedule`` it drops/duplicates/delays/truncates whole frames and
    injects garbage between them; without one it forwards cleanly.
    ``partition(seconds)`` blackholes the proxy — existing connections
    are severed, new ones refused — until the window elapses, the way a
    switch failure looks to one side of it.
    """

    def __init__(
        self,
        upstream,
        *,
        schedule: Optional[_FaultSchedule] = None,
        delay: float = 0.25,
        seed: int = 0,
    ) -> None:
        self.upstream = upstream
        self.schedule = schedule
        self.delay = delay
        self.seed = seed
        self.partitions = 0
        self._blackhole_until = 0.0
        self._garbage_counter = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._socks: set = set()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(32)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def partition(self, seconds: float) -> None:
        with self._lock:
            self._blackhole_until = time.monotonic() + seconds
            self.partitions += 1
            severed = list(self._socks)
        for sock in severed:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            severed = list(self._socks)
        for sock in severed:
            try:
                sock.close()
            except OSError:
                pass
        self._thread.join(timeout=2.0)

    def _garbage(self) -> bytes:
        self._garbage_counter += 1
        rng = child_rng(self.seed, "proxy-garbage", self._garbage_counter)
        return bytes(rng.getrandbits(8) for _ in range(12))

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            if (
                self._stop.is_set()
                or time.monotonic() < self._blackhole_until
            ):
                client.close()
                continue
            try:
                up = socket.create_connection(self.upstream, timeout=2.0)
            except OSError:
                client.close()  # coordinator down: look unreachable
                continue
            for sock in (client, up):
                sock.settimeout(0.5)
                with self._lock:
                    self._socks.add(sock)
            for src, dst in ((client, up), (up, client)):
                threading.Thread(
                    target=self._pump, args=(src, dst), daemon=True
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        buf = bytearray()
        try:
            while not self._stop.is_set():
                if time.monotonic() < self._blackhole_until:
                    break
                try:
                    data = src.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                buf.extend(data)
                out = bytearray()
                for raw in _drain_frames(buf):
                    action = (
                        self.schedule.next_action()
                        if self.schedule is not None
                        else "forward"
                    )
                    if action == "drop":
                        continue
                    if action == "dup":
                        out += raw + raw
                    elif action == "truncate":
                        out += raw[: max(1, (2 * len(raw)) // 3)]
                    elif action == "garbage":
                        out += self._garbage() + raw
                    elif action == "delay":
                        if out:
                            dst.sendall(bytes(out))
                            out = bytearray()
                        time.sleep(self.delay)
                        out += raw
                    else:
                        out += raw
                if out:
                    dst.sendall(bytes(out))
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                with self._lock:
                    self._socks.discard(sock)
                try:
                    sock.close()
                except OSError:
                    pass


def _coord_journal_outcomes(state_dir: Path) -> List[Dict[str, Any]]:
    from repro.runner.coord import JOURNAL_NAME
    from repro.runner.telemetry import _read_jsonl

    path = state_dir / JOURNAL_NAME
    if not path.exists():
        return []
    return [
        entry
        for entry in _read_jsonl(path, strict=False)
        if entry.get("kind") == "outcome"
    ]


def run_coord_chaos(
    *,
    seed: int = 7,
    workers: int = 3,
    replications: Optional[int] = None,
    quick: bool = False,
    base_dir: Optional[os.PathLike] = None,
    keep: bool = False,
    progress: bool = False,
    ttl: float = 8.0,
    throttle: float = 0.15,
    partition_seconds: float = 2.0,
    drain_timeout: float = 240.0,
) -> ChaosReport:
    """Torture the TCP coordinator backend; verify exact convergence.

    Starts a coordinator subprocess and ``workers`` worker subprocesses
    that reach it only through fault proxies: all but the last worker
    share a proxy that mangles frames (drop/duplicate/delay/truncate/
    garbage on a deterministic schedule); the last worker's proxy
    blackholes it for ``partition_seconds`` mid-run.  The coordinator is
    SIGKILLed while leases are in flight and restarted against its
    journal.  ``ttl`` stays well above the partition window and the
    restart gap so no lease expires for a live worker — which is what
    lets the harness demand *exactly one* execution per task, not
    merely at-least-one with dedup.
    """
    if workers < 2:
        raise ConfigurationError(
            "coord chaos needs >= 2 workers: one is partitioned and "
            "the rest must keep the queue moving"
        )
    if replications is None:
        replications = 6 if quick else 10

    import repro

    version = repro.__version__
    defn = get_experiment("E3")
    tasks = defn.tasks(seed, replications, quick=True)
    keys = [spec.key(version) for spec in tasks]
    total = len(tasks)

    base = (
        Path(base_dir)
        if base_dir is not None
        else Path(tempfile.mkdtemp(prefix="repro-coord-chaos-"))
    )
    base.mkdir(parents=True, exist_ok=True)
    cleanup = base_dir is None and not keep
    try:
        return _run_coord_scenario(
            base=base,
            tasks=tasks,
            keys=keys,
            total=total,
            seed=seed,
            workers=workers,
            progress=progress,
            ttl=ttl,
            throttle=throttle,
            partition_seconds=partition_seconds,
            drain_timeout=drain_timeout,
            version=version,
        )
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)


def _run_coord_scenario(
    *,
    base: Path,
    tasks: List[TaskSpec],
    keys: List[str],
    total: int,
    seed: int,
    workers: int,
    progress: bool,
    ttl: float,
    throttle: float,
    partition_seconds: float,
    drain_timeout: float,
    version: str,
) -> ChaosReport:
    import repro
    from repro.runner.client import CoordClient, CoordinatorUnreachable
    from repro.runner.coord import JOURNAL_NAME, coord_report, coord_status
    from repro.runner.coord import submit_tasks
    from repro.runner.telemetry import _read_jsonl

    state = base / "coord-state"
    coord_port = _free_port()

    # -- 1. control: the same grid, single process, no faults ----------
    control = run_tasks(
        tasks,
        chaos_run_task,
        workers=0,
        cache=ResultCache(base / "control-cache"),
        telemetry=RunTelemetry(base / "control-run"),
        progress=progress,
    )
    control_by_key = {
        o.key: _canonical(dict(o.metrics)) for o in control.outcomes
    }

    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(src_root), env.get("PYTHONPATH", ""))
        if part
    )
    env.pop(ENV_VAR, None)  # workers run the clean task function

    def spawn_coord(log):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "coord", "serve",
                "--dir", str(state),
                "--port", str(coord_port),
                "--ttl", f"{ttl:g}",
            ],
            env=env, cwd=str(base),
            stdout=log, stderr=subprocess.STDOUT,
        )

    hosts = [f"chost{i}" for i in range(workers)]
    partition_host = hosts[-1]
    schedule = _FaultSchedule()
    report = ChaosReport(
        seed=seed,
        workers=workers,
        tasks=total,
        plan={
            "mode": "coord",
            "hosts": hosts,
            "partition_host": partition_host,
            "partition": partition_seconds,
            "ttl": ttl,
            "throttle": throttle,
            "coord_port": coord_port,
            "faults": {},
        },
    )
    report.control_failures = control.failure_summary()
    report.control_wall = control.wall_time
    report.verdicts.append(
        ChaosVerdict(
            "control_clean",
            control.executed == total and not control.quarantined,
            f"executed {control.executed}/{total}, "
            f"{len(control.quarantined)} quarantined",
        )
    )

    started = time.monotonic()
    coord_log = (base / "coord.log").open("w", encoding="utf-8")
    log_handles = [coord_log]
    coord_proc = spawn_coord(coord_log)
    procs: List[subprocess.Popen] = []
    faulty = partitioned = None
    killed = restarted = False
    worker_rcs: List[int] = []
    try:
        # -- 2. wait for the coordinator, submit the grid --------------
        admin = CoordClient(
            address=("127.0.0.1", coord_port),
            timeout=2.0,
            offline_budget=15.0,
        )
        admin.request({"op": "ping"})
        submit_tasks(
            admin, tasks, version=version, options={"seed": seed}
        )

        # -- 3. fault proxies between the workers and the port ---------
        faulty = _FaultProxy(
            ("127.0.0.1", coord_port), schedule=schedule, seed=seed
        )
        partitioned = _FaultProxy(("127.0.0.1", coord_port))

        # -- 4. the workers, reachable only through the proxies --------
        for host in hosts:
            proxy = partitioned if host == partition_host else faulty
            cmd = [
                sys.executable, "-m", "repro", "coord", "worker",
                "--addr", f"127.0.0.1:{proxy.port}",
                "--outbox", str(base / "outbox"),
                "--host", host,
                "--poll", "0.1",
                "--heartbeat", "0.5",
                "--throttle", f"{throttle:g}",
                "--request-timeout", "1.5",
                "--offline-budget", "60",
                "--no-progress",
            ]
            log = (base / f"{host}.log").open("w", encoding="utf-8")
            log_handles.append(log)
            procs.append(
                subprocess.Popen(
                    cmd, env=env, cwd=str(base),
                    stdout=log, stderr=subprocess.STDOUT,
                )
            )

        # -- 5. mid-run: partition one worker, SIGKILL the coordinator -
        def outcome_count() -> int:
            return len(_coord_journal_outcomes(state))

        warm_deadline = time.monotonic() + drain_timeout / 2
        while time.monotonic() < warm_deadline and outcome_count() < 2:
            time.sleep(0.05)
        partitioned.partition(partition_seconds)
        if coord_proc.poll() is None:
            # Leases are in flight (workers hold throttled tasks): this
            # is the mid-lease kill the journal must survive.
            coord_proc.send_signal(signal.SIGKILL)
            killed = True
        coord_proc.wait()
        time.sleep(0.5)
        coord_proc = spawn_coord(coord_log)
        try:
            admin.request({"op": "ping"}, offline_budget=20.0)
            restarted = True
        except CoordinatorUnreachable:
            restarted = False

        # -- 6. wait for the drain -------------------------------------
        drain_deadline = time.monotonic() + drain_timeout
        for proc in procs:
            budget = max(1.0, drain_deadline - time.monotonic())
            try:
                worker_rcs.append(proc.wait(timeout=budget))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                worker_rcs.append(-9)

        # -- 7. stop the coordinator cleanly ---------------------------
        try:
            admin.request({"op": "stop"}, offline_budget=5.0)
        except (CoordinatorUnreachable, OSError):
            pass
        admin.close()
        try:
            coord_proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            coord_proc.kill()
            coord_proc.wait()
    finally:
        for proc in [coord_proc] + procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        for proxy in (faulty, partitioned):
            if proxy is not None:
                proxy.close()
        for log in log_handles:
            log.close()
    report.chaos_wall = time.monotonic() - started
    report.plan["faults"] = dict(schedule.counts)

    # -- 8. verdicts over the journal ----------------------------------
    status = coord_status(state)
    merged = coord_report(state)
    report.chaos_failures = merged.failure_summary()
    report.quarantined = [q.to_record() for q in merged.quarantined]

    journal_entries = _read_jsonl(state / JOURNAL_NAME, strict=False)
    starts = sum(
        1 for e in journal_entries if e.get("kind") == "coord_start"
    )
    complete_ok = (
        status["pending"] == 0
        and status["done"]
        and not merged.quarantined
        and killed
        and restarted
        and starts >= 2
        and all(rc == 0 for rc in worker_rcs)
    )
    report.verdicts.append(
        ChaosVerdict(
            "coord_complete",
            complete_ok,
            f"{status['completed']}/{total} done, {status['pending']} "
            f"pending, {len(merged.quarantined)} quarantined; "
            f"coordinator killed={killed} restarted={restarted} "
            f"({starts} journal starts); worker exit codes {worker_rcs}",
        )
    )

    fresh_counts: Dict[str, int] = {}
    for entry in journal_entries:
        if entry.get("kind") == "outcome" and not entry.get("cached"):
            fresh_counts[entry["key"]] = (
                fresh_counts.get(entry["key"], 0) + 1
            )
    multiples = {k: c for k, c in fresh_counts.items() if c != 1}
    exactly_once = (
        not multiples
        and len(fresh_counts) == total
        and set(fresh_counts) == set(keys)
    )
    report.verdicts.append(
        ChaosVerdict(
            "exactly_once",
            exactly_once,
            f"{len(fresh_counts)}/{total} tasks executed, "
            f"{len(multiples)} executed more than once "
            f"({sum(fresh_counts.values())} fresh outcomes journaled)",
        )
    )

    counts = schedule.counts
    faults_ok = (
        all(
            counts[kind] >= 1
            for kind in ("drop", "dup", "delay", "truncate", "garbage")
        )
        and partitioned.partitions >= 1
    )
    report.verdicts.append(
        ChaosVerdict(
            "faults_injected",
            faults_ok,
            f"frames: {counts['forward']} forwarded, "
            f"{counts['drop']} dropped, {counts['dup']} duplicated, "
            f"{counts['delay']} delayed, {counts['truncate']} truncated, "
            f"{counts['garbage']} garbage-prefixed; "
            f"{partitioned.partitions} partition window(s)",
        )
    )

    merged_keys = [o.key for o in merged.outcomes]
    mismatches = [
        o.key
        for o in merged.outcomes
        if control_by_key.get(o.key) != _canonical(dict(o.metrics))
    ]
    report.verdicts.append(
        ChaosVerdict(
            "results_match",
            not mismatches
            and len(merged_keys) == total
            and len(set(merged_keys)) == total,
            f"{len(merged_keys)}/{total} outcomes "
            f"({len(set(merged_keys))} distinct), "
            f"{len(mismatches)} metric mismatches vs control",
        )
    )

    # -- 9. warm replay over the coordinator's result cache ------------
    replay = run_tasks(
        tasks,
        chaos_run_task,
        workers=0,
        cache=ResultCache(state / "results"),
        telemetry=RunTelemetry(base / "replay-run"),
        progress=progress,
    )
    replay_mismatches = [
        o.key
        for o in replay.outcomes
        if control_by_key.get(o.key) != _canonical(dict(o.metrics))
    ]
    replay_ok = (
        replay.executed == 0
        and replay.cache_hits == total
        and not replay_mismatches
        and not replay.quarantined
    )
    report.verdicts.append(
        ChaosVerdict(
            "replay",
            replay_ok,
            f"executed {replay.executed} (want 0), {replay.cache_hits} "
            f"cache hits (want {total}), {len(replay_mismatches)} "
            "mismatches vs control",
        )
    )
    return report
