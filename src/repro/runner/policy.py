"""Fault policy for the executor: what happens when a task misbehaves.

The protocols under study are Las-Vegas — always correct, random running
time — but the *infrastructure* that measures them fails like any other
distributed system: worker processes crash, tasks hang, transient
resource errors come and go.  :class:`FaultPolicy` is the executor's
contract for those events:

* **timeouts** — a per-task wall-clock budget, enforced by a watchdog
  around worker futures (a chunk of ``c`` tasks gets ``c × timeout``);
* **retries** — bounded re-execution with exponential backoff and
  deterministic jitter for transient failures (raised exceptions and
  crashed workers alike);
* **quarantine** — a task that keeps failing is *recorded and skipped*
  (a :class:`QuarantineRecord` in the report and ``quarantine.jsonl``)
  instead of aborting the whole sweep, up to a failure-fraction
  threshold past which the run aborts anyway (so a systematically
  broken task function still fails loudly).

Retry jitter is derived from the task key with the same sha256 stream
construction as every other random draw in this repo
(:func:`repro.rng.child_rng`), so two resumptions of the same sweep
back off identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.rng import child_rng

#: Quarantine categories, by failure mode.
QUARANTINE_CATEGORIES = ("error", "crash", "timeout")


@dataclass(frozen=True)
class FaultPolicy:
    """How the executor treats failing, crashing, and hanging tasks.

    ``timeout``
        Per-task wall-clock budget in seconds, or None for no watchdog.
        Enforced preemptively only with ``workers >= 1`` (the watchdog
        kills and rebuilds the pool); the inline gear cannot interrupt a
        running task and only *counts* overruns.
    ``max_retries``
        How many times a failed task (raised exception or crashed
        worker) is re-executed before it is quarantined.  Timeouts are
        never retried — a hang is assumed persistent.
    ``backoff_base`` / ``backoff_cap`` / ``jitter``
        Retry ``attempt`` waits ``min(cap, base · 2^(attempt-1))``
        scaled by ``1 + jitter·u`` with ``u`` drawn deterministically
        from the task key.
    ``quarantine``
        When True (the default), a task that exhausts its retries is
        recorded and skipped; when False the first exhausted task
        aborts the run with :class:`~repro.runner.executor.TaskExecutionError`.
    ``max_quarantine_fraction``
        Abort the run once more than this fraction of the tasks pending
        execution has been quarantined — the failures are systemic, not
        sporadic.
    ``rebuild_limit``
        Consecutive pool breaks without any completed result before the
        executor gives up on process isolation and degrades to inline
        execution.
    ``seed``
        Root seed of the backoff-jitter stream.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    quarantine: bool = True
    max_quarantine_fraction: float = 0.5
    rebuild_limit: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff must be non-negative")
        if not 0.0 <= self.max_quarantine_fraction <= 1.0:
            raise ConfigurationError(
                "max_quarantine_fraction must be in [0, 1], got "
                f"{self.max_quarantine_fraction}"
            )
        if self.rebuild_limit < 1:
            raise ConfigurationError(
                f"rebuild_limit must be >= 1, got {self.rebuild_limit}"
            )

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of task ``key``."""
        base = min(
            self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1))
        )
        u = child_rng(self.seed, "backoff", key, attempt).random()
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class QuarantineRecord:
    """One task the executor gave up on — recorded, not fatal.

    ``category`` is one of :data:`QUARANTINE_CATEGORIES`:

    * ``"error"``   — the task function raised on every attempt;
    * ``"crash"``   — the worker process died on every attempt;
    * ``"timeout"`` — the task exceeded its wall-clock budget.
    """

    spec: Mapping[str, Any]
    key: str
    label: str
    category: str
    attempts: int
    detail: str

    def to_record(self) -> Dict[str, Any]:
        return {
            "spec": dict(self.spec),
            "key": self.key,
            "label": self.label,
            "category": self.category,
            "attempts": self.attempts,
            "detail": self.detail,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "QuarantineRecord":
        return cls(
            spec=dict(record["spec"]),
            key=str(record["key"]),
            label=str(record["label"]),
            category=str(record["category"]),
            attempts=int(record["attempts"]),
            detail=str(record["detail"]),
        )
