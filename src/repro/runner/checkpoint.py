"""Sweep checkpointing: resume an interrupted run from completed-task state.

The result cache already makes sweeps resumable *when a cache is
configured*; the checkpoint makes resumption independent of it.  A
checkpoint file is an append-only JSONL journal written as each task
finishes (line-buffered, one fsync-free flush per record):

``{"kind": "outcome", "key": …, "record": {spec, metrics, wall_time, version}}``
    A completed task, stored with the same record shape as the result
    cache, keyed by the task's content address.
``{"kind": "quarantine", "key": …, "record": {spec, category, …}}``
    A task the executor quarantined; resuming skips it (re-running a
    known poison task would just re-poison the run) and carries it into
    the new report's quarantine list.

Because the last line may be torn by a hard kill (OOM, machine loss),
:meth:`SweepCheckpoint.load` tolerates a truncated *final* line; corrupt
interior lines still raise, since they indicate something worse than a
crash mid-append.

Multi-writer journals
---------------------
The fleet runner journals one stream per host and resumes from the
*union* of them, so a journal may legitimately contain the same content
key more than once — two hosts raced a reclaimed lease, or a merged
stream replayed a cache hit a dead host had already committed.  ``load``
resolves duplicates last-write-wins by content key and counts them on
:attr:`SweepCheckpoint.duplicates` (surfaced as ``duplicates_merged`` in
the :class:`~repro.runner.executor.RunReport`); a key that appears both
quarantined and completed resolves to whichever line came last.  Beyond
the outcome/quarantine kinds, fleet journals carry event lines
(``host_start``, ``lease_reclaim``, …) written via :meth:`append_event`;
``load`` skips kinds it does not know, so one file serves as checkpoint
and telemetry stream at once.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Tuple


class SweepCheckpoint:
    """An append-only journal of one sweep's completed-task state.

    ``fsync`` flushes every append to stable storage before returning.
    The fleet and coordinator backends journal *at their commit points*
    (an outcome is journaled before the task is retired), so they pay
    for durability; the single-process checkpoint keeps the cheap
    flush-only default — losing its final line to a power cut merely
    re-runs one task.
    """

    def __init__(self, path: os.PathLike, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: Optional[TextIO] = None
        #: Duplicate content keys resolved (last-write-wins) by the most
        #: recent :meth:`load` — nonzero only for journals merged from,
        #: or appended by, more than one writer.
        self.duplicates = 0

    # -- reading -------------------------------------------------------

    def load(self) -> Tuple[Dict[str, Dict], Dict[str, Dict]]:
        """Replay the journal into ``(completed, quarantined)`` by key.

        Later lines win (a resumed run may re-append a key, and merged
        multi-host journals may carry genuine duplicates — counted on
        :attr:`duplicates`), and a truncated final line — the signature
        of a crash mid-write — is silently dropped.
        """
        completed: Dict[str, Dict] = {}
        quarantined: Dict[str, Dict] = {}
        self.duplicates = 0
        if not self.path.exists():
            return completed, quarantined
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    break  # torn final append: the task simply re-runs
                raise ValueError(
                    f"corrupt checkpoint line {number + 1} in {self.path}"
                ) from None
            kind = entry.get("kind")
            if kind not in ("outcome", "quarantine"):
                continue  # fleet event lines share the journal
            key = entry["key"]
            if key in completed or key in quarantined:
                self.duplicates += 1
            # Last write wins in *both* directions: a later outcome
            # supersedes an earlier quarantine (another host finished
            # the task after all) and vice versa.
            completed.pop(key, None)
            quarantined.pop(key, None)
            if kind == "outcome":
                completed[key] = entry["record"]
            else:
                quarantined[key] = entry["record"]
        return completed, quarantined

    # -- writing -------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open(
                "a", encoding="utf-8", buffering=1
            )
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append_outcome(self, key: str, record: Dict[str, Any]) -> None:
        self._append({"kind": "outcome", "key": key, "record": record})

    def append_quarantine(self, key: str, record: Dict[str, Any]) -> None:
        self._append({"kind": "quarantine", "key": key, "record": record})

    def append_event(self, kind: str, **payload: Any) -> None:
        """Append a non-task event line (fleet telemetry: host lifecycle,
        lease reclaims).  ``load`` ignores these; the fleet status merger
        reads them."""
        self._append({"kind": kind, **payload})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
