"""Content-addressed on-disk result cache.

Every task outcome is stored under the sha256 key of its spec + package
version (see :meth:`repro.runner.task.TaskSpec.key`), as one small JSON
file in a two-level fan-out directory (``ab/abcdef….json``).  Because the
key covers everything the outcome depends on, a hit can be replayed
verbatim: interrupted sweeps resume for free and repeat runs execute
zero tasks.

Writes are atomic (`tmp` + ``os.replace``), so a crashed or killed worker
never leaves a torn entry behind, and two processes racing to write the
same key both leave a valid file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional


class ResultCache:
    """A directory of content-addressed task outcomes."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored outcome record for ``key``, or None on a miss.

        A corrupt entry (torn write from a hard kill predating the atomic
        rename, manual edit, …) counts as a miss and is discarded so the
        task simply re-runs.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically store ``record`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        """All stored keys (order unspecified)."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
