"""Content-addressed on-disk result cache.

Every task outcome is stored under the sha256 key of its spec + package
version (see :meth:`repro.runner.task.TaskSpec.key`), as one small JSON
file in a two-level fan-out directory (``ab/abcdef….json``).  Because the
key covers everything the outcome depends on, a hit can be replayed
verbatim: interrupted sweeps resume for free and repeat runs execute
zero tasks.

Writes are atomic (same-directory temp + ``os.replace`` via
:mod:`repro.runner.atomicio` — the temp file is staged next to its
destination, never in the system tmpdir, so the rename cannot cross
filesystems when the cache lives on shared/NFS storage), so a crashed or
killed worker never leaves a torn entry behind, and two processes — or
two fleet hosts — racing to write the same key both leave a valid file.
Because keys are content addresses, the race is idempotent: both writers
publish byte-identical records.

Integrity: every stored record carries a ``sha256`` field over its own
canonical JSON payload, verified on read.  A corrupt entry — torn bytes,
bit rot, a manual edit that kept the JSON valid — is *not* silently
swallowed: the file is moved aside into a ``corrupt/`` sidecar directory
(for post-mortems), counted on :attr:`ResultCache.corrupt`, and the task
re-runs.  Entries written before the integrity field existed stay
readable.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.runner.atomicio import atomic_write_json

#: Sidecar directory (under the cache root) where corrupt entries are
#: moved for inspection instead of being deleted.
CORRUPT_DIR = "corrupt"


def payload_digest(record: Dict[str, Any]) -> str:
    """sha256 of a record's canonical JSON (the integrity field value)."""
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed task outcomes.

    ``fsync`` makes every :meth:`put` flush the entry (and its
    directory) to stable storage before returning.  The fleet and
    coordinator backends turn it on — their crash-consistency story
    ("committed means committed, even through kill -9 and a power cut")
    is only honest on a real disk if the commit point is durable — while
    single-process runs keep the cheap default.
    """

    def __init__(self, root: os.PathLike, *, fsync: bool = False) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _discard_corrupt(self, path: Path) -> None:
        """Move a bad entry into ``corrupt/`` and count it."""
        self.corrupt += 1
        sidecar = self.root / CORRUPT_DIR
        try:
            sidecar.mkdir(parents=True, exist_ok=True)
            os.replace(path, sidecar / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored outcome record for ``key``, or None on a miss.

        A corrupt entry (torn write from a hard kill predating the atomic
        rename, manual edit, integrity mismatch, …) counts as a miss *and*
        on :attr:`corrupt`; the bad file is preserved under ``corrupt/``
        and the task simply re-runs.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            self._discard_corrupt(path)
            return None
        if not isinstance(record, dict):
            self.misses += 1
            self._discard_corrupt(path)
            return None
        declared = record.pop("sha256", None)
        if declared is not None and declared != payload_digest(record):
            self.misses += 1
            self._discard_corrupt(path)
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically store ``record`` under ``key`` (with its digest)."""
        stored = dict(record)
        stored["sha256"] = payload_digest(record)
        atomic_write_json(self._path(key), stored, fsync=self.fsync)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        """All stored keys (order unspecified; corrupt/ is not a shard)."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == CORRUPT_DIR:
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def corrupt_entries(self) -> Iterator[Path]:
        """Files moved aside after failing the integrity check."""
        sidecar = self.root / CORRUPT_DIR
        if sidecar.is_dir():
            yield from sorted(sidecar.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
