"""Coordinator-less multi-host fleet runner over a shared queue directory.

A *fleet queue* is a directory on storage every participating host can
reach — local disk for one machine, NFS (or any shared mount) for many:

.. code-block:: text

    queue/
      queue.json              submit manifest: exp_id, version, options,
                              the grid's content keys in grid order
      tasks/<key>.json        one pending task per file (spec + key)
      leases/<key>.lease      in-flight claims (create-exclusive,
                              heartbeat-refreshed — see runner/lease.py)
      results/                the shared content-addressed ResultCache
      quarantine/<key>.json   tasks the fleet gave up on
      hosts/<host>/journal.jsonl  per-host checkpoint/telemetry stream

There is no coordinator process and no network protocol: ``python -m
repro fleet submit`` populates the queue, any number of ``fleet worker``
processes on any number of machines drain it, and ``fleet status``
merges the per-host journals into one progress / failure-taxonomy view
at any time during or after the run.

Per task, a worker: claims the lease create-exclusively, heartbeats its
mtime while executing, commits the outcome to the shared cache with a
crash-consistent same-directory ``os.replace``, journals it, removes the
task file, and releases the lease.  Every step is atomic or idempotent,
so a worker — or its entire host — can be SIGKILLed between any two
steps: the task is either still pending, or claimed by a lease that goes
stale and is reclaimed within one TTL, or already committed — in which
case the re-claimer replays the cache hit instead of re-executing.  No
task is ever lost; duplicate journal records are merged last-write-wins
by content key at read time and counted as ``duplicates_merged``.

The steal count carried on each lease folds host death into the
existing :class:`~repro.runner.policy.FaultPolicy` retry budget: a task
whose lease has been stolen more than ``max_retries`` times is killing
its hosts and is quarantined (category ``"crash"``) rather than allowed
to take the fleet down host by host.

``run_fleet_chaos`` (:mod:`repro.runner.chaos`) proves the whole
protocol end to end: it SIGKILLs a worker host mid-sweep, corrupts an
in-flight lease, skews one host's clock, and verifies bit-for-bit
convergence to a single-process clean control.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.runner.atomicio import atomic_write_json
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.executor import RunReport, TaskOutcome
from repro.runner.lease import LeaseDir, LeaseObserver
from repro.runner.policy import FaultPolicy, QuarantineRecord
from repro.runner.task import TaskSpec
from repro.runner.telemetry import _read_jsonl, merge_task_records

QUEUE_MANIFEST = "queue.json"
TASKS_DIR = "tasks"
LEASES_DIR = "leases"
RESULTS_DIR = "results"
QUARANTINE_DIR = "quarantine"
HOSTS_DIR = "hosts"
JOURNAL_NAME = "journal.jsonl"


#: Per-process random nonce folded into :func:`default_host_name`.
#: Computed once per interpreter (fork inherits it, but forked children
#: differ by pid; a fresh interpreter draws a fresh nonce).
_HOST_NONCE = os.urandom(2).hex()


def default_host_name() -> str:
    """A per-worker host identity: ``<hostname>-<pid>-<nonce>``.

    One OS host may deliberately run several workers; each is its own
    fleet "host" with its own journal stream and lease identity.  The
    random per-process nonce keeps a restarted worker that recycles a
    dead predecessor's PID from inheriting its journal stream and lease
    identity — without it, ``fleet status`` would mis-merge the two
    incarnations into one host taxonomy entry.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{_HOST_NONCE}"


class FleetQueue:
    """One shared work-queue directory (layout in the module docstring)."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / TASKS_DIR
        self.quarantine_dir = self.root / QUARANTINE_DIR
        self.hosts_dir = self.root / HOSTS_DIR
        self.manifest_path = self.root / QUEUE_MANIFEST

    # -- submit --------------------------------------------------------

    def submit(
        self,
        tasks: List[TaskSpec],
        *,
        version: str,
        options: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Populate the queue with ``tasks``; returns how many are new.

        Idempotent: resubmitting the same grid rewrites identical task
        files (atomic, so racing workers never see a torn spec) and
        leaves completed work alone — a task whose result is already in
        the shared cache is skipped by workers as a cache hit, not
        re-executed.
        """
        if not tasks:
            raise ConfigurationError("cannot submit an empty task grid")
        exp_ids = {spec.exp_id for spec in tasks}
        if len(exp_ids) != 1:
            raise ConfigurationError(
                f"one queue holds one experiment, got {sorted(exp_ids)}"
            )
        self.tasks_dir.mkdir(parents=True, exist_ok=True)
        (self.root / LEASES_DIR).mkdir(parents=True, exist_ok=True)
        (self.root / RESULTS_DIR).mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self.hosts_dir.mkdir(parents=True, exist_ok=True)
        keys = [spec.key(version) for spec in tasks]
        fresh = 0
        for spec, key in zip(tasks, keys):
            path = self.task_path(key)
            if not path.exists():
                fresh += 1
            atomic_write_json(
                path, {"key": key, "spec": spec.to_record()}
            )
        atomic_write_json(
            self.manifest_path,
            {
                "exp_id": tasks[0].exp_id,
                "version": version,
                "total": len(tasks),
                "keys": keys,
                "options": dict(options or {}),
                "submitted_unix": time.time(),
            },
            indent=2,
        )
        return fresh

    # -- paths and listings --------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        try:
            return json.loads(self.manifest_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            raise ConfigurationError(
                f"{self.root} is not a fleet queue (no readable "
                f"{QUEUE_MANIFEST}; run 'fleet submit' first)"
            ) from None

    def leases(self, clock_skew: float = 0.0) -> LeaseDir:
        # fsync=True: a claim is a commit point — it must survive a
        # machine crash, or a rebooted host could double-own a task.
        return LeaseDir(
            self.root / LEASES_DIR, clock_skew=clock_skew, fsync=True
        )

    def cache(self) -> ResultCache:
        # fsync=True: "committed" must mean durable for the kill -9
        # chaos verdicts to be honest on a real disk.
        return ResultCache(self.root / RESULTS_DIR, fsync=True)

    def task_path(self, key: str) -> Path:
        return self.tasks_dir / f"{key}.json"

    def pending_keys(self) -> List[str]:
        """Content keys of tasks not yet completed (sorted)."""
        try:
            names = os.listdir(self.tasks_dir)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    def read_task(self, key: str) -> Optional[Dict[str, Any]]:
        """The task record for ``key``; None once completed (or torn)."""
        try:
            payload = json.loads(self.task_path(key).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def remove_task(self, key: str) -> None:
        try:
            os.unlink(self.task_path(key))
        except OSError:
            pass

    # -- quarantine ----------------------------------------------------

    def quarantine_path(self, key: str) -> Path:
        return self.quarantine_dir / f"{key}.json"

    def put_quarantine(self, key: str, record: Dict[str, Any]) -> None:
        atomic_write_json(self.quarantine_path(key), record, fsync=True)

    def quarantined(self) -> Dict[str, Dict[str, Any]]:
        records: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.quarantine_dir))
        except OSError:
            return records
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            try:
                records[name[:-5]] = json.loads(
                    (self.quarantine_dir / name).read_text("utf-8")
                )
            except (OSError, json.JSONDecodeError):
                continue
        return records

    # -- per-host journals ---------------------------------------------

    def journal_path(self, host: str) -> Path:
        return self.hosts_dir / host / JOURNAL_NAME

    def hosts(self) -> List[str]:
        try:
            return sorted(
                entry
                for entry in os.listdir(self.hosts_dir)
                if (self.hosts_dir / entry / JOURNAL_NAME).exists()
            )
        except OSError:
            return []


@dataclass
class WorkerReport:
    """What one worker (fleet or coordinator-attached) did.

    ``stranded`` is coordinator-specific: outcomes a worker computed but
    could not commit before its coordinator stayed unreachable past the
    offline budget — spooled to the local outbox and committed by the
    next worker run instead of lost.
    """

    host: str
    executed: int = 0
    cache_hits: int = 0
    retries: int = 0
    lease_reclaims: int = 0
    quarantined: int = 0
    overruns: int = 0
    stranded: int = 0
    wall_time: float = 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "lease_reclaims": self.lease_reclaims,
            "quarantined": self.quarantined,
            "overruns": self.overruns,
            "stranded": self.stranded,
            "wall_time": self.wall_time,
        }


class FleetWorker:
    """One pull-mode worker draining a fleet queue until it is empty.

    Tasks execute inline in this process (a fleet already shards across
    processes and machines; each worker is one lane).  ``run_fn``
    overrides the registry lookup — tests inject counting stubs; the CLI
    leaves it None so specs resolve through
    :func:`~repro.runner.registry.run_registered_task` (or the batch
    entry point, as a singleton batch, for ``engine="vector"`` tasks).

    ``ttl`` is the lease expiry interval: a lease whose mtime sits
    unchanged for one TTL of this worker's monotonic clock is treated as
    orphaned and stolen.  The heartbeat thread refreshes the active
    lease every ``ttl/4`` by default, so only a dead or wedged host goes
    stale.  ``clock_skew`` (chaos/testing) makes this worker stamp lease
    times as if its wall clock were wrong by that many seconds.

    ``throttle`` sleeps that long before each fresh execution — chaos
    and tests use it to hold tasks in flight long enough to kill hosts
    mid-task; production leaves it 0.
    """

    def __init__(
        self,
        queue: Union[FleetQueue, os.PathLike, str],
        host: Optional[str] = None,
        *,
        policy: Optional[FaultPolicy] = None,
        ttl: float = 30.0,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.5,
        throttle: float = 0.0,
        clock_skew: float = 0.0,
        run_fn=None,
        max_tasks: Optional[int] = None,
        progress: bool = False,
    ) -> None:
        self.queue = queue if isinstance(queue, FleetQueue) else FleetQueue(queue)
        self.host = host if host is not None else default_host_name()
        self.policy = policy if policy is not None else FaultPolicy()
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        self.ttl = ttl
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else ttl / 4.0
        )
        self.poll_interval = poll_interval
        self.throttle = throttle
        self.run_fn = run_fn
        self.max_tasks = max_tasks
        self.progress = progress
        self.leases = self.queue.leases(clock_skew=clock_skew)
        self.observer = LeaseObserver(ttl)
        self.cache = self.queue.cache()
        self.report = WorkerReport(host=self.host)
        self._active_key: Optional[str] = None
        self._stop_heartbeat = threading.Event()
        self._journal: Optional[SweepCheckpoint] = None

    # -- journal -------------------------------------------------------

    def _journal_outcome(
        self, key: str, record: Dict[str, Any], cached: bool, source: str
    ) -> None:
        self._journal._append(
            {
                "kind": "outcome",
                "key": key,
                "record": record,
                "host": self.host,
                "cached": cached,
                "source": source,
                "time_unix": time.time(),
            }
        )

    # -- heartbeat thread ----------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(self.heartbeat_interval):
            key = self._active_key
            if key is not None:
                self.leases.heartbeat(key)

    # -- task execution ------------------------------------------------

    def _call(self, spec: TaskSpec) -> Mapping[str, Any]:
        if self.run_fn is not None:
            return self.run_fn(spec)
        from repro.runner.registry import (
            run_registered_batch,
            run_registered_task,
        )

        if spec.engine != "scalar":
            return run_registered_batch(spec.exp_id, [spec])[0]
        return run_registered_task(spec.exp_id, spec)

    def _execute(
        self, spec: TaskSpec, key: str
    ) -> Optional[Tuple[Dict[str, Any], float]]:
        """Run one task with the policy's retry budget; None if given up."""
        attempts = 0
        while True:
            started = time.perf_counter()
            try:
                metrics = dict(self._call(spec))
            except Exception as exc:
                attempts += 1
                if attempts > self.policy.max_retries:
                    self._quarantine(
                        spec,
                        key,
                        category="error",
                        attempts=attempts,
                        detail=(
                            f"task {spec.label()} failed on {self.host}: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
                    return None
                self.report.retries += 1
                time.sleep(self.policy.backoff_delay(key, attempts))
                continue
            wall = time.perf_counter() - started
            if self.policy.timeout is not None and wall > self.policy.timeout:
                # Inline execution cannot preempt; overruns are counted
                # (the fleet's watchdog against *dead* hosts is the
                # lease TTL, not this budget).
                self.report.overruns += 1
            return metrics, wall

    def _quarantine(
        self,
        spec: TaskSpec,
        key: str,
        *,
        category: str,
        attempts: int,
        detail: str,
    ) -> None:
        record = QuarantineRecord(
            spec=spec.to_record(),
            key=key,
            label=spec.label(),
            category=category,
            attempts=attempts,
            detail=detail,
        )
        self.queue.put_quarantine(key, record.to_record())
        self._journal.append_quarantine(key, record.to_record())
        self.report.quarantined += 1

    # -- per-task protocol ---------------------------------------------

    def _finish(self, key: str) -> None:
        """Commit order matters: journal, *then* retire the task file,
        then release the lease — a kill between any two steps leaves the
        queue recoverable (at worst a replayed cache hit)."""
        self.queue.remove_task(key)
        self.leases.release(key)

    def _try_task(self, key: str, version: str) -> bool:
        """Claim and finish one task; True if this worker made progress."""
        task_record = self.queue.read_task(key)
        if task_record is None:
            return False  # completed (or retired) by someone else
        stolen = None
        if not self.leases.claim(key, self.host):
            stolen = self.leases.reclaim(key, self.host, self.observer)
            if stolen is None:
                return False  # live owner elsewhere, or lost the race
            self.report.lease_reclaims += 1
            steal_count = stolen.steal_count + 1
            self._journal.append_event(
                "lease_reclaim",
                key=key,
                host=self.host,
                victim_host=stolen.host,
                steal_count=steal_count,
                time_unix=time.time(),
            )
        try:
            if not self.queue.task_path(key).exists():
                # Retired between our pending scan and the claim: the
                # previous owner committed, removed the task file and
                # released.  Only the lease holder retires a task, so
                # now that *we* hold the lease this check is race-free.
                self.leases.release(key)
                return False
            spec = TaskSpec.from_record(task_record["spec"])
            if stolen is not None and (
                stolen.steal_count + 1 > self.policy.max_retries
            ):
                # The steal count folds into the retry budget: hosts
                # keep dying (or wedging) on this task.
                self._quarantine(
                    spec,
                    key,
                    category="crash",
                    attempts=stolen.steal_count + 1,
                    detail=(
                        f"lease stolen {stolen.steal_count + 1} times "
                        f"(last victim {stolen.host}); hosts keep dying "
                        "on this task"
                    ),
                )
                self._finish(key)
                return True
            self._active_key = key
            try:
                record = self.cache.get(key)
                if record is not None:
                    # A dead (or racing) host already committed: replay.
                    self._journal_outcome(
                        key, record, cached=True, source="cache"
                    )
                    self.report.cache_hits += 1
                    self._finish(key)
                    return True
                if self.throttle:
                    time.sleep(self.throttle)
                result = self._execute(spec, key)
                if result is None:  # quarantined
                    self._finish(key)
                    return True
                metrics, wall = result
                record = {
                    "spec": spec.to_record(),
                    "metrics": metrics,
                    "wall_time": wall,
                    "version": version,
                }
                self.cache.put(key, record)
                self._journal_outcome(
                    key, record, cached=False, source="fresh"
                )
                self.report.executed += 1
                self._finish(key)
                if self.progress:
                    print(
                        f"[{self.host}] {spec.label()} done in {wall:.2f}s",
                        flush=True,
                    )
                return True
            finally:
                self._active_key = None
        except BaseException:
            # Interrupted mid-task: leave the lease to expire naturally
            # (releasing it here could hand a half-journaled task to a
            # rival while we unwind).
            raise

    def _reap_moot_leases(self) -> None:
        """Unlink leases whose task is already retired.

        A host killed between retiring the task file and releasing the
        lease leaves a lease that refers to nothing.  The work is
        committed, so any worker may clear it immediately — no TTL wait.
        """
        for key in self.leases.keys():
            if not self.queue.task_path(key).exists():
                self.leases.release(key)
                self.observer.forget(key)

    # -- the drain loop ------------------------------------------------

    def run(self) -> WorkerReport:
        """Drain the queue: loop until no task files remain.

        Each pass scans the pending tasks in a host-dependent rotation
        (so simultaneous workers start at different points and rarely
        collide on claims), then reaps moot leases; if a pass made no
        progress — everything pending is leased to live owners — the
        worker sleeps ``poll_interval`` and rescans, which is also how
        it watches rivals' leases for staleness.
        """
        started = time.perf_counter()
        version = str(self.queue.manifest().get("version", ""))
        # fsync=True: journaling an outcome is the step that lets the
        # merge layer trust "this task is done" after any crash.
        self._journal = SweepCheckpoint(
            self.queue.journal_path(self.host), fsync=True
        )
        self._journal.append_event(
            "host_start",
            host=self.host,
            pid=os.getpid(),
            ttl=self.ttl,
            time_unix=time.time(),
        )
        self._stop_heartbeat.clear()
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        done = 0
        try:
            while True:
                pending = self.queue.pending_keys()
                if not pending:
                    break
                offset = hash(self.host) % len(pending)
                rotated = pending[offset:] + pending[:offset]
                progressed = False
                for key in rotated:
                    if (
                        self.max_tasks is not None
                        and done >= self.max_tasks
                    ):
                        return self._shutdown(started, done)
                    if self._try_task(key, version):
                        progressed = True
                        done += 1
                self._reap_moot_leases()
                if not progressed and self.queue.pending_keys():
                    time.sleep(self.poll_interval)
            self._reap_moot_leases()
        finally:
            self._stop_heartbeat.set()
            beat.join(timeout=2.0)
        return self._shutdown(started, done)

    def _shutdown(self, started: float, done: int) -> WorkerReport:
        self._stop_heartbeat.set()
        self.report.wall_time = time.perf_counter() - started
        self._journal.append_event(
            "host_finish",
            host=self.host,
            stats=self.report.to_record(),
            time_unix=time.time(),
        )
        self._journal.close()
        return self.report


# ----------------------------------------------------------------------
# Status merge and the merged run report
# ----------------------------------------------------------------------


@dataclass
class HostStatus:
    """One host's contribution, merged from its journal stream."""

    host: str
    outcomes: int = 0
    fresh: int = 0
    cached: int = 0
    quarantines: int = 0
    lease_reclaims: int = 0
    started_unix: Optional[float] = None
    last_seen_unix: Optional[float] = None
    finished: bool = False

    def throughput(self) -> Optional[float]:
        """Outcomes per second over this host's observed lifetime.

        None until the host has both produced an outcome and been seen
        for a measurable interval — a freshly-started host has no rate
        yet, and inventing one would poison the fleet ETA.
        """
        if (
            self.outcomes == 0
            or self.started_unix is None
            or self.last_seen_unix is None
        ):
            return None
        span = self.last_seen_unix - self.started_unix
        if span <= 0:
            return None
        return self.outcomes / span

    def to_record(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "outcomes": self.outcomes,
            "fresh": self.fresh,
            "cached": self.cached,
            "quarantines": self.quarantines,
            "lease_reclaims": self.lease_reclaims,
            "started_unix": self.started_unix,
            "last_seen_unix": self.last_seen_unix,
            "finished": self.finished,
        }


@dataclass
class FleetStatus:
    """The merged live view of one fleet queue."""

    queue_dir: str
    exp_id: str
    version: str
    total: int
    pending: int
    completed: int
    quarantined: int
    duplicates_merged: int
    lease_reclaims: int
    host_failures: int
    hosts: List[HostStatus] = field(default_factory=list)
    leased: Dict[str, str] = field(default_factory=dict)
    orphan_leases: List[str] = field(default_factory=list)
    quarantine_records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.pending == 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "queue_dir": self.queue_dir,
            "exp_id": self.exp_id,
            "version": self.version,
            "total": self.total,
            "pending": self.pending,
            "completed": self.completed,
            "quarantined": self.quarantined,
            "duplicates_merged": self.duplicates_merged,
            "lease_reclaims": self.lease_reclaims,
            "host_failures": self.host_failures,
            "done": self.done,
            "hosts": [h.to_record() for h in self.hosts],
            "leased": dict(self.leased),
            "orphan_leases": list(self.orphan_leases),
            "quarantine_records": list(self.quarantine_records),
        }

    def summary(self) -> str:
        finished = self.completed + self.quarantined
        frac = finished / self.total if self.total else 1.0
        bar = "#" * int(round(30 * frac))
        lines = [
            f"fleet {self.exp_id} @ {self.queue_dir}",
            f"[{bar:<30}] {finished}/{self.total} "
            f"({self.completed} completed, {self.quarantined} quarantined, "
            f"{self.pending} pending, {len(self.leased)} in flight)",
        ]
        live_rate = 0.0
        for host in self.hosts:
            state = "finished" if host.finished else "running"
            rate = host.throughput()
            if rate is not None and not host.finished:
                live_rate += rate
            rate_str = f"{rate:.2f}/s" if rate is not None else "--/s"
            lines.append(
                f"  {host.host:<24} {host.outcomes:>4} outcomes "
                f"({host.fresh} fresh, {host.cached} cached) "
                f"@ {rate_str}, "
                f"{host.lease_reclaims} reclaims, "
                f"{host.quarantines} quarantines [{state}]"
            )
        if self.pending and live_rate > 0:
            eta = self.pending / live_rate
            lines.append(
                f"eta: ~{eta:.0f}s for {self.pending} pending at "
                f"{live_rate:.2f} tasks/s across live hosts"
            )
        elif self.pending and self.leased:
            lines.append(
                f"eta: unknown ({self.pending} pending, no live "
                "throughput measured yet)"
            )
        lines.append(
            f"failure taxonomy: {self.quarantined} quarantined, "
            f"{self.lease_reclaims} lease reclaims, "
            f"{self.host_failures} host failures, "
            f"{self.duplicates_merged} duplicates merged"
        )
        if self.orphan_leases:
            lines.append(
                f"  {len(self.orphan_leases)} orphan lease(s) awaiting "
                "reclaim: " + ", ".join(k[:12] for k in self.orphan_leases)
            )
        for record in self.quarantine_records:
            lines.append(
                f"  quarantined {record.get('label')} "
                f"[{record.get('category')}] {record.get('detail')}"
            )
        return "\n".join(lines)


def _merged_journal(
    queue: FleetQueue,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], List[HostStatus]]:
    """All hosts' journal lines: (outcome records, events, host stats).

    Journals are read leniently (``strict=False``): a SIGKILLed host may
    have torn its final line, and that is interruption, not damage.
    """
    outcomes: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    hosts: List[HostStatus] = []
    for host in queue.hosts():
        status = HostStatus(host=host)
        for entry in _read_jsonl(queue.journal_path(host), strict=False):
            kind = entry.get("kind")
            stamp = entry.get("time_unix")
            if stamp is not None:
                status.last_seen_unix = stamp
            if kind == "outcome":
                outcomes.append(entry)
                status.outcomes += 1
                if entry.get("cached"):
                    status.cached += 1
                else:
                    status.fresh += 1
            elif kind == "quarantine":
                events.append(entry)
                status.quarantines += 1
            elif kind == "lease_reclaim":
                events.append(entry)
                status.lease_reclaims += 1
            elif kind == "host_start":
                status.started_unix = stamp
            elif kind == "host_finish":
                status.finished = True
        hosts.append(status)
    return outcomes, events, hosts


def fleet_status(queue_dir: os.PathLike) -> FleetStatus:
    """Merge manifest, journals, leases and quarantine into one view."""
    queue = (
        queue_dir if isinstance(queue_dir, FleetQueue) else FleetQueue(queue_dir)
    )
    manifest = queue.manifest()
    outcomes, events, hosts = _merged_journal(queue)
    merged, duplicates = merge_task_records(outcomes)
    pending = queue.pending_keys()
    quarantine = queue.quarantined()
    leases = queue.leases()
    leased: Dict[str, str] = {}
    orphans: List[str] = []
    for key in leases.keys():
        record = leases.read(key)
        owner = record.host if record is not None else "(corrupt lease)"
        if queue.task_path(key).exists():
            leased[key] = owner
        else:
            orphans.append(key)
    victims = {
        event["victim_host"]
        for event in events
        if event.get("kind") == "lease_reclaim"
        and event.get("victim_host")
    }
    return FleetStatus(
        queue_dir=str(queue.root),
        exp_id=str(manifest.get("exp_id", "?")),
        version=str(manifest.get("version", "?")),
        total=int(manifest.get("total", 0)),
        pending=len(pending),
        completed=len(
            {entry.get("key") for entry in merged} - set(quarantine)
        ),
        quarantined=len(quarantine),
        duplicates_merged=duplicates,
        lease_reclaims=sum(h.lease_reclaims for h in hosts),
        host_failures=len(victims),
        hosts=hosts,
        leased=leased,
        orphan_leases=orphans,
        quarantine_records=list(quarantine.values()),
    )


def fleet_report(queue_dir: os.PathLike) -> RunReport:
    """The merged :class:`RunReport` of a fleet run, in grid order.

    Built from the union of the per-host journals, deduplicated
    last-write-wins by content key; the manifest's key list restores
    grid order, so ``summary_table()`` is bit-comparable with a
    single-process run of the same grid.
    """
    queue = (
        queue_dir if isinstance(queue_dir, FleetQueue) else FleetQueue(queue_dir)
    )
    manifest = queue.manifest()
    outcomes_raw, events, hosts = _merged_journal(queue)
    merged, duplicates = merge_task_records(outcomes_raw)
    by_key: Dict[str, Dict[str, Any]] = {
        entry["key"]: entry for entry in merged if "key" in entry
    }
    quarantine = queue.quarantined()
    ordered_keys = [
        str(key) for key in manifest.get("keys", sorted(by_key))
    ]
    outcomes: List[TaskOutcome] = []
    executed = 0
    cache_hits = 0
    for key in ordered_keys:
        entry = by_key.get(key)
        if entry is None:
            continue
        record = entry.get("record", {})
        cached = bool(entry.get("cached"))
        if cached:
            cache_hits += 1
        else:
            executed += 1
        outcomes.append(
            TaskOutcome(
                spec=TaskSpec.from_record(record["spec"]),
                metrics=record.get("metrics", {}),
                wall_time=float(record.get("wall_time", 0.0)),
                cached=cached,
                key=key,
                source=str(entry.get("source", "fresh")),
            )
        )
    wall = 0.0
    stamps = [h.started_unix for h in hosts if h.started_unix is not None]
    ends = [h.last_seen_unix for h in hosts if h.last_seen_unix is not None]
    if stamps and ends:
        wall = max(0.0, max(ends) - min(stamps))
    victims = {
        event["victim_host"]
        for event in events
        if event.get("kind") == "lease_reclaim"
        and event.get("victim_host")
    }
    return RunReport(
        exp_id=str(manifest.get("exp_id", "?")),
        version=str(manifest.get("version", "?")),
        workers=len(hosts),
        outcomes=outcomes,
        executed=executed,
        cache_hits=cache_hits,
        wall_time=wall,
        quarantined=[
            QuarantineRecord.from_record(record)
            for record in quarantine.values()
        ],
        duplicates_merged=duplicates,
        lease_reclaims=sum(h.lease_reclaims for h in hosts),
        hosts_seen=len(hosts),
        host_failures=len(victims),
    )
