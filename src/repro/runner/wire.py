"""Length-prefixed JSON frames for the TCP coordinator — with resync.

The coordinator protocol (:mod:`repro.runner.coord` /
:mod:`repro.runner.client`) exchanges small JSON objects over TCP.  Each
object travels as one *frame*:

.. code-block:: text

    +----------+----------------+------------------+
    | magic 4B | length 4B (BE) | payload: JSON    |
    +----------+----------------+------------------+

TCP guarantees ordered delivery on a healthy connection, but this repo's
chaos harness holds the transport to the same standard it holds the
simulated radio protocols: frames are dropped, duplicated, delayed and
truncated in flight.  The codec is therefore built to *resync*, not to
trust:

* every frame starts with a 4-byte magic, so a receiver that lands
  mid-stream (after a truncated frame, or scribbled bytes) scans forward
  to the next magic instead of mis-framing forever;
* the declared length is bounded by ``max_frame`` — a garbage header
  that happens to contain the magic cannot make the receiver wait for a
  gigabyte that never comes;
* a payload that fails to parse as JSON discards only the bad frame's
  header and rescans, so a frame truncated *into* the next frame's bytes
  costs at most the frames it physically overwrote.

What the codec cannot repair it reports: :class:`FrameDecoder` counts
``resyncs``, ``garbage_bytes``, ``bad_frames`` and ``oversized_frames``
so transports can decide to reconnect (the client does) or just log
(the server does).  Request/response *pairing* under duplication and
reordering is the layer above: every request carries a caller-chosen
``rid`` echoed in the response, and the client discards frames whose
``rid`` it is not waiting for.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Start-of-frame marker.  Chosen to be invalid UTF-8 JSON, so payload
#: bytes can only collide with it inside string escapes — and even then
#: a false resync costs one bad frame, not the connection.
MAGIC = b"\xabRW1"

#: Header: magic + 4-byte big-endian payload length.
HEADER_SIZE = len(MAGIC) + 4

#: Default ceiling on one frame's payload.  Coordinator messages are a
#: task spec or a metrics record — kilobytes; anything near this limit
#: is damage, not data.
MAX_FRAME = 8 * 1024 * 1024


class FrameError(ValueError):
    """A frame could not be encoded (payload not JSON, or too large)."""


def encode_frame(payload: Any, *, max_frame: int = MAX_FRAME) -> bytes:
    """Encode one JSON-serializable ``payload`` as a wire frame."""
    try:
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload is not JSON-serializable: {exc}") from None
    if len(body) > max_frame:
        raise FrameError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{max_frame}-byte ceiling"
        )
    return MAGIC + len(body).to_bytes(4, "big") + body


class FrameDecoder:
    """Incremental frame parser over a byte stream that may be damaged.

    Feed it whatever ``recv`` returned; it yields every complete,
    well-formed frame and skips past anything else, counting what it
    skipped.  The decoder never raises on input bytes — a transport that
    crashed on garbage would be the vulnerability the chaos harness
    exists to find.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        #: Times the decoder had to scan forward for a magic marker.
        self.resyncs = 0
        #: Bytes discarded while scanning (never part of any frame).
        self.garbage_bytes = 0
        #: Frames whose payload failed to parse as a JSON object.
        self.bad_frames = 0
        #: Headers discarded for declaring an implausible length.
        self.oversized_frames = 0

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every complete frame it finished."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            # -- hunt for the start-of-frame marker -----------------
            start = self._buffer.find(MAGIC)
            if start == -1:
                # No magic anywhere: keep a tail shorter than the magic
                # (it may be a marker split across reads), drop the rest.
                keep = len(MAGIC) - 1
                if len(self._buffer) > keep:
                    dropped = len(self._buffer) - keep
                    self.garbage_bytes += dropped
                    self.resyncs += 1
                    del self._buffer[:dropped]
                return frames
            if start > 0:
                self.garbage_bytes += start
                self.resyncs += 1
                del self._buffer[:start]
            if len(self._buffer) < HEADER_SIZE:
                return frames
            length = int.from_bytes(
                self._buffer[len(MAGIC):HEADER_SIZE], "big"
            )
            if length > self.max_frame:
                # A header this implausible is damage; skip just the
                # magic and rescan — the real next frame may start
                # anywhere inside what we thought was a header.
                self.oversized_frames += 1
                self.garbage_bytes += len(MAGIC)
                del self._buffer[:len(MAGIC)]
                continue
            if len(self._buffer) < HEADER_SIZE + length:
                return frames  # frame still in flight
            body = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            try:
                payload = json.loads(body.decode("utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("frame payload must be a JSON object")
            except (ValueError, UnicodeDecodeError):
                # Bad payload — most likely a frame truncated in flight,
                # whose declared length swallowed the next frame's
                # bytes.  Discard only the header and rescan: any intact
                # frame inside the swallowed span is recovered.
                self.bad_frames += 1
                self.garbage_bytes += len(MAGIC)
                del self._buffer[:len(MAGIC)]
                continue
            del self._buffer[:HEADER_SIZE + length]
            frames.append(payload)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def stats(self) -> Dict[str, int]:
        return {
            "resyncs": self.resyncs,
            "garbage_bytes": self.garbage_bytes,
            "bad_frames": self.bad_frames,
            "oversized_frames": self.oversized_frames,
        }
