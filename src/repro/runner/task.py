"""The task model: an experiment as a grid of pure, hashable tasks.

A *task* is one cell of an experiment grid: ``(case parameters, replicate
index, root seed)``.  Tasks are pure by contract — a task's outcome is a
function of its spec alone, never of which worker ran it or in which
order — which is what makes the executor free to shard a grid across
processes and the cache free to replay old outcomes verbatim.

Seeds are assigned *per task* at grid-construction time with
:func:`repro.rng.derive_seed` (sha256 of the task's identity), so the same
grid yields the same seeds no matter how it is later chunked, sharded,
resumed or re-run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rng import content_key, derive_seed
from repro.vector.engine import (
    validate_backend,
    validate_engine,
    validate_mask,
    validate_reception,
)

#: Parameter values a task case may carry (must survive a JSON round-trip
#: bit-for-bit, which is what the cache key depends on).
CaseValue = Any  # str | int | float | bool | None

CaseItems = Tuple[Tuple[str, CaseValue], ...]


def _canonical_case(case: Mapping[str, CaseValue]) -> CaseItems:
    """Sort and validate a case mapping into the frozen tuple form."""
    items = []
    for name in sorted(case):
        value = case[name]
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ConfigurationError(
                f"case parameter {name!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        items.append((name, value))
    return tuple(items)


@dataclass(frozen=True)
class TaskSpec:
    """One pure unit of experiment work.

    ``exp_id``
        The experiment this task belongs to (e.g. ``"E3"``).
    ``case``
        The grid-cell parameters as a sorted ``(name, value)`` tuple.
    ``replicate``
        Replication index within the case (0-based).
    ``seed``
        The task's root seed, derived deterministically from the
        experiment seed and the task identity — never from its position
        in a shard.
    ``engine``
        Which simulation engine evaluates the task: ``"scalar"`` (the
        reference slot loop) or ``"vector"`` (the NumPy lockstep batch).
        Part of the task identity — and hence the cache key — because
        engines are distributionally, not bitwise, equivalent.
    ``reception``
        Reception kernel of the vector engine: ``"dense"``, ``"sparse"``
        or ``"auto"`` (density heuristic).  The kernels are bit-identical
        in outcome, but the knob is still part of the task identity so a
        cached record always states exactly how it was produced (and
        ``auto``'s resolution may change as heuristics are retuned).
        Ignored by the scalar engine.
    ``backend``
        Array-kernel backend of the vector engine: ``"numpy"``,
        ``"numba"``, ``"cupy"`` or ``"auto"``.  Like ``reception``,
        backends are bit-identical in outcome but the *requested* knob
        joins the task identity so cached records state how they were
        produced.  Ignored by the scalar engine.
    ``mask``
        Active-set mask of the vector engine: ``"on"``, ``"off"`` or
        ``"auto"`` (on at n ≥ 1024).  The masked loop draws Decay coins
        only for awake pairs, so the two modes are *distributionally*
        (not coin-flip) equivalent — the knob joins the task identity
        exactly like ``engine``.  Ignored by the scalar engine.
    """

    exp_id: str
    case: CaseItems
    replicate: int
    seed: int
    engine: str = "scalar"
    reception: str = "auto"
    backend: str = "auto"
    mask: str = "auto"

    def __post_init__(self):
        validate_engine(self.engine)
        validate_reception(self.reception)
        validate_backend(self.backend)
        validate_mask(self.mask)

    @property
    def params(self) -> Dict[str, CaseValue]:
        return dict(self.case)

    def label(self) -> str:
        """Compact human-readable cell label (stable across runs)."""
        if not self.case:
            return f"{self.exp_id}#{self.replicate}"
        inner = ",".join(f"{k}={v}" for k, v in self.case)
        return f"{self.exp_id}[{inner}]#{self.replicate}"

    def case_label(self) -> str:
        """The grid-cell label shared by all replicates of this case."""
        if not self.case:
            return self.exp_id
        return ",".join(f"{k}={v}" for k, v in self.case)

    def to_record(self) -> Dict[str, Any]:
        return {
            "exp_id": self.exp_id,
            "case": dict(self.case),
            "replicate": self.replicate,
            "seed": self.seed,
            "engine": self.engine,
            "reception": self.reception,
            "backend": self.backend,
            "mask": self.mask,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "TaskSpec":
        return cls(
            exp_id=record["exp_id"],
            case=_canonical_case(record["case"]),
            replicate=int(record["replicate"]),
            seed=int(record["seed"]),
            engine=str(record.get("engine", "scalar")),
            reception=str(record.get("reception", "auto")),
            backend=str(record.get("backend", "auto")),
            mask=str(record.get("mask", "auto")),
        )

    def key(self, version: str) -> str:
        """Content address of this task under one package version.

        The key covers everything the outcome may legitimately depend on:
        experiment id, case parameters, replicate index, seed, engine,
        and the package version (so a new release never replays stale
        results, and the same spec run on a different engine never
        aliases).
        """
        return content_key({"spec": self.to_record(), "version": version})


def task_grid(
    exp_id: str,
    cases: Sequence[Mapping[str, CaseValue]],
    replications: int,
    seed: int,
) -> List[TaskSpec]:
    """Expand ``cases × replications`` into a flat, seeded task list.

    Each task's seed is ``derive_seed(seed, exp_id, case, replicate)`` —
    a pure function of the task's identity, so two runs of the same grid
    agree task by task even if one is sharded over eight processes and
    the other runs inline.
    """
    if replications < 1:
        raise ConfigurationError("need at least one replication")
    if not cases:
        raise ConfigurationError("task grid needs at least one case")
    tasks: List[TaskSpec] = []
    for case in cases:
        canonical = _canonical_case(case)
        case_key = json.dumps(
            dict(canonical), sort_keys=True, separators=(",", ":")
        )
        for replicate in range(replications):
            tasks.append(
                TaskSpec(
                    exp_id=exp_id,
                    case=canonical,
                    replicate=replicate,
                    seed=derive_seed(seed, exp_id, case_key, replicate),
                )
            )
    return tasks
