"""Atomic task leases over a shared directory — the fleet's only lock.

The fleet runner has no coordinator: workers on any number of machines
race for tasks through small lease files in a directory every host can
reach (local disk for one machine, NFS or similar for many).  Three
primitives make the race safe:

* **claim** — ``os.open(..., O_CREAT | O_EXCL)``: exactly one creator
  wins, everyone else sees ``FileExistsError``.  The file body is a JSON
  record (host, pid, steal count) for observability; ownership itself is
  the file's existence, never its content.
* **heartbeat** — the owner refreshes the lease file's mtime while it
  works.  A lease whose mtime keeps changing has a live owner.
* **reclaim** — a lease whose mtime has *not changed* for one TTL is
  orphaned (its host died or wedged).  A rival atomically renames it to
  a private tombstone — exactly one renamer can win — reads the old
  record out of the tombstone, and re-claims with ``steal_count + 1``.
  The steal count is the fleet's retry budget: a task whose lease keeps
  getting stolen is killing its hosts and gets quarantined.

Staleness is decided without ever comparing a lease's timestamp against
the observer's own clock.  A host with a skewed clock stamps skewed
mtimes, and trusting them would either reclaim live leases (skew behind)
or never reclaim dead ones (skew ahead).  Instead each observer tracks
whether the mtime has *changed* between its own looks and measures the
dwell on its local monotonic clock (:class:`LeaseObserver`): heartbeats
from a live owner keep changing the mtime no matter whose clock stamps
it, so the scheme is immune to arbitrary clock skew between hosts.

Residual races degrade to *duplicate execution*, never to task loss: in
the (heartbeat-lands-inside-the-reclaimer's-stat-window) corner where a
live lease is stolen, both the old and new owner run the task, and both
commit the same content-addressed record through an idempotent atomic
rename.  The merge layer deduplicates by content key.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.runner.atomicio import fsync_dir

#: Suffix of live lease files (tombstones use ``.steal-*`` and are
#: ignored by listings).
LEASE_SUFFIX = ".lease"

_tomb_counter = itertools.count()


@dataclass(frozen=True)
class LeaseRecord:
    """What a lease file says about its owner.

    ``claimed_unix`` is informational only — it is written with the
    owner's (possibly skewed) clock and is never consulted for expiry.
    """

    host: str
    pid: int
    steal_count: int
    claimed_unix: float

    def to_record(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "pid": self.pid,
            "steal_count": self.steal_count,
            "claimed_unix": self.claimed_unix,
        }


class LeaseObserver:
    """Skew-immune staleness detection for one observing worker.

    Tracks, per key, the last mtime seen and *when this observer first
    saw it* (local monotonic clock).  A lease is stale once its mtime has
    sat unchanged for longer than ``ttl`` of the observer's own time.  A
    worker that just joined must therefore watch an orphaned lease for
    one full TTL before reclaiming it — which is exactly the bound
    "orphans are reclaimed within one expiry interval".
    """

    def __init__(self, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.ttl = ttl
        self._seen: Dict[str, Tuple[int, float]] = {}

    def stale(self, key: str, mtime_ns: int) -> bool:
        """Record one look at ``key``; True once the dwell exceeds TTL."""
        now = time.monotonic()
        seen = self._seen.get(key)
        if seen is None or seen[0] != mtime_ns:
            self._seen[key] = (mtime_ns, now)
            return False
        return now - seen[1] > self.ttl

    def forget(self, key: str) -> None:
        self._seen.pop(key, None)


class LeaseDir:
    """The shared lease directory of one fleet queue.

    ``clock_skew`` simulates a host whose wall clock is wrong by that
    many seconds: claims and heartbeats stamp ``now + skew`` as explicit
    mtimes, the way a skewed NFS client would.  The chaos harness uses
    it to prove the reclaim protocol never reads absolute timestamps.

    ``fsync`` makes claims (fresh and post-reclaim) durable — file and
    directory flushed before the claim is reported won.  The fleet turns
    it on: a claim that evaporates in a power cut could otherwise let a
    rebooted host believe a rival's visible-but-volatile lease.
    Heartbeats are never fsynced (they are a liveness signal, not a
    commit point, and fire several times per second fleet-wide).
    """

    def __init__(
        self,
        root: os.PathLike,
        clock_skew: float = 0.0,
        *,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.clock_skew = clock_skew
        self.fsync = fsync

    def path(self, key: str) -> Path:
        return self.root / f"{key}{LEASE_SUFFIX}"

    def _stamp(self, path: Path) -> None:
        """Apply this host's (possibly skewed) clock to the lease mtime."""
        if self.clock_skew:
            skewed = time.time() + self.clock_skew
            try:
                os.utime(path, (skewed, skewed))
            except OSError:
                pass

    # -- primitives ----------------------------------------------------

    def claim(
        self, key: str, host: str, steal_count: int = 0
    ) -> bool:
        """Create-exclusive claim of ``key``; True iff this call won."""
        record = LeaseRecord(
            host=host,
            pid=os.getpid(),
            steal_count=steal_count,
            claimed_unix=time.time() + self.clock_skew,
        )
        path = self.path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record.to_record(), handle, sort_keys=True)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        self._stamp(path)
        if self.fsync:
            fsync_dir(self.root)
        return True

    def read(self, key: str) -> Optional[LeaseRecord]:
        """The lease record for ``key`` — None if absent *or corrupt*.

        A corrupt lease (torn write, scribbled bytes) still represents a
        claim — the file exists — so callers treat None-with-file as an
        anonymous owner rather than crashing or ignoring it.
        """
        return self._read_file(self.path(key))

    def _read_file(self, path: Path) -> Optional[LeaseRecord]:
        try:
            payload = json.loads(path.read_text("utf-8"))
            return LeaseRecord(
                host=str(payload["host"]),
                pid=int(payload["pid"]),
                steal_count=int(payload["steal_count"]),
                claimed_unix=float(payload["claimed_unix"]),
            )
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def heartbeat(self, key: str) -> bool:
        """Refresh the lease mtime; False if the lease vanished (stolen)."""
        path = self.path(key)
        try:
            if self.clock_skew:
                skewed = time.time() + self.clock_skew
                os.utime(path, (skewed, skewed))
            else:
                os.utime(path, None)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True

    def release(self, key: str) -> None:
        """Drop the claim on ``key`` (tolerates an already-stolen lease)."""
        try:
            os.unlink(self.path(key))
        except OSError:
            pass

    def mtime_ns(self, key: str) -> Optional[int]:
        try:
            return os.stat(self.path(key)).st_mtime_ns
        except OSError:
            return None

    def keys(self) -> List[str]:
        """All currently-claimed keys (sorted; tombstones excluded)."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(LEASE_SUFFIX)]
            for name in names
            if name.endswith(LEASE_SUFFIX)
        )

    # -- reclamation ---------------------------------------------------

    def reclaim(
        self, key: str, host: str, observer: LeaseObserver
    ) -> Optional[LeaseRecord]:
        """Steal ``key``'s lease if it is stale; the old record on success.

        The steal is arbitrated by ``os.rename`` to a tombstone private
        to this claimant: exactly one racing reclaimer can move the file,
        the rest get ``FileNotFoundError`` and lose.  The winner reads
        the victim's record out of the tombstone (a corrupt lease reads
        as an anonymous victim with ``steal_count=0``), removes it, and
        re-claims with ``steal_count + 1``.

        Returns the *previous* owner's record when this worker now holds
        the lease, else None (not stale yet, lost the race, or someone
        claimed between our steal and re-claim — all fine: somebody owns
        the task).
        """
        path = self.path(key)
        try:
            mtime_ns = os.stat(path).st_mtime_ns
        except OSError:
            observer.forget(key)
            return None
        if not observer.stale(key, mtime_ns):
            return None
        # Re-check right before the steal: a heartbeat that landed since
        # our last look means the owner is alive after all.
        try:
            if os.stat(path).st_mtime_ns != mtime_ns:
                observer.forget(key)
                return None
        except OSError:
            observer.forget(key)
            return None
        tomb = self.root / (
            f".{key}.steal-{os.getpid()}-{next(_tomb_counter)}"
        )
        try:
            os.rename(path, tomb)
        except OSError:
            # Another reclaimer won, or the owner released: either way
            # the lease we watched is gone.
            observer.forget(key)
            return None
        if self.fsync:
            # The steal must be durable before we act on having won it:
            # a power cut that resurrects the victim's lease would give
            # the task two owners after reboot.
            fsync_dir(self.root)
        observer.forget(key)
        old = self._read_file(tomb) or LeaseRecord(
            host="(corrupt lease)", pid=0, steal_count=0, claimed_unix=0.0
        )
        try:
            os.unlink(tomb)
        except OSError:
            pass
        if self.claim(key, host, steal_count=old.steal_count + 1):
            return old
        return None
