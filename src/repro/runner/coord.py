"""TCP coordinator: the fleet backend for clusters *without* a shared FS.

The fleet runner (:mod:`repro.runner.fleet`) coordinates through files —
which requires every host to mount the same directory.  This module is
the other half of the story: one small coordinator process owns the
queue in memory and speaks a length-prefixed JSON frame protocol
(:mod:`repro.runner.wire`) over a single TCP port, so workers need
nothing but a socket.

The coordinator holds the lease table, pending queue and quarantine
state in memory and *persists every state transition* through an
append-only journal (the same JSONL shape as
:class:`~repro.runner.checkpoint.SweepCheckpoint`, fsynced at each
append).  A SIGKILLed coordinator restarts, replays the journal, and
resumes with zero task loss: completed work stays completed, in-flight
leases are restored with a fresh TTL (their workers reconnect and keep
heartbeating or committing), pending tasks stay pending.

State directory layout:

.. code-block:: text

    state/
      coord.json            discovery file: bound host/port/pid
      coord-journal.jsonl   append-only journal (fsynced per append)
      results/              content-addressed ResultCache (fsync=True)

Journal line kinds (``SweepCheckpoint.load`` reads the first two and
ignores the rest, so the journal doubles as a checkpoint file):

``outcome`` / ``quarantine``
    Task results, exactly the fleet journal shape.
``manifest`` / ``task``
    The submitted grid — replayed so a restart knows what is pending.
``lease`` / ``lease_expired``
    Lease grants and expiries.  Grants are journaled *before* the claim
    response is sent, so a coordinator killed mid-grant restores the
    lease on restart instead of double-granting the task — that single
    ordering decision is what makes execution exactly-once under
    coordinator SIGKILL.
``coord_start`` / ``worker_hello``
    Lifecycle telemetry (restart count, host taxonomy).

Wire protocol: every request is one JSON frame with an ``op`` and a
caller-chosen ``rid``; every response echoes the ``rid``.  All ops are
idempotent — ``claim`` re-grants the task a host already holds,
``commit`` of an already-committed key replies ``duplicate`` without a
second journal line — so a client may blindly resend a request whose
response was lost to the network.  The server never trusts the stream:
frames are decoded through the resyncing :class:`~repro.runner.wire.
FrameDecoder` and a malformed request earns an error reply, not a
crash (``chaos --coord`` holds it to that).

CLI front end: ``python -m repro coord serve|submit|worker|status``.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runner.atomicio import atomic_write_json
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.executor import RunReport, TaskOutcome
from repro.runner.fleet import HostStatus
from repro.runner.policy import FaultPolicy, QuarantineRecord
from repro.runner.task import TaskSpec
from repro.runner.telemetry import _read_jsonl, merge_task_records
from repro.runner.wire import FrameDecoder, encode_frame

DISCOVERY_NAME = "coord.json"
JOURNAL_NAME = "coord-journal.jsonl"
RESULTS_DIR = "results"

#: Default lease TTL: a granted task whose worker neither heartbeats
#: nor commits for this long is returned to the pending queue.
DEFAULT_TTL = 30.0


def read_discovery(root: os.PathLike) -> Optional[Dict[str, Any]]:
    """The coordinator's advertised address, or None if never started."""
    try:
        payload = json.loads(
            (Path(root) / DISCOVERY_NAME).read_text("utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


# ----------------------------------------------------------------------
# Journal replay: one reducer shared by recovery and offline status
# ----------------------------------------------------------------------


class _JournalState:
    """The coordinator's durable state, folded from journal lines.

    The live server *writes through* this reducer (journal the entry,
    then ``apply`` it), so recovery is replaying the same function over
    the same lines — there is no second, subtly-different code path for
    "state after a crash".
    """

    def __init__(self) -> None:
        self.manifest: Optional[Dict[str, Any]] = None
        #: Pending tasks (including leased ones): key -> spec record.
        self.tasks: Dict[str, Dict[str, Any]] = {}
        #: Completed: key -> the full journal outcome entry.
        self.done: Dict[str, Dict[str, Any]] = {}
        self.quarantined: Dict[str, Dict[str, Any]] = {}
        #: In-flight grants: key -> (host, steal_count).
        self.leases: Dict[str, Tuple[str, int]] = {}
        #: Next grant's steal count per key (incremented on expiry).
        self.steals: Dict[str, int] = {}
        self.restarts = 0
        self.lease_expiries = 0
        self.hosts: Dict[str, HostStatus] = {}

    def _host(self, name: str) -> HostStatus:
        return self.hosts.setdefault(name, HostStatus(host=name))

    def apply(self, entry: Dict[str, Any]) -> None:
        kind = entry.get("kind")
        stamp = entry.get("time_unix")
        host = entry.get("host")
        if host:
            status = self._host(str(host))
            if stamp is not None:
                status.last_seen_unix = stamp
                if status.started_unix is None:
                    status.started_unix = stamp
        if kind == "manifest":
            self.manifest = {
                k: v for k, v in entry.items() if k != "kind"
            }
        elif kind == "task":
            key = entry["key"]
            if key not in self.done and key not in self.quarantined:
                self.tasks[key] = entry["spec"]
        elif kind == "outcome":
            key = entry["key"]
            self.done[key] = entry
            self.tasks.pop(key, None)
            self.leases.pop(key, None)
            if host:
                status = self._host(str(host))
                status.outcomes += 1
                if entry.get("cached"):
                    status.cached += 1
                else:
                    status.fresh += 1
        elif kind == "quarantine":
            key = entry["key"]
            self.quarantined[key] = entry["record"]
            self.tasks.pop(key, None)
            self.leases.pop(key, None)
            if host:
                self._host(str(host)).quarantines += 1
        elif kind == "lease":
            self.leases[entry["key"]] = (
                str(entry.get("host", "?")),
                int(entry.get("steal_count", 0)),
            )
        elif kind == "lease_expired":
            key = entry["key"]
            self.leases.pop(key, None)
            self.steals[key] = int(entry.get("steal_count", 0))
            self.lease_expiries += 1
            if host:
                self._host(str(host)).lease_reclaims += 1
        elif kind == "lease_released":
            self.leases.pop(entry["key"], None)
        elif kind == "coord_start":
            self.restarts += 1

    @property
    def drained(self) -> bool:
        return self.manifest is not None and not self.tasks

    def status_payload(self, root: os.PathLike) -> Dict[str, Any]:
        manifest = self.manifest or {}
        return {
            "state_dir": str(root),
            "exp_id": str(manifest.get("exp_id", "?")),
            "version": str(manifest.get("version", "?")),
            "total": int(manifest.get("total", 0)),
            "pending": len(self.tasks),
            "in_flight": len(self.leases),
            "completed": len(self.done),
            "quarantined": len(self.quarantined),
            "done": self.drained,
            "restarts": self.restarts,
            "lease_expiries": self.lease_expiries,
            "leases": {
                key: owner for key, (owner, _) in self.leases.items()
            },
            "hosts": [
                self.hosts[name].to_record()
                for name in sorted(self.hosts)
            ],
            "quarantine_records": [
                self.quarantined[key] for key in sorted(self.quarantined)
            ],
        }


def _replay_journal(path: os.PathLike) -> _JournalState:
    state = _JournalState()
    journal = Path(path)
    if journal.exists():
        for entry in _read_jsonl(journal, strict=False):
            state.apply(entry)
    return state


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------


@dataclass
class _Lease:
    host: str
    steal_count: int
    deadline: float  # this process's monotonic clock


@dataclass
class _Conn:
    sock: socket.socket
    peer: str
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    out: bytearray = field(default_factory=bytearray)
    closing: bool = False


class CoordServer:
    """The single-process TCP coordinator (see the module docstring).

    Single-threaded ``selectors`` event loop: requests are tiny and the
    work they trigger (a journal append, a cache write) is bounded, so
    one loop serves every worker without locks.  Lease expiry runs on
    the loop's idle tick.
    """

    def __init__(
        self,
        root: os.PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ttl: float = DEFAULT_TTL,
        policy: Optional[FaultPolicy] = None,
        tick: float = 0.2,
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.host = host
        self.port = port
        self.ttl = ttl
        self.policy = policy if policy is not None else FaultPolicy()
        self.tick = tick
        self.state = _JournalState()
        self._deadlines: Dict[str, _Lease] = {}
        self.journal: Optional[SweepCheckpoint] = None
        self.cache: Optional[ResultCache] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._stopping = False
        self.recovered_leases = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    def start(self) -> Tuple[str, int]:
        """Recover state, bind the port, publish the discovery file."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.state = _replay_journal(self.journal_path)
        now = time.monotonic()
        for key, (host, steals) in self.state.leases.items():
            # A restored lease gets one fresh TTL: its worker is either
            # alive (it reconnects and heartbeats or commits) or dead
            # (the lease expires once, exactly as it would have).
            self._deadlines[key] = _Lease(host, steals, now + self.ttl)
        self.recovered_leases = len(self._deadlines)
        self.journal = SweepCheckpoint(self.journal_path, fsync=True)
        self.cache = ResultCache(self.root / RESULTS_DIR, fsync=True)
        self._record(
            {"kind": "coord_start", "pid": os.getpid(),
             "time_unix": time.time()}
        )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.setblocking(False)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, None)
        # fsync=True: workers on other machines find the coordinator
        # through a copy of this file; it must not evaporate on reboot.
        atomic_write_json(
            self.root / DISCOVERY_NAME,
            {
                "host": self.host,
                "port": self.port,
                "pid": os.getpid(),
                "started_unix": time.time(),
            },
            fsync=True,
        )
        return self.host, self.port

    def close(self) -> None:
        if self._selector is not None:
            for key in list(self._selector.get_map().values()):
                if key.data is not None:
                    self._close_conn(key.data)
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # -- journal write-through -----------------------------------------

    def _record(self, entry: Dict[str, Any]) -> None:
        """Journal ``entry`` (fsynced), then fold it into live state."""
        self.journal._append(entry)
        self.state.apply(entry)

    # -- the event loop ------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until a ``stop`` op arrives (replies are flushed first)."""
        if self._selector is None:
            self.start()
        grace: Optional[float] = None
        while True:
            if self._stopping:
                if grace is None:
                    grace = time.monotonic() + 1.0
                flushed = all(
                    not key.data.out
                    for key in self._selector.get_map().values()
                    if key.data is not None
                )
                if flushed or time.monotonic() > grace:
                    break
            for key, events in self._selector.select(timeout=self.tick):
                if key.data is None:
                    self._accept()
                else:
                    self._service(key.data, events)
            self._expire_leases()
        self.close()

    def _accept(self) -> None:
        try:
            sock, addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        conn = _Conn(sock=sock, peer=f"{addr[0]}:{addr[1]}")
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _close_conn(self, conn: _Conn) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _want(self, conn: _Conn) -> None:
        events = selectors.EVENT_READ
        if conn.out:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError):
            pass

    def _service(self, conn: _Conn, events: int) -> None:
        if events & selectors.EVENT_READ:
            try:
                data = conn.sock.recv(65536)
            except BlockingIOError:
                data = None
            except OSError:
                self._close_conn(conn)
                return
            if data == b"":
                self._close_conn(conn)
                return
            if data:
                for frame in conn.decoder.feed(data):
                    response = self._dispatch(conn, frame)
                    if response is not None:
                        conn.out.extend(encode_frame(response))
        if events & selectors.EVENT_WRITE and conn.out:
            try:
                sent = conn.sock.send(bytes(conn.out))
                del conn.out[:sent]
            except BlockingIOError:
                pass
            except OSError:
                self._close_conn(conn)
                return
        if conn.closing and not conn.out:
            self._close_conn(conn)
            return
        self._want(conn)

    # -- lease expiry --------------------------------------------------

    def _expire_leases(self) -> None:
        now = time.monotonic()
        for key in [
            k for k, l in self._deadlines.items() if now >= l.deadline
        ]:
            lease = self._deadlines.pop(key)
            steals = lease.steal_count + 1
            self._record(
                {
                    "kind": "lease_expired",
                    "key": key,
                    "host": lease.host,
                    "steal_count": steals,
                    "time_unix": time.time(),
                }
            )
            if (
                steals > self.policy.max_retries
                and key in self.state.tasks
            ):
                # Same budget the fleet applies to lease steals: a task
                # whose workers keep vanishing is poison, not unlucky.
                spec = self.state.tasks[key]
                try:
                    label = TaskSpec.from_record(spec).label()
                except Exception:
                    label = key[:12]
                record = QuarantineRecord(
                    spec=spec,
                    key=key,
                    label=label,
                    category="crash",
                    attempts=steals,
                    detail=(
                        f"lease expired {steals} times (last holder "
                        f"{lease.host}); workers keep dying on this task"
                    ),
                ).to_record()
                self._record(
                    {
                        "kind": "quarantine",
                        "key": key,
                        "record": record,
                        "host": lease.host,
                        "time_unix": time.time(),
                    }
                )

    # -- request dispatch ----------------------------------------------

    def _dispatch(
        self, conn: _Conn, msg: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        rid = msg.get("rid")
        op = msg.get("op")
        handler = getattr(self, f"_op_{op}", None) if op else None
        if handler is None:
            return {"ok": False, "rid": rid, "error": f"unknown op {op!r}"}
        try:
            response = handler(msg)
        except Exception as exc:  # a bad request must never kill the loop
            return {
                "ok": False,
                "rid": rid,
                "error": f"{type(exc).__name__}: {exc}",
            }
        response.setdefault("ok", True)
        response["rid"] = rid
        if response.pop("_close", False):
            conn.closing = True
        return response

    def _op_ping(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return {"pid": os.getpid()}

    def _op_hello(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        host = str(msg.get("host", "?"))
        self._record(
            {"kind": "worker_hello", "host": host, "time_unix": time.time()}
        )
        manifest = self.state.manifest or {}
        return {
            "submitted": self.state.manifest is not None,
            "exp_id": manifest.get("exp_id"),
            "version": manifest.get("version", ""),
            "total": manifest.get("total", 0),
        }

    def _op_submit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        tasks = msg.get("tasks") or []
        if not tasks:
            raise ConfigurationError("cannot submit an empty task grid")
        self._record(
            {
                "kind": "manifest",
                "exp_id": msg.get("exp_id"),
                "version": msg.get("version", ""),
                "total": len(tasks),
                "keys": [t["key"] for t in tasks],
                "options": msg.get("options", {}),
                "time_unix": time.time(),
            }
        )
        fresh = 0
        for task in tasks:
            key = task["key"]
            if (
                key in self.state.tasks
                or key in self.state.done
                or key in self.state.quarantined
            ):
                continue  # idempotent resubmit
            self._record({"kind": "task", "key": key, "spec": task["spec"]})
            fresh += 1
        return {"fresh": fresh, "total": len(tasks)}

    def _pending_order(self) -> List[str]:
        manifest = self.state.manifest or {}
        ordered = [
            str(key)
            for key in manifest.get("keys", [])
            if key in self.state.tasks
        ]
        if len(ordered) < len(self.state.tasks):
            known = set(ordered)
            ordered += sorted(k for k in self.state.tasks if k not in known)
        return ordered

    def _grant(self, key: str, host: str, steals: int) -> Dict[str, Any]:
        return {
            "task": {"key": key, "spec": self.state.tasks[key]},
            "steal_count": steals,
        }

    def _op_claim(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        host = str(msg.get("host", "?"))
        # Idempotent: a host whose claim response was lost resends and
        # gets the very task it already holds, not a second one.
        for key, lease in self._deadlines.items():
            if lease.host == host and key in self.state.tasks:
                lease.deadline = time.monotonic() + self.ttl
                return self._grant(key, host, lease.steal_count)
        replayed = 0
        for key in self._pending_order():
            if key in self._deadlines:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                # Server-side replay: a previous run (or a stranded
                # worker's flushed outbox) already committed this key.
                self._record(
                    {
                        "kind": "outcome",
                        "key": key,
                        "record": cached,
                        "host": host,
                        "cached": True,
                        "source": "cache",
                        "time_unix": time.time(),
                    }
                )
                replayed += 1
                continue
            steals = self.state.steals.get(key, 0)
            # Journal the grant BEFORE answering: a coordinator killed
            # between the two restores this lease on restart instead of
            # granting the task twice (the exactly-once linchpin).
            self._record(
                {
                    "kind": "lease",
                    "key": key,
                    "host": host,
                    "steal_count": steals,
                    "time_unix": time.time(),
                }
            )
            self._deadlines[key] = _Lease(
                host, steals, time.monotonic() + self.ttl
            )
            response = self._grant(key, host, steals)
            response["replayed"] = replayed
            return response
        return {
            "task": None,
            "replayed": replayed,
            "pending": len(self.state.tasks),
            "in_flight": len(self._deadlines),
            "drained": self.state.drained,
        }

    def _op_heartbeat(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg.get("key", ""))
        host = str(msg.get("host", "?"))
        lease = self._deadlines.get(key)
        if lease is None or lease.host != host:
            return {"held": False}
        lease.deadline = time.monotonic() + self.ttl
        return {"held": True}

    def _op_commit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg.get("key", ""))
        host = str(msg.get("host", "?"))
        if key in self.state.done or key in self.state.quarantined:
            # A resent commit (lost response), an outbox flush racing a
            # lease expiry's second execution — either way the work is
            # already journaled exactly once; say yes and journal nothing.
            return {"duplicate": True}
        record = msg.get("record")
        if not isinstance(record, dict):
            raise ConfigurationError("commit needs a record object")
        # Same order as the fleet worker: cache first, then journal —
        # a crash between the two replays the cache hit, never re-runs.
        self.cache.put(key, record)
        self._record(
            {
                "kind": "outcome",
                "key": key,
                "record": record,
                "host": host,
                "cached": bool(msg.get("cached", False)),
                "source": str(msg.get("source", "fresh")),
                "time_unix": time.time(),
            }
        )
        self._deadlines.pop(key, None)
        return {}

    def _op_quarantine(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg.get("key", ""))
        host = str(msg.get("host", "?"))
        if key in self.state.done or key in self.state.quarantined:
            return {"duplicate": True}
        record = msg.get("record")
        if not isinstance(record, dict):
            raise ConfigurationError("quarantine needs a record object")
        self._record(
            {
                "kind": "quarantine",
                "key": key,
                "record": record,
                "host": host,
                "time_unix": time.time(),
            }
        )
        self._deadlines.pop(key, None)
        return {}

    def _op_release(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg.get("key", ""))
        host = str(msg.get("host", "?"))
        lease = self._deadlines.get(key)
        if lease is None or lease.host != host:
            return {"released": False}
        del self._deadlines[key]
        self._record(
            {
                "kind": "lease_released",
                "key": key,
                "host": host,
                "steal_count": lease.steal_count,
                "time_unix": time.time(),
            }
        )
        return {"released": True}

    def _op_status(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        payload = self.state.status_payload(self.root)
        payload["reachable"] = True
        payload["recovered_leases"] = self.recovered_leases
        return payload

    def _op_stop(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self._stopping = True
        return {"stopping": True, "_close": True}


# ----------------------------------------------------------------------
# Status and report (offline-capable)
# ----------------------------------------------------------------------


def coord_status(
    root: os.PathLike, *, timeout: float = 2.0
) -> Dict[str, Any]:
    """The coordinator's status: live over TCP, else from the journal.

    Tries the advertised address first (the live server also knows the
    in-flight lease deadlines); when nothing answers — coordinator dead
    or not yet started — the same payload is rebuilt offline by
    replaying the journal, with ``reachable: false``.
    """
    from repro.runner.client import CoordClient, CoordinatorUnreachable

    info = read_discovery(root)
    if info is not None:
        client = CoordClient(
            root, timeout=timeout, offline_budget=timeout
        )
        try:
            payload = client.request({"op": "status"})
            payload.pop("rid", None)
            payload.pop("ok", None)
            return payload
        except (CoordinatorUnreachable, OSError):
            pass
        finally:
            client.close()
    payload = _replay_journal(Path(root) / JOURNAL_NAME).status_payload(root)
    payload["reachable"] = False
    return payload


def format_coord_status(payload: Dict[str, Any]) -> str:
    """Render a status payload the way ``fleet status`` renders its view."""
    total = int(payload.get("total", 0))
    completed = int(payload.get("completed", 0))
    quarantined = int(payload.get("quarantined", 0))
    pending = int(payload.get("pending", 0))
    finished = completed + quarantined
    frac = finished / total if total else 1.0
    bar = "#" * int(round(30 * frac))
    reach = "live" if payload.get("reachable") else "offline (journal)"
    lines = [
        f"coord {payload.get('exp_id', '?')} @ "
        f"{payload.get('state_dir', '?')} [{reach}]",
        f"[{bar:<30}] {finished}/{total} "
        f"({completed} completed, {quarantined} quarantined, "
        f"{pending} pending, {payload.get('in_flight', 0)} in flight)",
    ]
    live_rate = 0.0
    for record in payload.get("hosts", []):
        host = HostStatus(
            host=str(record.get("host", "?")),
            outcomes=int(record.get("outcomes", 0)),
            fresh=int(record.get("fresh", 0)),
            cached=int(record.get("cached", 0)),
            quarantines=int(record.get("quarantines", 0)),
            lease_reclaims=int(record.get("lease_reclaims", 0)),
            started_unix=record.get("started_unix"),
            last_seen_unix=record.get("last_seen_unix"),
            finished=bool(record.get("finished")),
        )
        rate = host.throughput()
        if rate is not None:
            live_rate += rate
        rate_str = f"{rate:.2f}/s" if rate is not None else "--/s"
        lines.append(
            f"  {host.host:<24} {host.outcomes:>4} outcomes "
            f"({host.fresh} fresh, {host.cached} cached) @ {rate_str}, "
            f"{host.lease_reclaims} expiries, "
            f"{host.quarantines} quarantines"
        )
    if pending and live_rate > 0:
        lines.append(
            f"eta: ~{pending / live_rate:.0f}s for {pending} pending at "
            f"{live_rate:.2f} tasks/s"
        )
    lines.append(
        f"failure taxonomy: {quarantined} quarantined, "
        f"{payload.get('lease_expiries', 0)} lease expiries, "
        f"{payload.get('restarts', 0)} coordinator starts"
    )
    for record in payload.get("quarantine_records", []):
        lines.append(
            f"  quarantined {record.get('label')} "
            f"[{record.get('category')}] {record.get('detail')}"
        )
    return "\n".join(lines)


def coord_report(root: os.PathLike) -> RunReport:
    """The merged :class:`RunReport` of a coordinator run, in grid order.

    Built offline from the journal, exactly as :func:`~repro.runner.
    fleet.fleet_report` builds the fleet's — so chaos can compare the
    two backends' outputs bit for bit against the same control.
    """
    state = _replay_journal(Path(root) / JOURNAL_NAME)
    manifest = state.manifest or {}
    merged, duplicates = merge_task_records(list(state.done.values()))
    by_key = {entry["key"]: entry for entry in merged if "key" in entry}
    ordered_keys = [
        str(key) for key in manifest.get("keys", sorted(by_key))
    ]
    outcomes: List[TaskOutcome] = []
    executed = 0
    cache_hits = 0
    for key in ordered_keys:
        entry = by_key.get(key)
        if entry is None:
            continue
        record = entry.get("record", {})
        cached = bool(entry.get("cached"))
        if cached:
            cache_hits += 1
        else:
            executed += 1
        outcomes.append(
            TaskOutcome(
                spec=TaskSpec.from_record(record["spec"]),
                metrics=record.get("metrics", {}),
                wall_time=float(record.get("wall_time", 0.0)),
                cached=cached,
                key=key,
                source=str(entry.get("source", "fresh")),
            )
        )
    stamps = [
        h.started_unix
        for h in state.hosts.values()
        if h.started_unix is not None
    ]
    ends = [
        h.last_seen_unix
        for h in state.hosts.values()
        if h.last_seen_unix is not None
    ]
    wall = max(0.0, max(ends) - min(stamps)) if stamps and ends else 0.0
    return RunReport(
        exp_id=str(manifest.get("exp_id", "?")),
        version=str(manifest.get("version", "?")),
        workers=len(state.hosts),
        outcomes=outcomes,
        executed=executed,
        cache_hits=cache_hits,
        wall_time=wall,
        quarantined=[
            QuarantineRecord.from_record(record)
            for record in state.quarantined.values()
        ],
        duplicates_merged=duplicates,
        lease_reclaims=state.lease_expiries,
        hosts_seen=len(state.hosts),
        host_failures=state.lease_expiries,
    )


def submit_tasks(
    client, tasks: List[TaskSpec], *, version: str,
    options: Optional[Dict[str, Any]] = None,
) -> int:
    """Submit a grid through an open :class:`~repro.runner.client.
    CoordClient`; returns how many tasks were new to the coordinator."""
    if not tasks:
        raise ConfigurationError("cannot submit an empty task grid")
    exp_ids = {spec.exp_id for spec in tasks}
    if len(exp_ids) != 1:
        raise ConfigurationError(
            f"one coordinator holds one experiment, got {sorted(exp_ids)}"
        )
    response = client.request(
        {
            "op": "submit",
            "exp_id": tasks[0].exp_id,
            "version": version,
            "options": dict(options or {}),
            "tasks": [
                {"key": spec.key(version), "spec": spec.to_record()}
                for spec in tasks
            ],
        }
    )
    if not response.get("ok"):
        raise ConfigurationError(
            f"coordinator rejected the submit: {response.get('error')}"
        )
    return int(response.get("fresh", 0))
