"""Worker-side transport for the TCP coordinator.

:class:`CoordClient` is the request/response layer: it frames one JSON
request (:mod:`repro.runner.wire`), waits for the response that echoes
the request's ``rid``, and on any network failure reconnects with the
same exponential-backoff-plus-deterministic-jitter schedule the
executor uses for task retries (:meth:`~repro.runner.policy.FaultPolicy.
backoff_delay`).  Because every coordinator op is idempotent, a request
whose response was lost is simply *resent* — under frame duplication or
reordering the client discards any response whose ``rid`` it is not
waiting for.  When the coordinator stays unreachable past
``offline_budget`` seconds the client stops retrying and raises
:class:`CoordinatorUnreachable` — the worker's cue to degrade, not a
crash.

:class:`CoordWorker` mirrors the :class:`~repro.runner.fleet.
FleetWorker` claim→execute→commit→release loop over the wire, with two
twists the shared-filesystem worker never needed:

* **Leases live on the coordinator.**  The worker just heartbeats its
  active key; TTL accounting, expiry and the steal-count retry budget
  are server-side, so a clock-skewed worker cannot corrupt them.
* **Commits go through a local outbox.**  Each computed outcome is
  spooled (fsynced) to a per-worker JSONL file *before* the commit is
  sent and acknowledged after.  If the coordinator stays unreachable
  past the offline budget, the worker counts the outcome as *stranded*
  and exits cleanly instead of spinning — the work is not lost: the
  next worker run against the same outbox directory flushes every
  unacknowledged entry first (commit is idempotent, so double-flushing
  is free).  That is the coordinator backend's graceful-degradation
  story: quarantine-and-continue at the worker level.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runner.coord import read_discovery
from repro.runner.fleet import WorkerReport, default_host_name
from repro.runner.policy import FaultPolicy, QuarantineRecord
from repro.runner.task import TaskSpec
from repro.runner.telemetry import _read_jsonl
from repro.runner.wire import FrameDecoder, encode_frame


class CoordinatorUnreachable(RuntimeError):
    """The coordinator did not answer within the offline budget."""


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` override into an address tuple."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"address must be host:port, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"address must be host:port, got {text!r}"
        ) from None


class CoordClient:
    """One worker's connection to the coordinator (thread-safe).

    ``root`` names the coordinator's state directory; the address is
    re-read from its discovery file on every reconnect, so a restarted
    coordinator that came up on a different port is found without
    restarting the workers.  ``address`` pins an explicit ``(host,
    port)`` instead — for workers with no view of the state directory
    at all, and for the chaos harness's fault proxy.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        *,
        address: Optional[Tuple[str, int]] = None,
        policy: Optional[FaultPolicy] = None,
        timeout: float = 5.0,
        offline_budget: float = 30.0,
    ) -> None:
        if root is None and address is None:
            raise ConfigurationError(
                "CoordClient needs a state dir or an explicit address"
            )
        self.root = Path(root) if root is not None else None
        self.address = address
        self.policy = policy if policy is not None else FaultPolicy()
        self.timeout = timeout
        self.offline_budget = offline_budget
        self._sock: Optional[socket.socket] = None
        self._decoder: Optional[FrameDecoder] = None
        self._lock = threading.Lock()
        self._rid_prefix = f"{os.getpid():x}-{os.urandom(3).hex()}"
        self._rid_counter = itertools.count(1)

    # -- connection management -----------------------------------------

    def _resolve_address(self) -> Tuple[str, int]:
        if self.address is not None:
            return self.address
        info = read_discovery(self.root)
        if info is None:
            raise ConnectionError(
                f"no coordinator discovery file under {self.root} "
                "(is 'coord serve' running?)"
            )
        return str(info["host"]), int(info["port"])

    def _connect(self) -> None:
        host, port = self._resolve_address()
        sock = socket.create_connection((host, port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._decoder = FrameDecoder()

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._decoder = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    # -- request/response ----------------------------------------------

    def request(
        self,
        payload: Dict[str, Any],
        *,
        timeout: Optional[float] = None,
        offline_budget: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send one op; return its response (resending as needed).

        Any transport failure — refused connection, reset, response
        timeout — closes the socket, backs off, reconnects and resends
        the *same* request (same ``rid``; every op is idempotent) until
        the response arrives or ``offline_budget`` seconds of trying
        are exhausted, which raises :class:`CoordinatorUnreachable`.
        """
        budget = (
            offline_budget
            if offline_budget is not None
            else self.offline_budget
        )
        wait = timeout if timeout is not None else self.timeout
        rid = f"{self._rid_prefix}-{next(self._rid_counter)}"
        frame = encode_frame(dict(payload, rid=rid))
        deadline = time.monotonic() + budget
        attempt = 0
        with self._lock:
            while True:
                try:
                    if self._sock is None:
                        self._connect()
                    self._sock.sendall(frame)
                    return self._await(rid, wait)
                except OSError as exc:
                    self._drop()
                    attempt += 1
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise CoordinatorUnreachable(
                            f"coordinator unreachable after {attempt} "
                            f"attempt(s) over {budget:g}s: "
                            f"{type(exc).__name__}: {exc}"
                        ) from None
                    time.sleep(
                        min(
                            self.policy.backoff_delay("coord", attempt),
                            max(0.0, remaining),
                        )
                    )

    def _await(self, rid: str, timeout: float) -> Dict[str, Any]:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout(f"no response for rid {rid}")
            self._sock.settimeout(remaining)
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("coordinator closed the connection")
            for frame in self._decoder.feed(data):
                if frame.get("rid") == rid:
                    return frame
                # A duplicated or delayed response to an earlier rid:
                # not ours, not an error — drop it and keep waiting.


# ----------------------------------------------------------------------
# The outbox: local spool of not-yet-acknowledged commits
# ----------------------------------------------------------------------


class Outbox:
    """A per-worker JSONL spool of commits pending acknowledgement.

    ``commit`` entries are fsynced before the network send — they are
    the worker's local commit point, the one record that must survive
    its own crash.  ``ack`` entries are flushed but not fsynced: losing
    one merely re-flushes an idempotent commit on the next run.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    def _append(self, entry: Dict[str, Any], *, durable: bool) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        if durable:
            os.fsync(self._handle.fileno())

    def spool(self, key: str, record: Dict[str, Any]) -> None:
        self._append(
            {"kind": "commit", "key": key, "record": record,
             "time_unix": time.time()},
            durable=True,
        )

    def ack(self, key: str) -> None:
        self._append({"kind": "ack", "key": key}, durable=False)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def pending_in(path: Path) -> Dict[str, Dict[str, Any]]:
        """Unacknowledged commit records in one outbox file."""
        commits: Dict[str, Dict[str, Any]] = {}
        acked = set()
        for entry in _read_jsonl(path, strict=False):
            kind = entry.get("kind")
            if kind == "commit" and "key" in entry:
                commits[entry["key"]] = entry.get("record", {})
            elif kind == "ack" and "key" in entry:
                acked.add(entry["key"])
        return {k: v for k, v in commits.items() if k not in acked}


# ----------------------------------------------------------------------
# The worker
# ----------------------------------------------------------------------


class CoordWorker:
    """One worker draining a coordinator over TCP (no shared FS needed).

    Mirrors :class:`~repro.runner.fleet.FleetWorker`: same retry
    policy, same quarantine categories, same record shape — so
    ``coord_report`` and ``fleet_report`` are interchangeable.  The
    worker only needs the coordinator's address (via ``root``'s
    discovery file or an explicit ``address``) and a *local* directory
    for its outbox spool.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        host: Optional[str] = None,
        *,
        address: Optional[Tuple[str, int]] = None,
        policy: Optional[FaultPolicy] = None,
        heartbeat_interval: float = 2.0,
        poll_interval: float = 0.5,
        throttle: float = 0.0,
        request_timeout: float = 5.0,
        offline_budget: float = 30.0,
        outbox_dir: Optional[os.PathLike] = None,
        run_fn=None,
        max_tasks: Optional[int] = None,
        progress: bool = False,
    ) -> None:
        self.host = host if host is not None else default_host_name()
        self.policy = policy if policy is not None else FaultPolicy()
        self.client = CoordClient(
            root,
            address=address,
            policy=self.policy,
            timeout=request_timeout,
            offline_budget=offline_budget,
        )
        if outbox_dir is None:
            if root is None:
                raise ConfigurationError(
                    "an outbox directory is required when the worker "
                    "has no view of the coordinator state dir"
                )
            outbox_dir = Path(root) / "outbox"
        self.outbox_dir = Path(outbox_dir)
        self.outbox = Outbox(self.outbox_dir / f"{self.host}.jsonl")
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.throttle = throttle
        self.run_fn = run_fn
        self.max_tasks = max_tasks
        self.progress = progress
        self.report = WorkerReport(host=self.host)
        self._active_key: Optional[str] = None
        self._stop_heartbeat = threading.Event()

    # -- heartbeat thread ----------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(self.heartbeat_interval):
            key = self._active_key
            if key is None:
                continue
            try:
                # Best-effort with a short budget: a missed heartbeat
                # is survivable (the TTL is several intervals wide) and
                # must not pin the shared client in a long retry loop.
                self.client.request(
                    {"op": "heartbeat", "host": self.host, "key": key},
                    offline_budget=self.heartbeat_interval,
                )
            except (CoordinatorUnreachable, OSError):
                pass

    # -- task execution (same contract as FleetWorker) ------------------

    def _call(self, spec: TaskSpec) -> Mapping[str, Any]:
        if self.run_fn is not None:
            return self.run_fn(spec)
        from repro.runner.registry import (
            run_registered_batch,
            run_registered_task,
        )

        if spec.engine != "scalar":
            return run_registered_batch(spec.exp_id, [spec])[0]
        return run_registered_task(spec.exp_id, spec)

    def _execute(
        self, spec: TaskSpec, key: str
    ) -> Optional[Tuple[Dict[str, Any], float]]:
        attempts = 0
        while True:
            started = time.perf_counter()
            try:
                metrics = dict(self._call(spec))
            except Exception as exc:
                attempts += 1
                if attempts > self.policy.max_retries:
                    self._quarantine(
                        spec,
                        key,
                        category="error",
                        attempts=attempts,
                        detail=(
                            f"task {spec.label()} failed on {self.host}: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
                    return None
                self.report.retries += 1
                time.sleep(self.policy.backoff_delay(key, attempts))
                continue
            wall = time.perf_counter() - started
            if (
                self.policy.timeout is not None
                and wall > self.policy.timeout
            ):
                self.report.overruns += 1
            return metrics, wall

    def _quarantine(
        self,
        spec: TaskSpec,
        key: str,
        *,
        category: str,
        attempts: int,
        detail: str,
    ) -> None:
        record = QuarantineRecord(
            spec=spec.to_record(),
            key=key,
            label=spec.label(),
            category=category,
            attempts=attempts,
            detail=detail,
        ).to_record()
        self.client.request(
            {
                "op": "quarantine",
                "host": self.host,
                "key": key,
                "record": record,
            }
        )
        self.report.quarantined += 1

    # -- commit through the outbox -------------------------------------

    def _commit(self, key: str, record: Dict[str, Any]) -> None:
        # Spool first: once these bytes are on local disk the outcome
        # survives both our crash and the coordinator's absence.
        self.outbox.spool(key, record)
        try:
            self.client.request(
                {
                    "op": "commit",
                    "host": self.host,
                    "key": key,
                    "record": record,
                }
            )
        except CoordinatorUnreachable:
            self.report.stranded += 1
            raise
        self.outbox.ack(key)

    def _flush_outboxes(self) -> int:
        """Commit every unacknowledged entry in the outbox directory.

        Scans *all* outbox files, not just this worker's: host names
        carry a per-process nonce, so a crashed predecessor's spool has
        a different filename but the same obligation.  Commits are
        idempotent, so flushing a file twice (or racing another worker
        over it) is harmless.
        """
        flushed = 0
        if not self.outbox_dir.is_dir():
            return 0
        for path in sorted(self.outbox_dir.glob("*.jsonl")):
            pending = Outbox.pending_in(path)
            if not pending:
                continue
            spool = Outbox(path)
            try:
                for key in sorted(pending):
                    self.client.request(
                        {
                            "op": "commit",
                            "host": self.host,
                            "key": key,
                            "record": pending[key],
                        }
                    )
                    spool.ack(key)
                    flushed += 1
            finally:
                spool.close()
        return flushed

    # -- the drain loop ------------------------------------------------

    def run(self) -> WorkerReport:
        """Drain the coordinator; return what this worker did.

        Exits cleanly in three ways: the queue drained, ``max_tasks``
        was reached, or the coordinator stayed unreachable past the
        offline budget — in which case any computed-but-uncommitted
        outcome is already spooled and ``report.stranded`` says so.
        """
        started = time.perf_counter()
        self._stop_heartbeat.clear()
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        done = 0
        try:
            self._flush_outboxes()
            version = ""
            while True:
                hello = self.client.request(
                    {"op": "hello", "host": self.host}
                )
                if hello.get("submitted"):
                    version = str(hello.get("version", ""))
                    break
                time.sleep(self.poll_interval)
            beat.start()
            while True:
                if self.max_tasks is not None and done >= self.max_tasks:
                    break
                response = self.client.request(
                    {"op": "claim", "host": self.host}
                )
                self.report.cache_hits += int(
                    response.get("replayed", 0) or 0
                )
                task = response.get("task")
                if task is None:
                    if response.get("drained"):
                        break
                    time.sleep(self.poll_interval)
                    continue
                key = str(task["key"])
                spec = TaskSpec.from_record(task["spec"])
                self._active_key = key
                try:
                    if self.throttle:
                        time.sleep(self.throttle)
                    result = self._execute(spec, key)
                    if result is None:
                        done += 1
                        continue  # quarantined (op already sent)
                    metrics, wall = result
                    record = {
                        "spec": spec.to_record(),
                        "metrics": metrics,
                        "wall_time": wall,
                        "version": version,
                    }
                    self.report.executed += 1
                    self._commit(key, record)
                    done += 1
                    if self.progress:
                        print(
                            f"[{self.host}] {spec.label()} done in "
                            f"{wall:.2f}s",
                            flush=True,
                        )
                finally:
                    self._active_key = None
        except CoordinatorUnreachable:
            # Graceful degradation: anything computed is spooled in the
            # outbox; exit cleanly and let the next run flush it.
            pass
        finally:
            self._stop_heartbeat.set()
            if beat.is_alive():
                beat.join(timeout=2.0)
            self.client.close()
            self.outbox.close()
        self.report.wall_time = time.perf_counter() - started
        return self.report
