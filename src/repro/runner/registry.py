"""The experiment-definition registry behind ``python -m repro run``.

A *runnable experiment* pairs a grid builder with a pure task function:

* ``make_tasks(seed, replications, **options)`` expands the experiment
  into its :class:`~repro.runner.task.TaskSpec` grid;
* ``run_task(spec)`` executes one task and returns its metrics dict;
* ``run_batch(specs)``, when present, executes a whole list of
  same-case tasks in one call — the vector engine's entry point, which
  lets ``--engine vector`` evaluate every seed of a grid cell in a
  single NumPy lockstep batch.

Both are plain top-level functions, so a task can be shipped to a worker
process as ``(exp_id, spec)`` and resolved there by name — no closures
cross the process boundary.  The built-in definitions live in
:mod:`repro.runner.defs` and are loaded on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runner.task import TaskSpec

TaskFn = Callable[[TaskSpec], Mapping[str, Any]]
BatchFn = Callable[[List[TaskSpec]], List[Mapping[str, Any]]]
GridFn = Callable[..., List[TaskSpec]]


@dataclass(frozen=True)
class ExperimentDef:
    """One runnable experiment: its grid builder and task function."""

    exp_id: str
    title: str
    make_tasks: GridFn
    run_task: TaskFn
    #: Metric names, in display order, for summary tables.
    summary_metrics: Tuple[str, ...] = field(default_factory=tuple)
    #: Optional vector-engine entry point: evaluates a list of same-case
    #: tasks in one batched call, returning metrics in task order.
    run_batch: Optional[BatchFn] = None
    #: Per-task wall-clock budget in seconds, used as the executor's
    #: watchdog timeout when the caller does not pass one (None = no
    #: watchdog).  Las-Vegas protocols have random running time, so
    #: definitions should budget for the tail, not the mean.
    default_timeout: Optional[float] = None

    @property
    def supports_vector(self) -> bool:
        return self.run_batch is not None

    def tasks(
        self, seed: int, replications: int, **options: Any
    ) -> List[TaskSpec]:
        return self.make_tasks(seed, replications, **options)


_REGISTRY: Dict[str, ExperimentDef] = {}
_BOOTSTRAPPED = False


def register(defn: ExperimentDef) -> ExperimentDef:
    """Add ``defn`` to the registry (last registration wins)."""
    _REGISTRY[defn.exp_id] = defn
    return defn


def _bootstrap() -> None:
    global _BOOTSTRAPPED
    if not _BOOTSTRAPPED:
        _BOOTSTRAPPED = True
        import repro.runner.defs  # noqa: F401  (registers on import)


def get_experiment(exp_id: str) -> ExperimentDef:
    """Look up a runnable experiment by id.

    Ids with a ``scenario:`` prefix resolve to the synthetic definition
    the scenario compiler emits, so worker processes (and the fleet
    backend) can execute scenario tasks by name exactly like registered
    experiments — the id itself carries enough identity (the grid hash)
    to dispatch.
    """
    _bootstrap()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        if exp_id.startswith("scenario:"):
            from repro.scenario.runtime import scenario_experiment

            return scenario_experiment(exp_id)
        raise ConfigurationError(
            f"no runnable experiment {exp_id!r}; known: {registered_ids()}"
        ) from None


def registered_ids() -> List[str]:
    _bootstrap()
    return sorted(_REGISTRY)


def run_registered_task(exp_id: str, spec: TaskSpec) -> Mapping[str, Any]:
    """Execute one task of a registered experiment (worker entry point)."""
    return get_experiment(exp_id).run_task(spec)


def run_registered_batch(
    exp_id: str, specs: List[TaskSpec]
) -> List[Mapping[str, Any]]:
    """Execute a batch of tasks of one experiment (worker entry point)."""
    defn = get_experiment(exp_id)
    if defn.run_batch is None:
        raise ConfigurationError(
            f"experiment {exp_id!r} has no batch (vector-engine) "
            "implementation"
        )
    return defn.run_batch(specs)
