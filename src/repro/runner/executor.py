"""The sharded executor: inline for tests, process-parallel for sweeps.

``run_tasks`` drives a task list through one code path with three gears:

* ``workers=0`` — run every task inline, in task order.  This is what
  unit tests and small benches use; no processes, no pickling.
* ``workers>=1`` — shard cache misses over a ``ProcessPoolExecutor`` in
  chunks (several tasks per round trip, so IPC overhead amortizes), and
  collect results as they complete.
* warm cache — tasks whose content key is already stored replay without
  executing at all, in either gear.

Because every task carries its own pre-derived seed, the three gears
produce *bit-identical* outcome tables; only wall-clock time differs.

Fault tolerance
---------------
The executor survives worker failure end to end, governed by a
:class:`~repro.runner.policy.FaultPolicy`:

* a **watchdog** enforces per-task wall-clock timeouts on worker
  futures (a chunk of ``c`` tasks gets ``c × timeout``); an expired
  chunk's pool is killed and rebuilt, and the chunk is bisected until
  the hanging task is isolated and quarantined;
* **in-band errors** (the task function raised) are returned per task,
  not thrown across the pool, and retried with exponential backoff +
  deterministic jitter up to ``max_retries`` before quarantine;
* a **broken pool** (worker died: segfault, OOM-kill, ``os._exit``) is
  rebuilt; the chunks that were in flight are re-probed serially and
  bisected so only the poison task is quarantined, everything innocent
  re-runs;
* if freshly rebuilt pools keep dying without progress, the executor
  **degrades to inline execution** rather than aborting the sweep;
* quarantined tasks are itemized in the :class:`RunReport` (and in
  ``quarantine.jsonl`` when telemetry is on) instead of crashing the
  run — unless the failure fraction crosses the policy threshold, in
  which case the run aborts loudly.

With a :class:`~repro.runner.checkpoint.SweepCheckpoint`, completed
tasks are journaled as they finish, so an interrupted run (Ctrl-C,
OOM-kill, machine loss) resumes from completed-task state even without
a result cache.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, ReproError
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.policy import FaultPolicy, QuarantineRecord
from repro.runner.registry import (
    get_experiment,
    run_registered_batch,
    run_registered_task,
)
from repro.runner.task import TaskSpec
from repro.runner.telemetry import Progress, RunTelemetry
from repro.vector.engine import validate_engine

RunFn = Callable[[TaskSpec], Mapping[str, Any]]
BatchFn = Callable[[List[TaskSpec]], List[Mapping[str, Any]]]

#: Slack added to a chunk's watchdog deadline for IPC and pool spin-up.
_DEADLINE_GRACE = 0.5


class TaskExecutionError(ReproError):
    """A task failed fatally (quarantine off or failure threshold hit)."""


def _package_version() -> str:
    import repro

    return repro.__version__


@dataclass(frozen=True)
class TaskOutcome:
    """One finished task: spec, metrics, and how it was obtained.

    ``source`` is ``"fresh"`` (executed this run), ``"cache"`` (replayed
    from the result cache) or ``"checkpoint"`` (restored from the sweep
    checkpoint journal); ``cached`` is True for the latter two.
    """

    spec: TaskSpec
    metrics: Mapping[str, Any]
    wall_time: float
    cached: bool
    key: str
    source: str = "fresh"


@dataclass
class RunReport:
    """All outcomes of one run, in task (grid) order.

    Beyond the outcomes, the report itemizes the run's failure taxonomy:
    ``timeouts`` (watchdog expiries — in the inline gear, advisory
    overruns), ``retries`` (task re-executions after a failure),
    ``pool_rebuilds`` (worker pools killed and rebuilt), ``quarantined``
    (tasks given up on, with category and detail),
    ``corrupt_cache_entries`` (cache files that failed integrity and
    were re-run), ``resumed`` (outcomes restored from a checkpoint),
    ``duplicates_merged`` (records folded last-write-wins when a
    checkpoint or merged fleet journal carried a content key more than
    once) and ``fallback_inline`` (the pool could not be kept alive and
    the run degraded to inline execution).  Fleet runs additionally
    populate ``lease_reclaims`` (orphaned task leases stolen from dead
    hosts), ``hosts_seen`` (distinct worker hosts that journaled) and
    ``host_failures`` (distinct hosts whose leases had to be reclaimed);
    the fields stay zero for single-machine runs.
    """

    exp_id: str
    version: str
    workers: int
    outcomes: List[TaskOutcome]
    executed: int
    cache_hits: int
    wall_time: float
    timeouts: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    corrupt_cache_entries: int = 0
    resumed: int = 0
    fallback_inline: bool = False
    duplicates_merged: int = 0
    lease_reclaims: int = 0
    hosts_seen: int = 0
    host_failures: int = 0

    def failure_summary(self) -> Dict[str, Any]:
        """The taxonomy as one flat dict (manifest / CLI rendering)."""
        return {
            "timeouts": self.timeouts,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": len(self.quarantined),
            "corrupt_cache_entries": self.corrupt_cache_entries,
            "resumed": self.resumed,
            "fallback_inline": self.fallback_inline,
            "duplicates_merged": self.duplicates_merged,
            "lease_reclaims": self.lease_reclaims,
            "hosts_seen": self.hosts_seen,
            "host_failures": self.host_failures,
        }

    def grouped(self) -> Dict[str, List[TaskOutcome]]:
        """Outcomes per grid case, preserving grid order throughout."""
        groups: Dict[str, List[TaskOutcome]] = {}
        for outcome in self.outcomes:
            groups.setdefault(outcome.spec.case_label(), []).append(outcome)
        return groups

    def metric(
        self, name: str, case_label: Optional[str] = None
    ) -> List[float]:
        """All values of one metric (optionally restricted to a case)."""
        return [
            float(outcome.metrics[name])
            for outcome in self.outcomes
            if name in outcome.metrics
            and (case_label is None or outcome.spec.case_label() == case_label)
        ]

    def case_means(self, name: str) -> Dict[str, float]:
        """Per-case mean of one metric, in grid order."""
        means: Dict[str, float] = {}
        for label, outcomes in self.grouped().items():
            samples = [
                float(o.metrics[name]) for o in outcomes if name in o.metrics
            ]
            if samples:
                means[label] = sum(samples) / len(samples)
        return means

    def summary_table(
        self, metrics: Optional[Sequence[str]] = None
    ) -> str:
        """A deterministic per-case summary table (mean ± CI half-width).

        The rendering depends only on the grid and the metric values —
        never on worker count, completion order, or cache state — so it
        doubles as the bit-identical fingerprint the determinism tests
        compare across sharding configurations.
        """
        from repro.analysis.stats import summarize
        from repro.analysis.tables import format_table

        groups = self.grouped()
        if metrics is None:
            # Sorted, not insertion order: cached records round-trip
            # through sort_keys JSON, and the table must not depend on
            # whether an outcome was computed or replayed.
            metrics = sorted(
                {
                    name
                    for outcomes in groups.values()
                    for outcome in outcomes
                    for name in outcome.metrics
                }
            )
        rows = []
        for label, outcomes in groups.items():
            row: List[Any] = [label, len(outcomes)]
            for name in metrics:
                samples = [
                    float(o.metrics[name])
                    for o in outcomes
                    if name in o.metrics
                ]
                if not samples:
                    row.append("-")
                    continue
                stats = summarize(samples)
                row.append(f"{stats.mean:.4f}±{stats.ci_half_width:.4f}")
            rows.append(row)
        return format_table(
            ["case", "n"] + list(metrics),
            rows,
            title=f"{self.exp_id}: {len(self.outcomes)} tasks",
        )


# ----------------------------------------------------------------------
# Worker entry points
# ----------------------------------------------------------------------
#
# Failures are returned *in band* — ("err", message, 0.0) per task —
# rather than raised across the pool: raising would poison the whole
# chunk and lose which sibling tasks succeeded.  Only process death
# (BrokenProcessPool) and interrupts cross the boundary as exceptions.

Entry = Tuple[str, Any, float]  # ("ok", metrics, wall) | ("err", msg, 0.0)


def _run_batch_chunk(
    batch_fn: BatchFn, records: List[Dict[str, Any]]
) -> List[Entry]:
    """Worker entry point: one batched (vector-engine) group of records.

    Wall time is amortized evenly over the group — a batch is one engine
    call, so per-task attribution is necessarily approximate.  A batch
    failure fails every task of the group; the executor retries them as
    singleton batches.
    """
    specs = [TaskSpec.from_record(record) for record in records]
    started = time.perf_counter()
    try:
        metrics_list = batch_fn(specs)
    except Exception as exc:
        message = (
            f"batch of {len(specs)} tasks ({specs[0].label()} ...) "
            f"failed: {type(exc).__name__}: {exc}"
        )
        return [("err", message, 0.0)] * len(specs)
    if len(metrics_list) != len(specs):
        message = (
            f"batch function returned {len(metrics_list)} results for "
            f"{len(specs)} tasks"
        )
        return [("err", message, 0.0)] * len(specs)
    wall = (time.perf_counter() - started) / max(1, len(specs))
    return [("ok", dict(metrics), wall) for metrics in metrics_list]


def _run_chunk(
    run_fn: RunFn, records: List[Dict[str, Any]]
) -> List[Entry]:
    """Worker entry point: execute one shard of task records."""
    results: List[Entry] = []
    for record in records:
        spec = TaskSpec.from_record(record)
        started = time.perf_counter()
        try:
            metrics = run_fn(spec)
        except Exception as exc:  # surface which task died, with context
            results.append((
                "err",
                f"task {spec.label()} (seed {spec.seed}) failed: "
                f"{type(exc).__name__}: {exc}",
                0.0,
            ))
        else:
            results.append(
                ("ok", dict(metrics), time.perf_counter() - started)
            )
    return results


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool, including hung or wedged workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    # _processes is a CPython internal (pid -> Process); stable across
    # 3.8+ and the only way to reach a *hung* worker, which a plain
    # shutdown would wait on forever.
    process_map = getattr(pool, "_processes", None)
    processes = list(process_map.values()) if process_map else []
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in processes:
        try:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except Exception:
            pass


@dataclass
class _Chunk:
    """One unit of pool work: task indices plus routing flags."""

    indices: List[int]
    batch: bool = False
    suspect: bool = False

    def halves(self) -> Tuple["_Chunk", "_Chunk"]:
        mid = len(self.indices) // 2
        return (
            _Chunk(self.indices[:mid], batch=self.batch, suspect=True),
            _Chunk(self.indices[mid:], batch=self.batch, suspect=True),
        )


class _Execution:
    """Shared fault-tolerant machinery behind both executor gears."""

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        keys: Sequence[str],
        run_fn: RunFn,
        batch_fn: Optional[BatchFn],
        policy: FaultPolicy,
        workers: int,
        pending_total: int,
        on_complete: Callable[[int, Dict[str, Any], float], None],
        on_quarantine: Callable[[QuarantineRecord], None],
    ) -> None:
        self.tasks = tasks
        self.keys = keys
        self.run_fn = run_fn
        self.batch_fn = batch_fn
        self.policy = policy
        self.workers = workers
        self.pending_total = pending_total
        self.on_complete = on_complete
        self.on_quarantine = on_quarantine
        self.attempts: Dict[int, int] = {}
        self.quarantined: List[QuarantineRecord] = []
        self.timeouts = 0
        self.retries = 0
        self.pool_rebuilds = 0
        self.fallback_inline = False

    # -- shared --------------------------------------------------------

    def _records(self, indices: Sequence[int]) -> List[Dict[str, Any]]:
        return [self.tasks[i].to_record() for i in indices]

    def _note_overrun(self, wall: float) -> None:
        if self.policy.timeout is not None and wall > self.policy.timeout:
            self.timeouts += 1

    def quarantine(self, index: int, category: str, detail: str) -> None:
        """Give up on one task — or abort, per policy."""
        spec = self.tasks[index]
        # attempts[] already counts every failed execution (bumped by
        # _should_retry); a timeout bypasses that path but did execute
        # once before the watchdog killed it.
        attempts = max(1, self.attempts.get(index, 0))
        if not self.policy.quarantine:
            raise TaskExecutionError(
                f"task {spec.label()} {category} after {attempts} "
                f"attempt(s): {detail}"
            )
        record = QuarantineRecord(
            spec=spec.to_record(),
            key=self.keys[index],
            label=spec.label(),
            category=category,
            attempts=attempts,
            detail=detail,
        )
        self.quarantined.append(record)
        self.on_quarantine(record)
        limit = self.policy.max_quarantine_fraction * self.pending_total
        if len(self.quarantined) > limit:
            lines = "; ".join(
                f"{q.label} [{q.category}] {q.detail}"
                for q in self.quarantined
            )
            raise TaskExecutionError(
                f"{len(self.quarantined)} of {self.pending_total} tasks "
                f"quarantined (threshold "
                f"{self.policy.max_quarantine_fraction:.0%}): {lines}"
            )

    def _should_retry(self, index: int) -> bool:
        """Record one failed attempt; True if a retry is still budgeted."""
        self.attempts[index] = self.attempts.get(index, 0) + 1
        if self.attempts[index] <= self.policy.max_retries:
            self.retries += 1
            return True
        return False

    # -- inline gear ---------------------------------------------------

    def run_inline(
        self, scalar_indices: Sequence[int], batch_groups: Sequence[List[int]]
    ) -> None:
        for group in batch_groups:
            self._inline_batch_group(group)
        for index in scalar_indices:
            self._inline_task(index, batch=False)

    def _inline_batch_group(self, group: Sequence[int]) -> None:
        entries = _run_batch_chunk(self.batch_fn, self._records(group))
        retry: List[int] = []
        for index, entry in zip(group, entries):
            if entry[0] == "ok":
                self._note_overrun(entry[2])
                self.on_complete(index, entry[1], entry[2])
            elif self._should_retry(index):
                retry.append(index)
            else:
                self.quarantine(index, "error", entry[1])
        for index in retry:
            time.sleep(
                self.policy.backoff_delay(
                    self.keys[index], self.attempts[index]
                )
            )
            self._inline_task(index, batch=True)

    def _inline_task(self, index: int, batch: bool) -> None:
        while True:
            records = self._records([index])
            if batch:
                (entry,) = _run_batch_chunk(self.batch_fn, records)
            else:
                (entry,) = _run_chunk(self.run_fn, records)
            if entry[0] == "ok":
                self._note_overrun(entry[2])
                self.on_complete(index, entry[1], entry[2])
                return
            if not self._should_retry(index):
                self.quarantine(index, "error", entry[1])
                return
            time.sleep(
                self.policy.backoff_delay(
                    self.keys[index], self.attempts[index]
                )
            )

    # -- pool gear -----------------------------------------------------

    def run_pool(
        self,
        scalar_chunks: Sequence[List[int]],
        batch_groups: Sequence[List[int]],
    ) -> None:
        normal: Deque[_Chunk] = deque(
            [_Chunk(list(chunk)) for chunk in scalar_chunks]
            + [_Chunk(list(group), batch=True) for group in batch_groups]
        )
        suspects: Deque[_Chunk] = deque()
        retry_heap: List[Tuple[float, int, _Chunk]] = []
        tiebreak = itertools.count()
        inflight: Dict[Any, _Chunk] = {}
        deadlines: Dict[Any, float] = {}
        pool: Optional[ProcessPoolExecutor] = None
        breaks_since_progress = 0

        def submit(chunk: _Chunk) -> None:
            if chunk.batch:
                future = pool.submit(
                    _run_batch_chunk, self.batch_fn,
                    self._records(chunk.indices),
                )
            else:
                future = pool.submit(
                    _run_chunk, self.run_fn, self._records(chunk.indices)
                )
            inflight[future] = chunk
            if self.policy.timeout is not None:
                deadlines[future] = (
                    time.monotonic()
                    + self.policy.timeout * len(chunk.indices)
                    + _DEADLINE_GRACE
                )

        def requeue_inflight() -> None:
            for chunk in inflight.values():
                (suspects if chunk.suspect else normal).appendleft(chunk)
            inflight.clear()
            deadlines.clear()

        def drop_pool() -> None:
            nonlocal pool
            if pool is not None:
                _kill_pool(pool)
                pool = None

        def remaining_chunks() -> List[_Chunk]:
            chunks = list(suspects) + list(normal)
            chunks += [item[2] for item in retry_heap]
            chunks += list(inflight.values())
            return chunks

        def schedule_retry(index: int, batch: bool, suspect: bool) -> None:
            ready = time.monotonic() + self.policy.backoff_delay(
                self.keys[index], self.attempts[index]
            )
            heapq.heappush(
                retry_heap,
                (ready, next(tiebreak),
                 _Chunk([index], batch=batch, suspect=suspect)),
            )

        def guilty_crash(chunk: _Chunk) -> None:
            """A chunk known (not just suspected) to kill its worker."""
            if len(chunk.indices) > 1:
                first, second = chunk.halves()
                suspects.appendleft(second)
                suspects.appendleft(first)
                return
            index = chunk.indices[0]
            if self._should_retry(index):
                schedule_retry(index, chunk.batch, suspect=True)
            else:
                self.quarantine(
                    index, "crash",
                    f"worker process died "
                    f"({self.attempts[index]} attempt(s))",
                )

        def expire(chunk: _Chunk) -> None:
            self.timeouts += 1
            if len(chunk.indices) > 1:
                first, second = chunk.halves()
                suspects.appendleft(second)
                suspects.appendleft(first)
                return
            index = chunk.indices[0]
            self.quarantine(
                index, "timeout",
                f"exceeded the {self.policy.timeout:g}s wall-clock budget",
            )

        try:
            while normal or suspects or retry_heap or inflight:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, chunk = heapq.heappop(retry_heap)
                    (suspects if chunk.suspect else normal).append(chunk)

                if (normal or suspects) and pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=self.workers)
                    except (OSError, PermissionError, ValueError):
                        self._degrade_inline(remaining_chunks())
                        return

                # Suspect chunks are probed one at a time: if the pool
                # breaks with a single chunk in flight, guilt is certain
                # and bisection can proceed without collateral damage.
                if suspects:
                    if not inflight:
                        submit(suspects.popleft())
                else:
                    while normal and len(inflight) < max(1, self.workers) * 4:
                        submit(normal.popleft())

                if not inflight:
                    if retry_heap:
                        time.sleep(
                            min(0.05, max(0.0, retry_heap[0][0] - now))
                        )
                    continue

                wait_timeout = None
                if deadlines:
                    wait_timeout = max(0.0, min(deadlines.values()) - now)
                if retry_heap:
                    ready = max(0.0, retry_heap[0][0] - now)
                    wait_timeout = (
                        ready if wait_timeout is None
                        else min(wait_timeout, ready)
                    )
                done, _ = wait(
                    set(inflight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )

                crashed: List[_Chunk] = []
                progressed = False
                for future in done:
                    chunk = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        entries = future.result()
                    except BrokenProcessPool:
                        crashed.append(chunk)
                    except Exception as exc:
                        # Pickling or transport failure: fail the tasks
                        # in band so they retry / quarantine normally.
                        progressed = True
                        for index in chunk.indices:
                            self._pool_task_failed(
                                index, chunk.batch,
                                f"task {self.tasks[index].label()} failed "
                                f"in transit: {type(exc).__name__}: {exc}",
                                schedule_retry,
                            )
                    else:
                        progressed = True
                        for index, entry in zip(chunk.indices, entries):
                            if entry[0] == "ok":
                                self._note_overrun(entry[2])
                                self.on_complete(index, entry[1], entry[2])
                            else:
                                self._pool_task_failed(
                                    index, chunk.batch, entry[1],
                                    schedule_retry,
                                )
                if progressed:
                    breaks_since_progress = 0

                if crashed:
                    self.pool_rebuilds += 1
                    if not progressed:
                        breaks_since_progress += 1
                    if len(crashed) == 1 and not inflight:
                        # Exactly one chunk in flight died: it is guilty.
                        guilty_crash(crashed[0])
                    else:
                        # Ambiguous break: everything that was running
                        # becomes a suspect and is re-probed serially.
                        for chunk in crashed:
                            chunk.suspect = True
                            suspects.appendleft(chunk)
                    requeue_inflight()
                    drop_pool()
                    if breaks_since_progress > self.policy.rebuild_limit:
                        self._degrade_inline(remaining_chunks())
                        return
                    continue

                now = time.monotonic()
                expired = [
                    future
                    for future, deadline in deadlines.items()
                    if deadline <= now and not future.done()
                ]
                if expired:
                    for future in expired:
                        chunk = inflight.pop(future)
                        deadlines.pop(future, None)
                        expire(chunk)
                    # The hung worker holds the pool hostage; innocents
                    # in flight are requeued and re-run on a fresh pool.
                    self.pool_rebuilds += 1
                    requeue_inflight()
                    drop_pool()
        except BaseException:
            drop_pool()
            raise
        else:
            if pool is not None:
                pool.shutdown(wait=True)

    def _pool_task_failed(
        self,
        index: int,
        batch: bool,
        detail: str,
        schedule_retry: Callable[[int, bool, bool], None],
    ) -> None:
        if self._should_retry(index):
            schedule_retry(index, batch, False)
        else:
            self.quarantine(index, "error", detail)

    def _degrade_inline(self, chunks: Sequence[_Chunk]) -> None:
        """Last resort: the pool cannot be kept alive; run in process.

        Loses crash isolation (a task that kills its process would kill
        the run), but a sweep that can still make progress should.
        """
        self.fallback_inline = True
        seen: set = set()
        for chunk in chunks:
            indices = [i for i in chunk.indices if i not in seen]
            seen.update(indices)
            if chunk.batch and len(indices) > 1:
                self._inline_batch_group(indices)
            else:
                for index in indices:
                    self._inline_task(index, batch=chunk.batch)


def _coerce_cache(
    cache: Union[ResultCache, os.PathLike, str, None]
) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _coerce_telemetry(
    telemetry: Union[RunTelemetry, os.PathLike, str, None]
) -> Optional[RunTelemetry]:
    if telemetry is None or isinstance(telemetry, RunTelemetry):
        return telemetry
    return RunTelemetry(telemetry)


def _coerce_checkpoint(
    checkpoint: Union[SweepCheckpoint, os.PathLike, str, None]
) -> Optional[SweepCheckpoint]:
    if checkpoint is None or isinstance(checkpoint, SweepCheckpoint):
        return checkpoint
    return SweepCheckpoint(checkpoint)


def _shard_batch_groups(
    groups: List[List[int]], workers: int
) -> List[List[int]]:
    """Split vector cell groups into contiguous per-worker sub-batches.

    A batched engine call is pure per replication (each task's coins come
    from its own seed-derived stream), so a cell's task list can split at
    any boundary and every sub-batch stays bit-identical to the unsharded
    run.  Shards are contiguous slices sized so the whole vector workload
    yields about ``2 × workers`` sub-batches (coarse enough to amortize
    per-call setup — topology build, CSR arrays — fine enough that one
    giant cell cannot serialize the pool), and never smaller than one
    task.
    """
    if workers <= 0 or not groups:
        return list(groups)
    total = sum(len(group) for group in groups)
    target_shards = max(workers * 2, len(groups))
    shard_size = max(1, math.ceil(total / target_shards))
    sharded: List[List[int]] = []
    for group in groups:
        for start in range(0, len(group), shard_size):
            sharded.append(group[start:start + shard_size])
    return sharded


def run_tasks(
    tasks: Sequence[TaskSpec],
    run_fn: RunFn,
    *,
    workers: int = 0,
    cache: Union[ResultCache, os.PathLike, str, None] = None,
    telemetry: Union[RunTelemetry, os.PathLike, str, None] = None,
    checkpoint: Union[SweepCheckpoint, os.PathLike, str, None] = None,
    progress: bool = False,
    version: Optional[str] = None,
    options: Optional[Mapping[str, Any]] = None,
    chunk_size: Optional[int] = None,
    batch_fn: Optional[BatchFn] = None,
    policy: Optional[FaultPolicy] = None,
) -> RunReport:
    """Execute a task grid and return its :class:`RunReport`.

    ``run_fn`` must be pure in the task spec; for ``workers >= 1`` it
    must also be picklable (a top-level function or a
    ``functools.partial`` over one — registered experiments satisfy this
    by construction).  Cache hits never execute; fresh outcomes are
    stored back as soon as they complete, so an interrupted run resumes
    from wherever it died.

    Tasks with ``engine="vector"`` require ``batch_fn``: all pending
    vector tasks of one grid cell are evaluated in a single batched call
    (one NumPy lockstep run over every seed of the cell) rather than
    task by task.  Cached vector outcomes replay like any other — the
    engine is part of the cache key.

    ``policy`` governs the failure behavior (timeouts, retries,
    quarantine — see :class:`~repro.runner.policy.FaultPolicy`; the
    default retries twice and quarantines up to half the grid before
    aborting).  ``checkpoint`` names a
    :class:`~repro.runner.checkpoint.SweepCheckpoint` journal: completed
    tasks are appended as they finish and restored on the next run, so
    interruption (Ctrl-C, OOM-kill) is a pause even without a cache.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    policy = policy if policy is not None else FaultPolicy()
    started = time.perf_counter()
    version = version if version is not None else _package_version()
    exp_id = tasks[0].exp_id if tasks else "(empty)"
    cache = _coerce_cache(cache)
    telemetry = _coerce_telemetry(telemetry)
    checkpoint = _coerce_checkpoint(checkpoint)
    meter = Progress(len(tasks), enabled=progress)
    if telemetry is not None:
        telemetry.start(
            exp_id=exp_id,
            version=version,
            total_tasks=len(tasks),
            workers=workers,
            options=options,
        )

    corrupt_before = cache.corrupt if cache is not None else 0
    ckpt_completed: Dict[str, Dict] = {}
    ckpt_quarantined: Dict[str, Dict] = {}
    ckpt_duplicates = 0
    if checkpoint is not None:
        ckpt_completed, ckpt_quarantined = checkpoint.load()
        ckpt_duplicates = checkpoint.duplicates

    keys = [spec.key(version) for spec in tasks]
    outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
    pending: List[int] = []
    carryover: List[QuarantineRecord] = []
    cache_hits = 0
    resumed = 0
    for index, (spec, key) in enumerate(zip(tasks, keys)):
        record = cache.get(key) if cache is not None else None
        source = "cache"
        if record is None and key in ckpt_completed:
            record = ckpt_completed[key]
            source = "checkpoint"
        if record is not None:
            outcome = TaskOutcome(
                spec=spec,
                metrics=record["metrics"],
                wall_time=float(record.get("wall_time", 0.0)),
                cached=True,
                key=key,
                source=source,
            )
            outcomes[index] = outcome
            if source == "cache":
                cache_hits += 1
            else:
                resumed += 1
            if telemetry is not None:
                telemetry.record_task(
                    spec.to_record(),
                    outcome.metrics,
                    outcome.wall_time,
                    cached=True,
                    key=key,
                )
            meter.update()
        elif key in ckpt_quarantined and policy.quarantine:
            # A known-poison task from the interrupted run: skip it and
            # carry its record forward rather than re-poisoning the run.
            carried = QuarantineRecord.from_record(ckpt_quarantined[key])
            carryover.append(carried)
            if telemetry is not None:
                telemetry.record_quarantine(carried.to_record())
            meter.update()
        else:
            pending.append(index)

    # Split pending work by engine: vector tasks batch per grid cell.
    scalar_pending: List[int] = []
    batch_groups: List[List[int]] = []
    vector_by_case: Dict[str, List[int]] = {}
    for index in pending:
        if tasks[index].engine == "vector":
            vector_by_case.setdefault(
                tasks[index].case_label(), []
            ).append(index)
        else:
            scalar_pending.append(index)
    if vector_by_case:
        if batch_fn is None:
            raise ConfigurationError(
                "tasks with engine='vector' need a batch_fn"
            )
        batch_groups = list(vector_by_case.values())

    def _complete(index: int, metrics: Dict[str, Any], wall: float) -> None:
        spec, key = tasks[index], keys[index]
        outcomes[index] = TaskOutcome(
            spec=spec, metrics=metrics, wall_time=wall, cached=False, key=key
        )
        record = {
            "spec": spec.to_record(),
            "metrics": metrics,
            "wall_time": wall,
            "version": version,
        }
        if cache is not None:
            cache.put(key, record)
        if checkpoint is not None:
            checkpoint.append_outcome(key, record)
        if telemetry is not None:
            telemetry.record_task(
                spec.to_record(), metrics, wall, cached=False, key=key
            )
        meter.update()

    def _quarantined(record: QuarantineRecord) -> None:
        if telemetry is not None:
            telemetry.record_quarantine(record.to_record())
        if checkpoint is not None:
            checkpoint.append_quarantine(record.key, record.to_record())
        meter.update()

    execution = _Execution(
        tasks=tasks,
        keys=keys,
        run_fn=run_fn,
        batch_fn=batch_fn,
        policy=policy,
        workers=workers,
        pending_total=len(pending),
        on_complete=_complete,
        on_quarantine=_quarantined,
    )

    def _fresh_count() -> int:
        return sum(
            1
            for outcome in outcomes
            if outcome is not None and outcome.source == "fresh"
        )

    interrupted = False
    try:
        if workers == 0 or (
            len(pending) <= 1 and policy.timeout is None
        ):
            execution.run_inline(scalar_pending, batch_groups)
        elif pending:
            if chunk_size is None:
                # ~4 chunks per worker: coarse enough to amortize IPC,
                # fine enough that a slow shard cannot straggle the run.
                chunk_size = max(
                    1, math.ceil(len(scalar_pending) / (workers * 4))
                )
            chunks = [
                scalar_pending[start:start + chunk_size]
                for start in range(0, len(scalar_pending), chunk_size)
            ]
            # Vector cells shard into contiguous sub-batches so one
            # cell's replications spread across workers; per-replication
            # coin streams keep every sub-batch bit-identical to the
            # unsharded cell (see repro.vector.collection).
            execution.run_pool(
                chunks, _shard_batch_groups(batch_groups, workers)
            )
    except KeyboardInterrupt:
        interrupted = True
        raise
    finally:
        meter.finish()
        if checkpoint is not None:
            checkpoint.close()
        if interrupted and telemetry is not None:
            telemetry.interrupt(
                executed=_fresh_count(),
                cache_hits=cache_hits,
                failures={
                    "timeouts": execution.timeouts,
                    "retries": execution.retries,
                    "pool_rebuilds": execution.pool_rebuilds,
                    "quarantined": len(execution.quarantined),
                },
            )

    report = RunReport(
        exp_id=exp_id,
        version=version,
        workers=workers,
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        executed=_fresh_count(),
        cache_hits=cache_hits,
        wall_time=time.perf_counter() - started,
        timeouts=execution.timeouts,
        retries=execution.retries,
        pool_rebuilds=execution.pool_rebuilds,
        quarantined=carryover + execution.quarantined,
        corrupt_cache_entries=(
            cache.corrupt - corrupt_before if cache is not None else 0
        ),
        resumed=resumed,
        fallback_inline=execution.fallback_inline,
        duplicates_merged=ckpt_duplicates,
    )
    if telemetry is not None:
        telemetry.finish(
            executed=report.executed,
            cache_hits=cache_hits,
            failures=report.failure_summary(),
        )
    return report


def run_experiment(
    exp_id: str,
    *,
    seed: int,
    replications: int,
    workers: int = 0,
    cache: Union[ResultCache, os.PathLike, str, None] = None,
    telemetry: Union[RunTelemetry, os.PathLike, str, None] = None,
    checkpoint: Union[SweepCheckpoint, os.PathLike, str, None] = None,
    progress: bool = False,
    engine: str = "scalar",
    reception: str = "auto",
    backend: str = "auto",
    mask: str = "auto",
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    quarantine: bool = True,
    policy: Optional[FaultPolicy] = None,
    **options: Any,
) -> RunReport:
    """Run one *registered* experiment end to end.

    This is the code path shared by ``python -m repro run``, the migrated
    benches, and tests: the experiment's grid is expanded with
    deterministic per-task seeds, executed (inline or sharded), cached,
    and reported.  With ``engine="vector"`` every grid cell's seeds are
    evaluated in one NumPy lockstep batch (the experiment must register
    a ``run_batch`` function); ``reception`` selects that batch's
    reception kernel (``dense``/``sparse``/``auto``), ``backend`` its
    array kernels (``numpy``/``numba``/``auto``) and ``mask`` the
    active-set loop (``on``/``off``/``auto``) — all three join the task
    identity.

    Failure behavior: ``timeout`` (defaulting to the experiment's
    ``default_timeout``), ``retries`` and ``quarantine`` assemble a
    :class:`~repro.runner.policy.FaultPolicy` unless an explicit
    ``policy`` is given; ``checkpoint`` journals completed tasks for
    resumption after an interruption.
    """
    import dataclasses
    import functools

    from repro.vector.engine import (
        validate_backend,
        validate_mask,
        validate_reception,
    )

    validate_engine(engine)
    validate_reception(reception)
    validate_backend(backend)
    validate_mask(mask)
    defn = get_experiment(exp_id)
    if policy is None:
        defaults = FaultPolicy()
        policy = FaultPolicy(
            timeout=timeout if timeout is not None else defn.default_timeout,
            max_retries=(
                retries if retries is not None else defaults.max_retries
            ),
            quarantine=quarantine,
        )
    tasks = defn.tasks(seed, replications, **options)
    batch_fn: Optional[BatchFn] = None
    if engine != "scalar":
        if not defn.supports_vector:
            raise ConfigurationError(
                f"experiment {exp_id!r} has no vector-engine "
                "implementation; run it with engine='scalar'"
            )
        tasks = [
            dataclasses.replace(
                spec,
                engine=engine,
                reception=reception,
                backend=backend,
                mask=mask,
            )
            for spec in tasks
        ]
    if defn.supports_vector:
        batch_fn = functools.partial(run_registered_batch, exp_id)
    run_fn = functools.partial(run_registered_task, exp_id)
    return run_tasks(
        tasks,
        run_fn,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        checkpoint=checkpoint,
        progress=progress,
        batch_fn=batch_fn,
        policy=policy,
        options={
            "seed": seed,
            "replications": replications,
            "engine": engine,
            "reception": reception,
            "backend": backend,
            "mask": mask,
            **options,
        },
    )
