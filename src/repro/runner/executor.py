"""The sharded executor: inline for tests, process-parallel for sweeps.

``run_tasks`` drives a task list through one code path with three gears:

* ``workers=0`` — run every task inline, in task order.  This is what
  unit tests and small benches use; no processes, no pickling.
* ``workers>=1`` — shard cache misses over a ``ProcessPoolExecutor`` in
  chunks (several tasks per round trip, so IPC overhead amortizes), and
  collect results as they complete.
* warm cache — tasks whose content key is already stored replay without
  executing at all, in either gear.

Because every task carries its own pre-derived seed, the three gears
produce *bit-identical* outcome tables; only wall-clock time differs.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, ReproError
from repro.runner.cache import ResultCache
from repro.runner.registry import (
    get_experiment,
    run_registered_batch,
    run_registered_task,
)
from repro.runner.task import TaskSpec
from repro.runner.telemetry import Progress, RunTelemetry
from repro.vector.engine import validate_engine

RunFn = Callable[[TaskSpec], Mapping[str, Any]]
BatchFn = Callable[[List[TaskSpec]], List[Mapping[str, Any]]]


class TaskExecutionError(ReproError):
    """A task raised inside the executor (original traceback included)."""


def _package_version() -> str:
    import repro

    return repro.__version__


@dataclass(frozen=True)
class TaskOutcome:
    """One finished task: spec, metrics, and how it was obtained."""

    spec: TaskSpec
    metrics: Mapping[str, Any]
    wall_time: float
    cached: bool
    key: str


@dataclass
class RunReport:
    """All outcomes of one run, in task (grid) order."""

    exp_id: str
    version: str
    workers: int
    outcomes: List[TaskOutcome]
    executed: int
    cache_hits: int
    wall_time: float

    def grouped(self) -> Dict[str, List[TaskOutcome]]:
        """Outcomes per grid case, preserving grid order throughout."""
        groups: Dict[str, List[TaskOutcome]] = {}
        for outcome in self.outcomes:
            groups.setdefault(outcome.spec.case_label(), []).append(outcome)
        return groups

    def metric(
        self, name: str, case_label: Optional[str] = None
    ) -> List[float]:
        """All values of one metric (optionally restricted to a case)."""
        return [
            float(outcome.metrics[name])
            for outcome in self.outcomes
            if name in outcome.metrics
            and (case_label is None or outcome.spec.case_label() == case_label)
        ]

    def case_means(self, name: str) -> Dict[str, float]:
        """Per-case mean of one metric, in grid order."""
        means: Dict[str, float] = {}
        for label, outcomes in self.grouped().items():
            samples = [
                float(o.metrics[name]) for o in outcomes if name in o.metrics
            ]
            if samples:
                means[label] = sum(samples) / len(samples)
        return means

    def summary_table(
        self, metrics: Optional[Sequence[str]] = None
    ) -> str:
        """A deterministic per-case summary table (mean ± CI half-width).

        The rendering depends only on the grid and the metric values —
        never on worker count, completion order, or cache state — so it
        doubles as the bit-identical fingerprint the determinism tests
        compare across sharding configurations.
        """
        from repro.analysis.stats import summarize
        from repro.analysis.tables import format_table

        groups = self.grouped()
        if metrics is None:
            # Sorted, not insertion order: cached records round-trip
            # through sort_keys JSON, and the table must not depend on
            # whether an outcome was computed or replayed.
            metrics = sorted(
                {
                    name
                    for outcomes in groups.values()
                    for outcome in outcomes
                    for name in outcome.metrics
                }
            )
        rows = []
        for label, outcomes in groups.items():
            row: List[Any] = [label, len(outcomes)]
            for name in metrics:
                samples = [
                    float(o.metrics[name])
                    for o in outcomes
                    if name in o.metrics
                ]
                if not samples:
                    row.append("-")
                    continue
                stats = summarize(samples)
                row.append(f"{stats.mean:.4f}±{stats.ci_half_width:.4f}")
            rows.append(row)
        return format_table(
            ["case", "n"] + list(metrics),
            rows,
            title=f"{self.exp_id}: {len(self.outcomes)} tasks",
        )


def _run_batch_chunk(
    batch_fn: BatchFn, records: List[Dict[str, Any]]
) -> List[Tuple[Dict[str, Any], float]]:
    """Worker entry point: one batched (vector-engine) group of records.

    Wall time is amortized evenly over the group — a batch is one engine
    call, so per-task attribution is necessarily approximate.
    """
    specs = [TaskSpec.from_record(record) for record in records]
    started = time.perf_counter()
    try:
        metrics_list = batch_fn(specs)
    except Exception as exc:
        raise TaskExecutionError(
            f"batch of {len(specs)} tasks ({specs[0].label()} ...) "
            f"failed: {type(exc).__name__}: {exc}"
        ) from exc
    if len(metrics_list) != len(specs):
        raise TaskExecutionError(
            f"batch function returned {len(metrics_list)} results for "
            f"{len(specs)} tasks"
        )
    wall = (time.perf_counter() - started) / max(1, len(specs))
    return [(dict(metrics), wall) for metrics in metrics_list]


def _run_chunk(
    run_fn: RunFn, records: List[Dict[str, Any]]
) -> List[Tuple[Dict[str, Any], float]]:
    """Worker entry point: execute one shard of task records."""
    results: List[Tuple[Dict[str, Any], float]] = []
    for record in records:
        spec = TaskSpec.from_record(record)
        started = time.perf_counter()
        try:
            metrics = run_fn(spec)
        except Exception as exc:  # surface which task died, with context
            raise TaskExecutionError(
                f"task {spec.label()} (seed {spec.seed}) failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        results.append((dict(metrics), time.perf_counter() - started))
    return results


def _coerce_cache(
    cache: Union[ResultCache, os.PathLike, str, None]
) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _coerce_telemetry(
    telemetry: Union[RunTelemetry, os.PathLike, str, None]
) -> Optional[RunTelemetry]:
    if telemetry is None or isinstance(telemetry, RunTelemetry):
        return telemetry
    return RunTelemetry(telemetry)


def run_tasks(
    tasks: Sequence[TaskSpec],
    run_fn: RunFn,
    *,
    workers: int = 0,
    cache: Union[ResultCache, os.PathLike, str, None] = None,
    telemetry: Union[RunTelemetry, os.PathLike, str, None] = None,
    progress: bool = False,
    version: Optional[str] = None,
    options: Optional[Mapping[str, Any]] = None,
    chunk_size: Optional[int] = None,
    batch_fn: Optional[BatchFn] = None,
) -> RunReport:
    """Execute a task grid and return its :class:`RunReport`.

    ``run_fn`` must be pure in the task spec; for ``workers >= 1`` it
    must also be picklable (a top-level function or a
    ``functools.partial`` over one — registered experiments satisfy this
    by construction).  Cache hits never execute; fresh outcomes are
    stored back as soon as they complete, so an interrupted run resumes
    from wherever it died.

    Tasks with ``engine="vector"`` require ``batch_fn``: all pending
    vector tasks of one grid cell are evaluated in a single batched call
    (one NumPy lockstep run over every seed of the cell) rather than
    task by task.  Cached vector outcomes replay like any other — the
    engine is part of the cache key.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    started = time.perf_counter()
    version = version if version is not None else _package_version()
    exp_id = tasks[0].exp_id if tasks else "(empty)"
    cache = _coerce_cache(cache)
    telemetry = _coerce_telemetry(telemetry)
    meter = Progress(len(tasks), enabled=progress)
    if telemetry is not None:
        telemetry.start(
            exp_id=exp_id,
            version=version,
            total_tasks=len(tasks),
            workers=workers,
            options=options,
        )

    keys = [spec.key(version) for spec in tasks]
    outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
    pending: List[int] = []
    cache_hits = 0
    for index, (spec, key) in enumerate(zip(tasks, keys)):
        record = cache.get(key) if cache is not None else None
        if record is not None:
            outcome = TaskOutcome(
                spec=spec,
                metrics=record["metrics"],
                wall_time=float(record.get("wall_time", 0.0)),
                cached=True,
                key=key,
            )
            outcomes[index] = outcome
            cache_hits += 1
            if telemetry is not None:
                telemetry.record_task(
                    spec.to_record(),
                    outcome.metrics,
                    outcome.wall_time,
                    cached=True,
                    key=key,
                )
            meter.update()
        else:
            pending.append(index)

    # Split pending work by engine: vector tasks batch per grid cell.
    scalar_pending: List[int] = []
    batch_groups: List[List[int]] = []
    vector_by_case: Dict[str, List[int]] = {}
    for index in pending:
        if tasks[index].engine == "vector":
            vector_by_case.setdefault(
                tasks[index].case_label(), []
            ).append(index)
        else:
            scalar_pending.append(index)
    if vector_by_case:
        if batch_fn is None:
            raise ConfigurationError(
                "tasks with engine='vector' need a batch_fn"
            )
        batch_groups = list(vector_by_case.values())

    def _complete(index: int, metrics: Dict[str, Any], wall: float) -> None:
        spec, key = tasks[index], keys[index]
        outcomes[index] = TaskOutcome(
            spec=spec, metrics=metrics, wall_time=wall, cached=False, key=key
        )
        if cache is not None:
            cache.put(
                key,
                {
                    "spec": spec.to_record(),
                    "metrics": metrics,
                    "wall_time": wall,
                    "version": version,
                },
            )
        if telemetry is not None:
            telemetry.record_task(
                spec.to_record(), metrics, wall, cached=False, key=key
            )
        meter.update()

    try:
        if workers == 0 or len(pending) <= 1:
            for group in batch_groups:
                results = _run_batch_chunk(
                    batch_fn, [tasks[i].to_record() for i in group]
                )
                for index, (metrics, wall) in zip(group, results):
                    _complete(index, metrics, wall)
            for index in scalar_pending:
                (metrics, wall), = _run_chunk(
                    run_fn, [tasks[index].to_record()]
                )
                _complete(index, metrics, wall)
        else:
            if chunk_size is None:
                # ~4 chunks per worker: coarse enough to amortize IPC,
                # fine enough that a slow shard cannot straggle the run.
                chunk_size = max(
                    1, math.ceil(len(scalar_pending) / (workers * 4))
                )
            chunks = [
                scalar_pending[start:start + chunk_size]
                for start in range(0, len(scalar_pending), chunk_size)
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _run_chunk,
                        run_fn,
                        [tasks[i].to_record() for i in chunk],
                    ): chunk
                    for chunk in chunks
                }
                # Each vector cell is one batched engine call — its own
                # shard, never split below the cell.
                for group in batch_groups:
                    futures[pool.submit(
                        _run_batch_chunk,
                        batch_fn,
                        [tasks[i].to_record() for i in group],
                    )] = group
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        chunk = futures[future]
                        for index, (metrics, wall) in zip(
                            chunk, future.result()
                        ):
                            _complete(index, metrics, wall)
    finally:
        meter.finish()

    executed = len(pending)
    report = RunReport(
        exp_id=exp_id,
        version=version,
        workers=workers,
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        executed=executed,
        cache_hits=cache_hits,
        wall_time=time.perf_counter() - started,
    )
    if telemetry is not None:
        telemetry.finish(executed=executed, cache_hits=cache_hits)
    return report


def run_experiment(
    exp_id: str,
    *,
    seed: int,
    replications: int,
    workers: int = 0,
    cache: Union[ResultCache, os.PathLike, str, None] = None,
    telemetry: Union[RunTelemetry, os.PathLike, str, None] = None,
    progress: bool = False,
    engine: str = "scalar",
    reception: str = "auto",
    **options: Any,
) -> RunReport:
    """Run one *registered* experiment end to end.

    This is the code path shared by ``python -m repro run``, the migrated
    benches, and tests: the experiment's grid is expanded with
    deterministic per-task seeds, executed (inline or sharded), cached,
    and reported.  With ``engine="vector"`` every grid cell's seeds are
    evaluated in one NumPy lockstep batch (the experiment must register
    a ``run_batch`` function); ``reception`` selects that batch's
    reception kernel (``dense``/``sparse``/``auto``) and joins the task
    identity.
    """
    import dataclasses
    import functools

    from repro.vector.engine import validate_reception

    validate_engine(engine)
    validate_reception(reception)
    defn = get_experiment(exp_id)
    tasks = defn.tasks(seed, replications, **options)
    batch_fn: Optional[BatchFn] = None
    if engine != "scalar":
        if not defn.supports_vector:
            raise ConfigurationError(
                f"experiment {exp_id!r} has no vector-engine "
                "implementation; run it with engine='scalar'"
            )
        tasks = [
            dataclasses.replace(spec, engine=engine, reception=reception)
            for spec in tasks
        ]
    if defn.supports_vector:
        batch_fn = functools.partial(run_registered_batch, exp_id)
    run_fn = functools.partial(run_registered_task, exp_id)
    return run_tasks(
        tasks,
        run_fn,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        batch_fn=batch_fn,
        options={
            "seed": seed,
            "replications": replications,
            "engine": engine,
            "reception": reception,
            **options,
        },
    )
