"""Built-in runnable experiments for ``python -m repro run``.

Each definition expands one experiment of the DESIGN.md registry into a
pure ``(topology × workload × seed)`` task grid and provides the
top-level task function the executor ships to worker processes:

* **E2** — Theorem 4.1's per-phase level-advance probability vs. µ;
* **E3** — Theorem 4.4's collection constant across topology families,
  plus the slots-vs-k scaling cells;
* **E16** — self-healing collection under the standard fault scenarios.

Topologies are named, not closed over: :func:`build_topology` parses
``"path-24"``, ``"grid-4x4"``, ``"rgg-30"``, … into a graph, so a task
spec stays a plain JSON record that any worker can reconstruct.

Every definition accepts ``quick=True``, a miniature grid used by the CI
smoke run and the sharding-determinism tests.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List

from repro.core.collection import build_collection_network, run_collection
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    balanced_tree,
    caterpillar,
    cycle,
    grid,
    layered_band,
    path,
    random_geometric,
    random_tree,
    reference_bfs_tree,
    star,
)
from repro.runner.registry import ExperimentDef, register
from repro.runner.task import TaskSpec, task_grid
from repro.vector.collection import BatchCollection, run_collection_batch

# ----------------------------------------------------------------------
# Topologies by name
# ----------------------------------------------------------------------

#: Unit-disk radius used by named ``rgg-N`` topologies (matches the
#: sweep module's default family).
RGG_RADIUS = 0.3


def build_topology(name: str, rng: random.Random) -> Graph:
    """Construct the topology named by ``name``.

    Supported families: ``path-N``, ``star-N``, ``cycle-N``,
    ``grid-RxC``, ``band-LxW``, ``caterpillar-SxL``, ``tree-bB-dD``,
    ``rgg-N`` (unit disk, radius 0.3, sampled from ``rng``) and
    ``rtree-N`` (uniform random tree sampled from ``rng``).
    """
    family, _, rest = name.partition("-")
    try:
        if family == "path":
            return path(int(rest))
        if family == "star":
            return star(int(rest))
        if family == "cycle":
            return cycle(int(rest))
        if family == "grid":
            rows, cols = rest.split("x")
            return grid(int(rows), int(cols))
        if family == "band":
            layers, width = rest.split("x")
            return layered_band(int(layers), int(width))
        if family == "caterpillar":
            spine, legs = rest.split("x")
            return caterpillar(int(spine), int(legs))
        if family == "tree":
            branching, depth = rest.split("-")
            return balanced_tree(int(branching[1:]), int(depth[1:]))
        if family == "rgg":
            return random_geometric(int(rest), radius=RGG_RADIUS, rng=rng)
        if family == "rtree":
            return random_tree(int(rest), rng=rng)
    except (ValueError, TypeError):
        pass
    raise ConfigurationError(
        f"unknown topology name {name!r} (expected e.g. 'path-24', "
        f"'grid-4x4', 'band-6x4', 'tree-b3-d2', 'rgg-30', 'rtree-24')"
    )


# ----------------------------------------------------------------------
# E3 — Theorem 4.4 collection constant
# ----------------------------------------------------------------------

E3_TOPOLOGIES = ("path-12", "path-24", "band-6x4", "rgg-30")
E3_KS = (4, 16)
E3_CLASSES = (3, 1)
#: The slots-vs-k scaling strip (fixed topology, multiplexed classes).
E3_SCALING_TOPOLOGY = "path-16"
E3_SCALING_KS = (4, 8, 16, 32)


def collection_metrics(
    topology: str, k: int, classes: int, seed: int
) -> Dict[str, Any]:
    """One E3 task: k-collection from the deepest station.

    Emits the engine counters behind the Theorem 4.4 comparison: slots,
    the tree depth (= the bound's D for this placement), log2 Δ, and the
    measured constant ``slots / ((k + D)·log2 Δ)``.
    """
    graph = build_topology(topology, random.Random(seed))
    tree = reference_bfs_tree(graph, 0)
    deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
    sources = {deepest: [f"m{i}" for i in range(k)]}
    result = run_collection(
        graph, tree, sources, seed, level_classes=classes
    )
    log_delta = math.log2(max(2, graph.max_degree()))
    denominator = (k + tree.depth) * log_delta
    return {
        "slots": result.slots,
        "depth": tree.depth,
        "log_delta": log_delta,
        "constant": result.slots / denominator,
    }


def _e3_tasks(
    seed: int, replications: int, quick: bool = False, **_: Any
) -> List[TaskSpec]:
    if quick:
        cases = [
            {"topology": name, "k": 4, "classes": 3}
            for name in ("path-12", "band-6x4")
        ]
    else:
        cases = [
            {"topology": name, "k": k, "classes": classes}
            for name in E3_TOPOLOGIES
            for k in E3_KS
            for classes in E3_CLASSES
        ]
        cases += [
            {"topology": E3_SCALING_TOPOLOGY, "k": k, "classes": 3}
            for k in E3_SCALING_KS
        ]
    return task_grid("E3", cases, replications, seed)


def _e3_run(spec: TaskSpec) -> Dict[str, Any]:
    params = spec.params
    return collection_metrics(
        params["topology"], params["k"], params["classes"], spec.seed
    )


def collection_metrics_batch(
    topology: str,
    k: int,
    classes: int,
    seeds: List[int],
    reception: str = "auto",
    backend: str = "auto",
    mask: str = "auto",
) -> List[Dict[str, Any]]:
    """All seeds of one E3 cell in NumPy lockstep batches.

    Seed-dependent topology families (``rgg-N``, ``rtree-N``) realize a
    different graph per seed, so seeds are bucketed by the graph they
    realize and each bucket runs as one batch; deterministic families
    collapse into a single batch.
    """
    buckets: Dict[Graph, List[int]] = {}
    for position, seed in enumerate(seeds):
        graph = build_topology(topology, random.Random(seed))
        buckets.setdefault(graph, []).append(position)
    results: List[Dict[str, Any]] = [{} for _ in seeds]
    for graph, positions in buckets.items():
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: [f"m{i}" for i in range(k)]}
        batch = run_collection_batch(
            graph,
            tree,
            sources,
            [seeds[position] for position in positions],
            level_classes=classes,
            reception=reception,
            backend=backend,
            mask=mask,
        )
        log_delta = math.log2(max(2, graph.max_degree()))
        denominator = (k + tree.depth) * log_delta
        for position, slots in zip(positions, batch.completion_slots):
            results[position] = {
                "slots": int(slots),
                "depth": tree.depth,
                "log_delta": log_delta,
                "constant": int(slots) / denominator,
            }
    return results


def _e3_run_batch(specs: List[TaskSpec]) -> List[Dict[str, Any]]:
    grouped: Dict[tuple, List[int]] = {}
    for index, spec in enumerate(specs):
        params = spec.params
        # The engine knobs join the cell key: reception/backend are
        # bit-identical but one batch call uses one kernel set, and the
        # mask changes coin-stream semantics outright.
        cell = (
            params["topology"], params["k"], params["classes"],
            spec.reception, spec.backend, spec.mask,
        )
        grouped.setdefault(cell, []).append(index)
    results: List[Dict[str, Any]] = [{} for _ in specs]
    for (topology, k, classes, reception, backend, mask), indices in (
        grouped.items()
    ):
        cell_results = collection_metrics_batch(
            topology,
            k,
            classes,
            [specs[i].seed for i in indices],
            reception=reception,
            backend=backend,
            mask=mask,
        )
        for index, metrics in zip(indices, cell_results):
            results[index] = metrics
    return results


register(
    ExperimentDef(
        exp_id="E3",
        title="Thm 4.4: k-collection slots vs 32.27·(k+D)·log Δ",
        make_tasks=_e3_tasks,
        run_task=_e3_run,
        summary_metrics=("slots", "constant"),
        run_batch=_e3_run_batch,
        # Collection is Las-Vegas: budget for the running-time tail, not
        # the mean (quick cells finish in well under a second).
        default_timeout=120.0,
    )
)


# ----------------------------------------------------------------------
# E2 — Theorem 4.1 per-phase advance probability
# ----------------------------------------------------------------------

#: (parents, children, msgs/child) — children vs Δ spans both proof cases.
E2_CONFIGS = ((1, 2, 3), (1, 6, 3), (2, 8, 2), (3, 12, 2), (2, 24, 1))


def contention_graph(parents: int, children: int) -> Graph:
    """Root 0; parents 1..P at level 1; children fully joined to parents."""
    edges = [(0, p) for p in range(1, parents + 1)]
    for child in range(parents + 1, parents + children + 1):
        for parent in range(1, parents + 1):
            edges.append((parent, child))
    return Graph.from_edges(edges)


def advance_rate_metrics(
    parents: int, children: int, load: int, seed: int
) -> Dict[str, Any]:
    """One E2 task: the fraction of loaded phases in which level 2 drains.

    Theorem 4.1 lower-bounds this per-phase advance probability by
    µ = e⁻¹(1−e⁻¹) on the adversarial all-to-all contention shape.
    """
    graph = contention_graph(parents, children)
    tree = reference_bfs_tree(graph, 0)
    child_ids = [node for node in graph.nodes if tree.level[node] == 2]
    sources = {
        child: [f"m{child}-{i}" for i in range(load)] for child in child_ids
    }
    network, processes, slots = build_collection_network(
        graph, tree, sources, seed
    )

    def level2_backlog() -> int:
        return sum(processes[child].backlog for child in child_ids)

    successes = 0
    phases = 0
    while level2_backlog() > 0 and phases < 5_000:
        before = level2_backlog()
        for _ in range(slots.phase_length):
            network.step()
        phases += 1
        if level2_backlog() < before:
            successes += 1
    return {
        "advance_rate": successes / max(1, phases),
        "phases": phases,
        "delta": graph.max_degree(),
    }


def _e2_tasks(
    seed: int, replications: int, quick: bool = False, **_: Any
) -> List[TaskSpec]:
    configs = E2_CONFIGS[:2] if quick else E2_CONFIGS
    cases = [
        {"parents": parents, "children": children, "load": load}
        for parents, children, load in configs
    ]
    return task_grid("E2", cases, replications, seed)


def _e2_run(spec: TaskSpec) -> Dict[str, Any]:
    params = spec.params
    return advance_rate_metrics(
        params["parents"], params["children"], params["load"], spec.seed
    )


def advance_rate_metrics_batch(
    parents: int,
    children: int,
    load: int,
    seeds: List[int],
    reception: str = "auto",
    backend: str = "auto",
    mask: str = "auto",
) -> List[Dict[str, Any]]:
    """All seeds of one E2 cell as a single lockstep batch.

    Mirrors :func:`advance_rate_metrics` per replication: a phase counts
    as an advance iff the summed level-2 backlog strictly drops, and a
    replication stops accruing phases once its level 2 drains (or at the
    5000-phase cap).
    """
    import numpy as np

    graph = contention_graph(parents, children)
    tree = reference_bfs_tree(graph, 0)
    child_ids = [node for node in graph.nodes if tree.level[node] == 2]
    sources = {
        child: [f"m{child}-{i}" for i in range(load)] for child in child_ids
    }
    simulation = BatchCollection(
        graph, tree, sources, seeds,
        reception=reception, backend=backend, mask=mask,
    )
    B = len(seeds)
    successes = np.zeros(B, dtype=np.int64)
    phases = np.zeros(B, dtype=np.int64)
    active = simulation.backlog_at(child_ids) > 0
    global_phases = 0
    while active.any() and global_phases < 5_000:
        before = simulation.backlog_at(child_ids)
        for _ in range(simulation.phase_length):
            simulation.step()
        after = simulation.backlog_at(child_ids)
        global_phases += 1
        phases[active] += 1
        successes[active & (after < before)] += 1
        active &= after > 0
    delta = graph.max_degree()
    return [
        {
            "advance_rate": int(successes[b]) / max(1, int(phases[b])),
            "phases": int(phases[b]),
            "delta": delta,
        }
        for b in range(B)
    ]


def _e2_run_batch(specs: List[TaskSpec]) -> List[Dict[str, Any]]:
    grouped: Dict[tuple, List[int]] = {}
    for index, spec in enumerate(specs):
        params = spec.params
        cell = (
            params["parents"], params["children"], params["load"],
            spec.reception, spec.backend, spec.mask,
        )
        grouped.setdefault(cell, []).append(index)
    results: List[Dict[str, Any]] = [{} for _ in specs]
    for (parents, children, load, reception, backend, mask), indices in (
        grouped.items()
    ):
        cell_results = advance_rate_metrics_batch(
            parents,
            children,
            load,
            [specs[i].seed for i in indices],
            reception=reception,
            backend=backend,
            mask=mask,
        )
        for index, metrics in zip(indices, cell_results):
            results[index] = metrics
    return results


register(
    ExperimentDef(
        exp_id="E2",
        title="Thm 4.1: per-phase P[level advances] ≥ µ",
        make_tasks=_e2_tasks,
        run_task=_e2_run,
        summary_metrics=("advance_rate",),
        run_batch=_e2_run_batch,
        default_timeout=120.0,
    )
)


# ----------------------------------------------------------------------
# E16 — resilience scenarios (task function lives with the harness)
# ----------------------------------------------------------------------

E16_SCENARIOS = ("churn", "fading", "jammer", "blackout", "partition")


def _e16_tasks(
    seed: int, replications: int, quick: bool = False, **_: Any
) -> List[TaskSpec]:
    scenarios = ("fading", "partition") if quick else E16_SCENARIOS
    cases = [{"scenario": name} for name in scenarios]
    return task_grid("E16", cases, replications, seed)


def _e16_run(spec: TaskSpec) -> Dict[str, Any]:
    from repro.analysis.resilience import scenario_metrics

    return scenario_metrics(spec.params["scenario"], spec.seed)


register(
    ExperimentDef(
        exp_id="E16",
        title="resilience: collection under injected faults",
        make_tasks=_e16_tasks,
        run_task=_e16_run,
        summary_metrics=("delivery_ratio", "slowdown", "repairs"),
        # Fault scenarios run long slot horizons (blackout grace periods);
        # give them a wider tail budget than the clean experiments.
        default_timeout=300.0,
    )
)


# ----------------------------------------------------------------------
# E19 / E20 — open-system service mode (repro.service)
# ----------------------------------------------------------------------

E19_CELLS = (
    {"topology": "path-12", "source_mode": "tail", "arrival": "bernoulli",
     "rate": 0.3, "phases": 1200},
    {"topology": "path-12", "source_mode": "tail", "arrival": "poisson",
     "rate": 0.3, "phases": 1200},
    {"topology": "band-4x3", "source_mode": "bottom", "arrival": "bernoulli",
     "rate": 0.12, "phases": 1200},
)
E19_QUICK_CELLS = (
    {"topology": "path-8", "source_mode": "tail", "arrival": "bernoulli",
     "rate": 0.25, "phases": 240},
)


def service_sources(topology: str, source_mode: str, seed: int):
    """Build (graph, tree, sources) for one service cell.

    ``source_mode``: ``"tail"`` = the single deepest station, ``"bottom"``
    = every deepest-level station, ``"all"`` = every non-root station.
    """
    graph = build_topology(topology, random.Random(seed))
    tree = reference_bfs_tree(graph, 0)
    if source_mode == "tail":
        sources = [max(tree.nodes, key=lambda v: (tree.level[v], v))]
    elif source_mode == "bottom":
        sources = [n for n in tree.nodes if tree.level[n] == tree.depth]
    elif source_mode == "all":
        sources = [n for n in tree.nodes if n != tree.root]
    else:
        raise ConfigurationError(
            f"unknown source_mode {source_mode!r} "
            "(expected 'tail', 'bottom' or 'all')"
        )
    return graph, tree, sources


def service_metrics(
    topology: str,
    source_mode: str,
    arrival: str,
    rate: float,
    phases: int,
    seed: int,
) -> Dict[str, Any]:
    """One E19 task: open-system KPIs + tandem-oracle comparison.

    Streams ``rate``-per-source-per-phase arrivals (Bernoulli or
    Poisson) for ``phases`` phases, measures the streaming KPIs with
    warmup truncation, probes the pipeline's saturation capacity, and
    reports measured vs predicted sojourn/queue (``sojourn_ratio``,
    ``queue_ratio``) against `repro.queueing.analysis`.
    """
    from repro.core.slots import SlotStructure, decay_budget
    from repro.rng import derive_seed
    from repro.service import (
        compare_with_oracle,
        measure_capacity,
        run_service,
    )
    from repro.workloads import BernoulliArrivals, PoissonArrivals

    graph, tree, sources = service_sources(topology, source_mode, seed)
    phase_length = SlotStructure(
        decay_budget(graph.max_degree()), 3, True
    ).phase_length
    if arrival == "bernoulli":
        arrivals = BernoulliArrivals(
            sources, rate, phase_length, seed=derive_seed(seed, "arrivals")
        )
    elif arrival == "poisson":
        arrivals = PoissonArrivals.per_phase_rate(
            sources, rate, phase_length, seed=derive_seed(seed, "arrivals")
        )
    else:
        raise ConfigurationError(
            f"unknown arrival process {arrival!r} "
            "(expected 'bernoulli' or 'poisson')"
        )
    kpis = run_service(
        graph, tree, arrivals, seed=seed,
        horizon_slots=phases * phase_length,
    )
    capacity = measure_capacity(
        graph, tree, sources, seed,
        phases=min(300, max(120, phases // 4)),
    )
    oracle = compare_with_oracle(kpis, capacity)
    return {**kpis.to_metrics(), **oracle.to_dict()}


def _e19_tasks(
    seed: int, replications: int, quick: bool = False, **_: Any
) -> List[TaskSpec]:
    cells = E19_QUICK_CELLS if quick else E19_CELLS
    return task_grid("E19", list(cells), replications, seed)


def _e19_run(spec: TaskSpec) -> Dict[str, Any]:
    params = spec.params
    return service_metrics(
        params["topology"], params["source_mode"], params["arrival"],
        params["rate"], params["phases"], spec.seed,
    )


register(
    ExperimentDef(
        exp_id="E19",
        title="open-system service KPIs vs the §4 tandem oracle",
        make_tasks=_e19_tasks,
        run_task=_e19_run,
        summary_metrics=(
            "sojourn_phases", "queue_mean", "throughput_per_phase",
            "sojourn_ratio",
        ),
        # Long-horizon streaming runs; budget for the capacity probe too.
        default_timeout=600.0,
    )
)


E20_CELLS = (
    {"topology": "band-4x3", "source_mode": "bottom", "points": 7,
     "phases": 500},
    # A second contended cell; a single-source path would never
    # destabilize (its max arrival rate equals the uncontended hop
    # service rate — the E15 flat line), so sweeps need contention.
    {"topology": "band-4x4", "source_mode": "bottom", "points": 5,
     "phases": 400},
)
E20_QUICK_CELLS = (
    {"topology": "band-4x3", "source_mode": "bottom", "points": 3,
     "phases": 220},
)


def sweep_metrics(
    topology: str, source_mode: str, points: int, phases: int, seed: int
) -> Dict[str, Any]:
    """One E20 task: locate the stability knee and validate it.

    Probes capacity, walks λ across the predicted critical rate with
    ``points`` sweep points of ``phases`` phases each, and reports the
    detected knee bracket plus whether it contains the analytic
    critical rate µ_eff/|sources| (``knee_brackets_critical``).
    """
    from repro.service import saturation_sweep

    graph, tree, sources = service_sources(topology, source_mode, seed)
    result = saturation_sweep(
        graph, tree, sources, seed=seed, points=points,
        phases_per_point=phases,
        capacity_phases=max(150, phases // 2),
    )
    return result.to_metrics()


def _e20_tasks(
    seed: int, replications: int, quick: bool = False, **_: Any
) -> List[TaskSpec]:
    cells = E20_QUICK_CELLS if quick else E20_CELLS
    return task_grid("E20", list(cells), replications, seed)


def _e20_run(spec: TaskSpec) -> Dict[str, Any]:
    params = spec.params
    return sweep_metrics(
        params["topology"], params["source_mode"], params["points"],
        params["phases"], spec.seed,
    )


register(
    ExperimentDef(
        exp_id="E20",
        title="saturation sweep: stability knee vs analytic critical λ",
        make_tasks=_e20_tasks,
        run_task=_e20_run,
        summary_metrics=(
            "critical_rate_per_source", "knee_low", "knee_high",
        ),
        # A sweep is many service runs; give it the widest tail budget.
        default_timeout=900.0,
    )
)
