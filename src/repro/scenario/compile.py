"""Compile a validated spec into the runner's task grid and execute it.

The compiler's whole job is normalization: turn the spec's tables into
the flat, JSON-scalar *case* dicts :func:`repro.runner.task.task_grid`
understands, expanding every sweep axis into the cross-product.  Only
the keys a protocol kind actually consumes enter its cases (a jammer
knob never pollutes a fault-free cell's cache key), and the canonical
case list is content-hashed into the experiment id —
``scenario:<name>:<hash12>`` — so a semantic edit to the spec can never
alias a stale cache entry, while cosmetic edits (title, description,
replication count) leave keys untouched.

Registry-twin mode bypasses all of this: ``[registry]`` delegates the
grid to the registered experiment, producing byte-identical task specs
(and hence cache keys) to ``python -m repro run <EXP>``.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rng import content_key
from repro.runner.registry import (
    ExperimentDef,
    get_experiment,
    run_registered_batch,
    run_registered_task,
)
from repro.runner.task import TaskSpec, task_grid
from repro.scenario.spec import ScenarioSpec

#: Default per-task watchdog budget for scenario tasks (Las-Vegas
#: protocols under faults can run long horizons; budget the tail).
SCENARIO_DEFAULT_TIMEOUT = 600.0

#: Summary metrics per protocol kind, in display priority order.
_KIND_METRICS: Dict[str, Tuple[str, ...]] = {
    "collection": (
        "delivered", "delivery_ratio", "sojourn_p50_phases", "slots",
        "collision_rate",
    ),
    "p2p": (
        "delivered", "delivery_ratio", "sojourn_p50_phases", "slots",
        "collision_rate",
    ),
    "broadcast": ("messages", "slots", "delivered_everywhere", "collision_rate"),
    "tdma": ("delivered", "slots", "utilization"),
    "spatial-tdma": ("delivered", "slots", "utilization"),
    "service": (
        "sojourn_phases", "queue_mean", "throughput_per_phase", "stable",
    ),
    "saturation": ("critical_rate_per_source", "knee_low", "knee_high"),
}

#: Streaming kinds consume the horizon; closed kinds only when they
#: materialize an arrival stream into their slot-0 workload.
_STREAMING_KINDS = ("collection", "p2p", "service", "saturation")


def _axis_values(value: Any) -> List[Any]:
    return value if isinstance(value, list) else [value]


def _case_for(
    spec: ScenarioSpec, choice: Dict[Tuple[str, str], Any]
) -> Dict[str, Any]:
    """Build one case dict from a concrete sweep-axis assignment.

    ``choice`` maps ``(table, key)`` to the chosen scalar.  Only keys
    the chosen protocol kind consumes survive — irrelevant axes prune
    away (and pruned-equal cases dedupe at the caller).
    """

    def pick(table: str, key: str, default: Any = None) -> Any:
        if (table, key) in choice:
            return choice[(table, key)]
        data = getattr(spec, table)
        value = data.get(key, default)
        return value

    kind = pick("protocol", "kind")
    case: Dict[str, Any] = {
        "protocol": kind,
        "topology": pick("topology", "name"),
    }
    arrival = pick("arrivals", "kind", "none")
    source_mode = pick("arrivals", "sources", "tail")
    horizon = pick("run", "horizon_phases")

    if kind in ("collection", "p2p", "broadcast"):
        case["classes"] = pick("protocol", "classes", 3)
    if kind in ("collection", "p2p", "broadcast", "tdma", "spatial-tdma"):
        case["sources"] = source_mode
        case["arrival"] = arrival
        if arrival == "none":
            case["messages"] = pick("arrivals", "messages", 4)
        else:
            case["horizon_phases"] = horizon
            if arrival in ("bernoulli", "poisson"):
                case["rate"] = pick("arrivals", "rate")
            else:  # burst
                case["period"] = pick("arrivals", "period")
                case["bursts"] = pick("arrivals", "bursts")
                case["jitter"] = pick("arrivals", "jitter", 0)
        if kind in ("collection", "p2p") and arrival != "none":
            case["warmup_fraction"] = pick("run", "warmup_fraction", 0.25)
    elif kind == "service":
        case["sources"] = source_mode
        case["arrival"] = arrival
        case["rate"] = pick("arrivals", "rate")
        case["horizon_phases"] = horizon
    elif kind == "saturation":
        case["sources"] = source_mode
        case["points"] = pick("protocol", "points", 5)
        case["horizon_phases"] = horizon

    fault = pick("faults", "kind", "none")
    if fault != "none" and kind == "collection":
        case["fault"] = fault
        if fault == "churn":
            case["fail_rate"] = pick("faults", "fail_rate")
            case["recover_rate"] = pick("faults", "recover_rate")
        elif fault == "fading":
            case["p_bad"] = pick("faults", "p_bad")
            case["p_good"] = pick("faults", "p_good")
            case["loss_good"] = pick("faults", "loss_good", 0.0)
            case["loss_bad"] = pick("faults", "loss_bad", 1.0)
        elif fault == "outage":
            case["fraction"] = pick("faults", "fraction")
            case["start_phase"] = pick("faults", "start_phase", 0)
            case["end_phase"] = pick("faults", "end_phase")
        elif fault == "jammer":
            case["jam_period"] = pick("faults", "jam_period")
            case["jam_duty"] = pick("faults", "jam_duty")
            case["targets"] = pick("faults", "targets", "all")
            case["start_phase"] = pick("faults", "start_phase", 0)
            end = pick("faults", "end_phase")
            if end is not None:
                case["end_phase"] = end

    epochs = pick("protocol", "mobility_epochs", 1)
    if kind == "collection" and epochs and epochs > 1:
        case["mobility_epochs"] = epochs
    if not spec.engine.get("idle_scheduling", True):
        case["idle_scheduling"] = False
    return case


def expand_cases(spec: ScenarioSpec) -> List[Dict[str, Any]]:
    """Cross-product of every sweep axis, pruned and deduplicated."""
    axes: List[Tuple[Tuple[str, str], List[Any]]] = []
    for table, keys in (
        ("topology", ("name",)),
        ("protocol", ("kind", "classes", "points", "mobility_epochs")),
        ("arrivals", (
            "kind", "sources", "rate", "period", "bursts", "jitter",
            "messages",
        )),
        ("faults", (
            "kind", "fail_rate", "recover_rate", "p_bad", "p_good",
            "loss_good", "loss_bad", "fraction", "start_phase",
            "end_phase", "jam_period", "jam_duty", "targets",
        )),
        ("run", ("horizon_phases",)),
    ):
        data = getattr(spec, table)
        for key in keys:
            if key in data and isinstance(data[key], list):
                axes.append(((table, key), data[key]))
    cases: List[Dict[str, Any]] = []
    seen = set()
    for combo in itertools.product(*(values for _, values in axes)):
        choice = {axis: value for (axis, _), value in zip(axes, combo)}
        case = _case_for(spec, choice)
        fingerprint = json.dumps(case, sort_keys=True, separators=(",", ":"))
        if fingerprint not in seen:
            seen.add(fingerprint)
            cases.append(case)
    return cases


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario lowered onto the runner: its grid and identity."""

    spec: ScenarioSpec
    exp_id: str
    cases: List[Dict[str, Any]]
    tasks: List[TaskSpec]
    engine: str
    reception: str
    backend: str
    mask: str
    registry_mode: bool
    grid_hash: Optional[str]
    summary_metrics: Tuple[str, ...]
    timeout: float

    @property
    def name(self) -> str:
        return self.spec.name


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower a validated spec into its :class:`TaskSpec` grid."""
    engine = spec.engine["kind"]
    reception = spec.engine["reception"]
    backend = spec.engine.get("backend", "auto")
    mask = spec.engine.get("mask", "auto")
    seed = spec.run["seed"]
    replications = spec.run["replications"]

    if spec.registry_mode:
        exp_id = spec.registry["experiment"]
        defn = get_experiment(exp_id)  # raises with known ids on typos
        options = {"quick": True} if spec.registry["quick"] else {}
        tasks = defn.tasks(seed, replications, **options)
        if engine != "scalar":
            if not defn.supports_vector:
                raise ConfigurationError(
                    f"experiment {exp_id!r} has no vector-engine "
                    "implementation; use engine.kind = 'scalar'"
                )
            tasks = [
                dataclasses.replace(
                    t,
                    engine=engine,
                    reception=reception,
                    backend=backend,
                    mask=mask,
                )
                for t in tasks
            ]
        return CompiledScenario(
            spec=spec,
            exp_id=exp_id,
            cases=[dict(t.case) for t in tasks[:: max(1, replications)]],
            tasks=tasks,
            engine=engine,
            reception=reception,
            backend=backend,
            mask=mask,
            registry_mode=True,
            grid_hash=None,
            summary_metrics=defn.summary_metrics,
            timeout=(
                spec.run.get("timeout")
                or defn.default_timeout
                or SCENARIO_DEFAULT_TIMEOUT
            ),
        )

    cases = expand_cases(spec)
    grid_hash = content_key({"scenario": spec.name, "cases": cases})[:12]
    exp_id = f"scenario:{spec.name}:{grid_hash}"
    tasks = task_grid(exp_id, cases, replications, seed)
    if engine != "scalar":
        # The cross-field checks already vetted this grid as closed,
        # fault-free collection — the shape the lockstep batch engine
        # simulates; the knobs join each task's cache identity.
        tasks = [
            dataclasses.replace(
                t,
                engine=engine,
                reception=reception,
                backend=backend,
                mask=mask,
            )
            for t in tasks
        ]
    kinds: List[str] = []
    for case in cases:
        if case["protocol"] not in kinds:
            kinds.append(case["protocol"])
    metrics: List[str] = []
    for kind in kinds:
        for name in _KIND_METRICS[kind]:
            if name not in metrics:
                metrics.append(name)
    return CompiledScenario(
        spec=spec,
        exp_id=exp_id,
        cases=cases,
        tasks=tasks,
        engine=engine,
        reception=reception,
        backend=backend,
        mask=mask,
        registry_mode=False,
        grid_hash=grid_hash,
        summary_metrics=tuple(metrics[:8]),
        timeout=spec.run.get("timeout") or SCENARIO_DEFAULT_TIMEOUT,
    )


def run_scenario(
    compiled: CompiledScenario,
    *,
    workers: int = 0,
    cache=None,
    telemetry=None,
    checkpoint=None,
    progress: bool = False,
    policy=None,
):
    """Execute a compiled scenario through the shared runner machinery.

    Everything downstream of the compiler is the stock pipeline:
    :func:`repro.runner.executor.run_tasks` with the scenario's
    experiment id resolving the worker-side task function by name (the
    ``scenario:`` prefix is understood by the registry), so sharding,
    caching, checkpointing, fault policy and the fleet backend behave
    exactly as for registered experiments.
    """
    from repro.runner.executor import run_tasks
    from repro.runner.policy import FaultPolicy

    if policy is None:
        policy = FaultPolicy(timeout=compiled.timeout)
    batch_fn = None
    defn = get_experiment(compiled.exp_id)
    if defn.supports_vector:
        batch_fn = functools.partial(run_registered_batch, compiled.exp_id)
    run_fn = functools.partial(run_registered_task, compiled.exp_id)
    return run_tasks(
        compiled.tasks,
        run_fn,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        checkpoint=checkpoint,
        progress=progress,
        batch_fn=batch_fn,
        policy=policy,
        options={
            "scenario": compiled.spec.name,
            "source": compiled.spec.source,
            "grid_hash": compiled.grid_hash,
            "seed": compiled.spec.run["seed"],
            "replications": compiled.spec.run["replications"],
            "engine": compiled.engine,
            "reception": compiled.reception,
            "backend": compiled.backend,
            "mask": compiled.mask,
        },
    )
