"""The scenario schema: declarative table validation with exact paths.

Specs are small, hand-written files, so error quality is the whole
game: every failure names the offending key by its dotted path
(``faults.fail_rate``), says what was found and what was expected, and
suggests the nearest known key for typos.  Validation is three-layered:

1. **shape** — unknown tables/keys, missing required keys;
2. **value** — type, choice and range checks per field (a *sweepable*
   field also accepts a non-empty list of valid values: the grid axis);
3. **cross-field** — constraints spanning fields or tables (a Bernoulli
   rate must not exceed 1, a jammer's duty cycle fits its period, fault
   injection requires the protocol with a repair layer, …), checked by
   the spec layer after the tables normalize.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class ValidationError(ConfigurationError):
    """A scenario spec failed validation at ``path``."""

    def __init__(self, path: str, message: str):
        self.path = path
        self.detail = message
        super().__init__(f"{path}: {message}" if path else message)


def _type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    return type(value).__name__


def _check_scalar(value: Any, field: "Field", path: str) -> None:
    """Type / choice / range check of one (non-list) value."""
    if field.types == (float,):
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif field.types == (int,):
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:
        ok = isinstance(value, field.types)
        if bool not in field.types and isinstance(value, bool):
            ok = False
    if not ok:
        expected = "/".join(t.__name__ for t in field.types)
        raise ValidationError(
            path, f"expected {expected}, got {_type_name(value)} {value!r}"
        )
    if field.choices is not None and value not in field.choices:
        hint = ""
        if isinstance(value, str):
            close = difflib.get_close_matches(value, [
                c for c in field.choices if isinstance(c, str)
            ], n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
        raise ValidationError(
            path,
            f"must be one of {', '.join(repr(c) for c in field.choices)}; "
            f"got {value!r}{hint}",
        )
    if field.minimum is not None and value < field.minimum:
        raise ValidationError(
            path, f"must be >= {field.minimum}, got {value!r}"
        )
    if field.maximum is not None and value > field.maximum:
        raise ValidationError(
            path, f"must be <= {field.maximum}, got {value!r}"
        )
    if field.exclusive_minimum is not None and value <= field.exclusive_minimum:
        raise ValidationError(
            path, f"must be > {field.exclusive_minimum}, got {value!r}"
        )
    if field.check is not None:
        field.check(value, path)


@dataclass(frozen=True)
class Field:
    """One key of a scenario table.

    ``sweep`` marks a grid axis: the key also accepts a non-empty list
    of valid values, expanded into the case cross-product by the
    compiler.  ``check`` is an optional per-value hook for grammar-style
    validation (e.g. topology names) that raises :class:`ValidationError`.
    """

    types: Tuple[type, ...]
    required: bool = False
    default: Any = None
    choices: Optional[Tuple[Any, ...]] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    exclusive_minimum: Optional[float] = None
    sweep: bool = False
    check: Optional[Any] = None  # Callable[[Any, str], None]

    def validate(self, value: Any, path: str) -> Any:
        if self.sweep and isinstance(value, list):
            if not value:
                raise ValidationError(
                    path, "a sweep list needs at least one value"
                )
            for index, item in enumerate(value):
                _check_scalar(item, self, f"{path}[{index}]")
            if len(set(map(repr, value))) != len(value):
                raise ValidationError(path, "sweep values must be distinct")
            return list(value)
        _check_scalar(value, self, path)
        return value


def validate_table(
    data: Mapping[str, Any],
    fields: Mapping[str, Field],
    path: str,
) -> Dict[str, Any]:
    """Validate one table against its field specs; returns it normalized
    (defaults filled in, sweep lists preserved)."""
    if not isinstance(data, Mapping):
        raise ValidationError(
            path, f"expected a table, got {_type_name(data)}"
        )
    out: Dict[str, Any] = {}
    for key, value in data.items():
        if key not in fields:
            close = difflib.get_close_matches(str(key), list(fields), n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ValidationError(
                f"{path}.{key}",
                f"unknown key (known: {', '.join(sorted(fields))}){hint}",
            )
        out[key] = fields[key].validate(value, f"{path}.{key}")
    for key, field in fields.items():
        if key in out:
            continue
        if field.required:
            raise ValidationError(f"{path}.{key}", "required key is missing")
        if field.default is not None:
            out[key] = field.default
    return out


def check_unknown_tables(
    data: Mapping[str, Any], known: Sequence[str]
) -> None:
    """Reject top-level tables the schema does not define."""
    for key in data:
        if key not in known:
            close = difflib.get_close_matches(str(key), list(known), n=1)
            hint = f"; did you mean [{close[0]}]?" if close else ""
            raise ValidationError(
                key,
                f"unknown table (known: {', '.join(known)}){hint}",
            )


# ----------------------------------------------------------------------
# Topology-name grammar (mirrors runner.defs.build_topology, but checks
# without constructing the graph — validation must stay O(1)).
# ----------------------------------------------------------------------

def _positive_int(text: str) -> Optional[int]:
    try:
        value = int(text)
    except (TypeError, ValueError):
        return None
    return value if value > 0 else None


def check_topology_name(name: Any, path: str) -> None:
    """Grammar check of a ``build_topology`` name, without building it."""
    family, _, rest = str(name).partition("-")
    ok = False
    if family in ("path", "star", "cycle", "rgg", "rtree"):
        n = _positive_int(rest)
        ok = n is not None and n >= 2
    elif family in ("grid", "band", "caterpillar"):
        parts = rest.split("x")
        ok = len(parts) == 2 and all(_positive_int(p) for p in parts)
    elif family == "tree":
        parts = rest.split("-")
        ok = (
            len(parts) == 2
            and parts[0].startswith("b") and parts[1].startswith("d")
            and _positive_int(parts[0][1:]) is not None
            and _positive_int(parts[1][1:]) is not None
        )
    if not ok:
        raise ValidationError(
            path,
            f"unknown topology name {name!r} (expected e.g. 'path-24', "
            "'grid-4x4', 'band-6x4', 'caterpillar-6x2', 'tree-b3-d2', "
            "'rgg-30', 'rtree-24')",
        )


def check_quantile(value: Any, path: str) -> None:
    if not 0.0 < value < 1.0:
        raise ValidationError(
            path, f"quantiles must be in (0,1), got {value!r}"
        )
