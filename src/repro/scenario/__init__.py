"""Declarative scenarios: TOML/JSON specs compiled onto the runner.

A *scenario* is an experiment written as data instead of code: a small
spec file naming a topology, an arrival profile, a fault profile, a
protocol (or a grid of them), the engine, and the replication grid.
The compiler expands it into the exact same
:class:`~repro.runner.task.TaskSpec` grid the registered experiments
use, so scenario runs flow through the existing executor, fault policy,
content-addressed cache, checkpointing and fleet backend unchanged —
and a *registry-twin* scenario (``[registry] experiment = "E3"``)
compiles to literally the same tasks (and hence the same cache keys) as
``python -m repro run E3``.

Entry points
------------
* :func:`parse_scenario` / :func:`load_scenario` — file → validated
  :class:`ScenarioSpec` (schema errors carry the offending key path).
* :func:`compile_scenario` — spec → :class:`CompiledScenario` (the task
  grid plus its ``scenario:<name>:<hash>`` experiment id).
* :func:`run_scenario` — compile + execute through the runner.
* :func:`discover_scenarios` — enumerate ``scenarios/`` spec files.
"""

from repro.scenario.schema import ValidationError
from repro.scenario.spec import ScenarioSpec, load_scenario, parse_scenario
from repro.scenario.compile import (
    CompiledScenario,
    compile_scenario,
    run_scenario,
)
from repro.scenario.runtime import run_scenario_task, scenario_experiment
from repro.scenario.discovery import (
    discover_scenarios,
    unknown_experiment_message,
)

__all__ = [
    "CompiledScenario",
    "ScenarioSpec",
    "ValidationError",
    "compile_scenario",
    "discover_scenarios",
    "load_scenario",
    "parse_scenario",
    "run_scenario",
    "run_scenario_task",
    "scenario_experiment",
    "unknown_experiment_message",
]
