"""Scenario spec files: parsing, normalization, cross-field checks.

A spec is a TOML (or JSON) document of up to eight tables::

    [scenario]   name, title, description
    [registry]   experiment, quick          (twin mode: delegate a grid)
    [topology]   name                       (sweepable)
    [arrivals]   kind, rate, period, bursts, jitter, sources, messages
    [faults]     kind + per-model knobs
    [protocol]   kind, classes, points, mobility_epochs
    [engine]     kind, reception, backend, mask, idle_scheduling
    [run]        seed, replications, horizon_phases, warmup_fraction
    [kpi]        quantiles

Any field marked *sweepable* may hold a list; the compiler expands the
cross-product of all sweep axes into the task grid.  ``[registry]``
switches the spec into *twin mode*: it compiles to exactly the task
grid of the named registered experiment (same content keys, same cache
entries), proving the DSL subsumes the registry.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.scenario.schema import (
    Field,
    ValidationError,
    check_quantile,
    check_topology_name,
    check_unknown_tables,
    validate_table,
)

ARRIVAL_KINDS = ("none", "bernoulli", "poisson", "burst")
FAULT_KINDS = ("none", "churn", "fading", "outage", "jammer")
PROTOCOL_KINDS = (
    "collection", "broadcast", "p2p", "tdma", "spatial-tdma",
    "service", "saturation",
)
SOURCE_MODES = ("tail", "bottom", "all")

SCENARIO_FIELDS = {
    "name": Field((str,), required=True),
    "title": Field((str,)),
    "description": Field((str,)),
}
REGISTRY_FIELDS = {
    "experiment": Field((str,), required=True),
    "quick": Field((bool,), default=False),
}
TOPOLOGY_FIELDS = {
    "name": Field(
        (str,), required=True, sweep=True, check=check_topology_name
    ),
}
ARRIVAL_FIELDS = {
    "kind": Field((str,), default="none", choices=ARRIVAL_KINDS, sweep=True),
    # Per-source per-phase offered load (bernoulli/poisson).  The upper
    # bound of 1 for Bernoulli is a cross-field check (poisson may burst
    # past 1 message per phase).
    "rate": Field((float,), exclusive_minimum=0.0, sweep=True),
    # Burst arrivals: every source fires every `period` phases,
    # `bursts` times, jittered into the window by up to `jitter` slots.
    "period": Field((int,), minimum=1, sweep=True),
    "bursts": Field((int,), minimum=1, sweep=True),
    "jitter": Field((int,), minimum=0, default=0, sweep=True),
    "sources": Field(
        (str,), default="tail", choices=SOURCE_MODES, sweep=True
    ),
    # Closed-workload size: messages per source, injected at slot 0,
    # used by kind="none" and the closed protocol kinds.
    "messages": Field((int,), minimum=1, default=4, sweep=True),
}
FAULT_FIELDS = {
    "kind": Field((str,), default="none", choices=FAULT_KINDS, sweep=True),
    # churn (also models duty-cycled stations: mean on-time 1/fail_rate
    # slots, mean off-time 1/recover_rate slots)
    "fail_rate": Field((float,), minimum=0.0, maximum=1.0, sweep=True),
    "recover_rate": Field((float,), minimum=0.0, maximum=1.0, sweep=True),
    # fading (Gilbert–Elliott per-link chains)
    "p_bad": Field((float,), minimum=0.0, maximum=1.0, sweep=True),
    "p_good": Field((float,), minimum=0.0, maximum=1.0, sweep=True),
    "loss_good": Field((float,), minimum=0.0, maximum=1.0, sweep=True),
    "loss_bad": Field((float,), minimum=0.0, maximum=1.0, sweep=True),
    # outage: the deepest `fraction` of stations goes dark for the
    # phase window [start_phase, end_phase)
    "fraction": Field(
        (float,), exclusive_minimum=0.0, maximum=1.0, sweep=True
    ),
    "start_phase": Field((int,), minimum=0, default=0, sweep=True),
    "end_phase": Field((int,), minimum=1, sweep=True),
    # jammer: duty-cycled reception blanking at the targeted stations
    "jam_period": Field((int,), minimum=1, sweep=True),
    "jam_duty": Field((int,), minimum=0, sweep=True),
    "targets": Field(
        (str,), default="all", choices=("all", "bottom"), sweep=True
    ),
}
PROTOCOL_FIELDS = {
    "kind": Field(
        (str,), required=True, choices=PROTOCOL_KINDS, sweep=True
    ),
    "classes": Field((int,), minimum=1, maximum=8, default=3, sweep=True),
    # saturation: sweep points across the predicted critical rate
    "points": Field((int,), minimum=2, default=5, sweep=True),
    # mobility: re-sample the topology every epoch (seed-derived), so
    # `rgg-N`/`rtree-N` families model station movement between epochs
    "mobility_epochs": Field((int,), minimum=1, default=1, sweep=True),
}
ENGINE_FIELDS = {
    "kind": Field((str,), default="scalar", choices=("scalar", "vector")),
    "reception": Field(
        (str,), default="auto", choices=("dense", "sparse", "auto")
    ),
    "backend": Field(
        (str,), default="auto", choices=("numpy", "numba", "cupy", "auto")
    ),
    "mask": Field((str,), default="auto", choices=("on", "off", "auto")),
    "idle_scheduling": Field((bool,), default=True),
}
RUN_FIELDS = {
    "seed": Field((int,), default=7),
    "replications": Field((int,), minimum=1, default=3),
    "horizon_phases": Field((int,), minimum=1, default=200, sweep=True),
    "warmup_fraction": Field(
        (float,), minimum=0.0, maximum=0.99, default=0.25
    ),
    "timeout": Field((float,), exclusive_minimum=0.0),
}
KPI_FIELDS = {
    "quantiles": Field((list,), default=[0.5, 0.9, 0.99]),
}

TABLES = (
    "scenario", "registry", "topology", "arrivals", "faults",
    "protocol", "engine", "run", "kpi",
)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed, validated scenario spec (tables normalized)."""

    name: str
    title: Optional[str]
    description: Optional[str]
    registry: Optional[Dict[str, Any]]
    topology: Dict[str, Any]
    arrivals: Dict[str, Any]
    faults: Dict[str, Any]
    protocol: Dict[str, Any]
    engine: Dict[str, Any]
    run: Dict[str, Any]
    kpi: Dict[str, Any]
    source: Optional[str] = dc_field(default=None, compare=False)

    @property
    def registry_mode(self) -> bool:
        return self.registry is not None


def _as_list(value: Any) -> List[Any]:
    return value if isinstance(value, list) else [value]


def _cross_checks(spec: ScenarioSpec) -> None:
    """Constraints spanning fields/tables (layer 3)."""
    arrivals, faults, protocol = spec.arrivals, spec.faults, spec.protocol
    kinds = _as_list(protocol["kind"]) if protocol else []
    arrival_kinds = _as_list(arrivals.get("kind", "none"))
    fault_kinds = _as_list(faults.get("kind", "none"))

    for kind in arrival_kinds:
        if kind in ("bernoulli", "poisson") and "rate" not in arrivals:
            raise ValidationError(
                "arrivals.rate",
                f"required for kind={kind!r} (per-source per-phase load)",
            )
        if kind == "burst" and "period" not in arrivals:
            raise ValidationError(
                "arrivals.period", "required for kind='burst'"
            )
        if kind == "burst" and "bursts" not in arrivals:
            raise ValidationError(
                "arrivals.bursts", "required for kind='burst'"
            )
    if "bernoulli" in arrival_kinds:
        for rate in _as_list(arrivals.get("rate", [])):
            if rate > 1.0:
                raise ValidationError(
                    "arrivals.rate",
                    f"a Bernoulli per-phase rate is a probability and must "
                    f"be <= 1, got {rate}",
                )

    for kind in fault_kinds:
        if kind == "churn":
            for key in ("fail_rate", "recover_rate"):
                if key not in faults:
                    raise ValidationError(
                        f"faults.{key}", "required for kind='churn'"
                    )
        elif kind == "fading":
            for key in ("p_bad", "p_good"):
                if key not in faults:
                    raise ValidationError(
                        f"faults.{key}", "required for kind='fading'"
                    )
        elif kind == "outage":
            for key in ("fraction", "end_phase"):
                if key not in faults:
                    raise ValidationError(
                        f"faults.{key}", "required for kind='outage'"
                    )
        elif kind == "jammer":
            for key in ("jam_period", "jam_duty"):
                if key not in faults:
                    raise ValidationError(
                        f"faults.{key}", "required for kind='jammer'"
                    )
    if "jam_period" in faults and "jam_duty" in faults:
        max_duty = max(_as_list(faults["jam_duty"]))
        min_period = min(_as_list(faults["jam_period"]))
        if max_duty > min_period:
            raise ValidationError(
                "faults.jam_duty",
                f"duty ({max_duty}) must not exceed jam_period "
                f"({min_period})",
            )
    if "end_phase" in faults:
        max_start = max(_as_list(faults.get("start_phase", 0)))
        min_end = min(_as_list(faults["end_phase"]))
        if min_end <= max_start:
            raise ValidationError(
                "faults.end_phase",
                f"empty fault window: end_phase ({min_end}) must exceed "
                f"start_phase ({max_start})",
            )

    injecting = any(kind != "none" for kind in fault_kinds)
    if injecting:
        unsupported = [k for k in kinds if k != "collection"]
        if unsupported:
            raise ValidationError(
                "faults.kind",
                "fault injection needs the self-healing collection stack; "
                f"protocol kind(s) {unsupported!r} have no repair layer "
                "(use protocol.kind='collection' or faults.kind='none')",
            )

    for kind in kinds:
        if kind == "service":
            ok = [k for k in arrival_kinds if k in ("bernoulli", "poisson")]
            if not ok or len(ok) != len(arrival_kinds):
                raise ValidationError(
                    "arrivals.kind",
                    "protocol kind='service' streams an open system and "
                    "needs 'bernoulli' or 'poisson' arrivals, got "
                    f"{arrivals.get('kind', 'none')!r}",
                )

    if spec.engine["kind"] == "vector" and not spec.registry_mode:
        # The lockstep batch engine requires every replication of a cell
        # to run the identical workload on the identical failure-free
        # topology — that is what parity (vector/check.py) certifies.
        # Any closed, fault-free collection scenario qualifies; the
        # combinations below realize per-replication state the batch
        # arrays cannot represent.
        unsupported = [k for k in kinds if k != "collection"]
        if unsupported:
            raise ValidationError(
                "engine.kind",
                "engine 'vector' batches the collection protocol only; "
                f"protocol kind(s) {unsupported!r} have no lockstep "
                "implementation (use kind='collection' or "
                "engine.kind='scalar')",
            )
        if injecting:
            raise ValidationError(
                "engine.kind",
                "engine 'vector' assumes the failure-free model "
                "(lockstep replications share one topology); fault "
                f"kind(s) {fault_kinds!r} need the scalar engine's "
                "repair layer",
            )
        streaming = [k for k in arrival_kinds if k != "none"]
        if streaming:
            raise ValidationError(
                "engine.kind",
                "engine 'vector' runs closed workloads only (arrivals "
                "realize a different trajectory per replication, which "
                f"lockstep arrays cannot represent); arrival kind(s) "
                f"{streaming!r} need engine.kind='scalar'",
            )
        epochs = _as_list(protocol.get("mobility_epochs", 1))
        if any(e > 1 for e in epochs):
            raise ValidationError(
                "engine.kind",
                "engine 'vector' runs a single fixed topology; "
                "mobility_epochs > 1 re-samples the graph between "
                "epochs and needs engine.kind='scalar'",
            )


def validate_scenario(
    data: Mapping[str, Any], source: Optional[str] = None
) -> ScenarioSpec:
    """Validate a raw spec document into a :class:`ScenarioSpec`."""
    if not isinstance(data, Mapping):
        raise ValidationError(
            "", f"a scenario spec must be a table, got {type(data).__name__}"
        )
    check_unknown_tables(data, TABLES)
    if "scenario" not in data:
        raise ValidationError(
            "scenario", "required table is missing (set scenario.name)"
        )
    meta = validate_table(data["scenario"], SCENARIO_FIELDS, "scenario")
    if not _NAME_RE.match(meta["name"]):
        raise ValidationError(
            "scenario.name",
            f"must match {_NAME_RE.pattern} (it names the experiment id "
            f"and the KPI report), got {meta['name']!r}",
        )

    registry = None
    if "registry" in data:
        registry = validate_table(data["registry"], REGISTRY_FIELDS, "registry")
        for table in ("topology", "arrivals", "faults", "protocol"):
            if table in data:
                raise ValidationError(
                    f"{table}",
                    "a [registry] twin delegates its whole grid to the "
                    f"registered experiment; remove the [{table}] table",
                )
    else:
        for table in ("topology", "protocol"):
            if table not in data:
                raise ValidationError(
                    table,
                    "required table is missing (or use [registry] to twin "
                    "a registered experiment)",
                )

    topology = (
        validate_table(data["topology"], TOPOLOGY_FIELDS, "topology")
        if "topology" in data else {}
    )
    arrivals = (
        validate_table(data["arrivals"], ARRIVAL_FIELDS, "arrivals")
        if "arrivals" in data else validate_table({}, ARRIVAL_FIELDS, "arrivals")
    )
    faults = (
        validate_table(data["faults"], FAULT_FIELDS, "faults")
        if "faults" in data else validate_table({}, FAULT_FIELDS, "faults")
    )
    protocol = (
        validate_table(data["protocol"], PROTOCOL_FIELDS, "protocol")
        if "protocol" in data else {}
    )
    engine = validate_table(data.get("engine", {}), ENGINE_FIELDS, "engine")
    run = validate_table(data.get("run", {}), RUN_FIELDS, "run")
    kpi = validate_table(data.get("kpi", {}), KPI_FIELDS, "kpi")
    for index, q in enumerate(kpi["quantiles"]):
        if isinstance(q, bool) or not isinstance(q, (int, float)):
            raise ValidationError(
                f"kpi.quantiles[{index}]",
                f"expected float, got {type(q).__name__} {q!r}",
            )
        check_quantile(q, f"kpi.quantiles[{index}]")

    spec = ScenarioSpec(
        name=meta["name"],
        title=meta.get("title"),
        description=meta.get("description"),
        registry=registry,
        topology=topology,
        arrivals=arrivals,
        faults=faults,
        protocol=protocol,
        engine=engine,
        run=run,
        kpi=kpi,
        source=source,
    )
    if not spec.registry_mode:
        _cross_checks(spec)
    return spec


def parse_scenario(path: Any) -> ScenarioSpec:
    """Read and validate a scenario spec file (TOML or JSON)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError("", f"cannot read {path}: {exc}") from None
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError("", f"{path}: invalid JSON: {exc}") from None
    else:
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValidationError("", f"{path}: invalid TOML: {exc}") from None
    return validate_scenario(data, source=str(path))


#: Alias (reads better at call sites that already hold a path).
load_scenario = parse_scenario
