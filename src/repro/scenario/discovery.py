"""Find scenario spec files and explain unknown experiment ids.

Discovery is tolerant by design: ``scenario list`` and the unknown-id
error path must never crash on a half-written spec file, so parse
failures surface as entries flagged with the error instead of raising.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

#: Directories probed (relative to ``root``) for scenario spec files.
SCENARIO_DIRS = ("scenarios",)

#: Spec file suffixes, in listing order.
SCENARIO_SUFFIXES = (".toml", ".json")


@dataclass(frozen=True)
class DiscoveredScenario:
    """One spec file found on disk (possibly unparsable)."""

    path: Path
    name: Optional[str]  # None when the file failed to parse
    title: str
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def discover_scenarios(root: Optional[Path] = None) -> List[DiscoveredScenario]:
    """Enumerate spec files under ``<root>/scenarios``, sorted by name.

    Files that fail validation still appear (with ``error`` set), so a
    typo in one scenario never hides the rest of the library.
    """
    from repro.scenario.spec import parse_scenario

    base = Path(root) if root is not None else Path.cwd()
    found: List[DiscoveredScenario] = []
    for directory in SCENARIO_DIRS:
        folder = base / directory
        if not folder.is_dir():
            continue
        for path in sorted(folder.iterdir()):
            if path.suffix not in SCENARIO_SUFFIXES or not path.is_file():
                continue
            try:
                spec = parse_scenario(path)
            except Exception as exc:  # tolerant: listing must not crash
                found.append(
                    DiscoveredScenario(
                        path=path, name=None, title="", error=str(exc)
                    )
                )
            else:
                found.append(
                    DiscoveredScenario(
                        path=path, name=spec.name, title=spec.title
                    )
                )
    return found


def unknown_experiment_message(
    exp_id: str,
    known_ids: Sequence[str],
    root: Optional[Path] = None,
) -> str:
    """Error text for an unknown experiment id: what *is* available.

    Lists the registered experiment ids and any scenario spec files
    discovered on disk, with a closest-match suggestion spanning both
    namespaces — shared by ``run`` and ``scenario`` so the two commands
    never drift apart in what they claim exists.
    """
    lines = [f"unknown experiment {exp_id!r}"]
    candidates = list(known_ids)
    if known_ids:
        lines.append(f"registered experiments: {', '.join(known_ids)}")
    scenarios = [s for s in discover_scenarios(root) if s.ok]
    if scenarios:
        lines.append("scenario files (run with 'python -m repro scenario'):")
        for item in scenarios:
            label = f"  {item.name}  ({item.path})"
            if item.title:
                label += f" — {item.title}"
            lines.append(label)
        candidates.extend(s.name for s in scenarios if s.name)
    close = difflib.get_close_matches(exp_id, candidates, n=1)
    if close:
        lines.append(f"did you mean {close[0]!r}?")
    return "\n".join(lines)
